//! The IR interpreter.
//!
//! Execution is per-work-group: all work-items of a group run each barrier
//! phase to completion before the next phase starts (the strongest legal
//! schedule, equivalent to any OpenCL-conformant one for barrier-correct
//! kernels). Every issued op and memory access is reported to an
//! [`ExecTracer`], which is how the device models meter cost without the
//! interpreter knowing anything about cycles.
//!
//! # Hot path
//!
//! Programs are pre-decoded once per launch into a flat, dense-indexed
//! [`DecodedProgram`]: immediates are splatted to their consumer's type at
//! decode time, register/destination types and op classes are resolved, and
//! argument bindings are baked into each load/store, so the per-item
//! execution loop does no type resolution and no per-use `Value` splats.
//! Register files and local-memory buffers live in an [`ExecScratch`] reused
//! across groups.
//!
//! # Parallel work-groups
//!
//! Work-groups are independent between barriers, so [`run_ndrange_sharded`]
//! executes them on a work-stealing pool (`sim-pool`). Cost accounting stays
//! **bit-identical** to serial execution through a record/replay scheme: see
//! [`ShardTracer`]. Kernels that perform global atomics are the one coupling
//! between groups — those launches fall back to serial group execution (and
//! say so in [`LaunchStats::serial_reason`]).

use crate::instr::{ArgDecl, AtomicOp, BinOp, Builtin, HorizOp, Op, Operand, UnOp};
use crate::memory::{BufferData, MemoryPool};
use crate::ops::{eval_bin, eval_mad, eval_select, eval_un};
use crate::program::Program;
use crate::trace::{
    AccessKind, ExecTracer, MemAccess, OpClass, Pattern, RecordingTracer, ShardTracer,
};
use crate::types::{MemSpace, Scalar, VType, MAX_LANES};
use crate::value::Value;
use std::cell::RefCell;

/// Simulated base address of the per-group "local memory" window. On Mali
/// local memory is carved out of global memory; we place it in a distinct
/// high region so cache models can still tell the spaces apart if they care.
pub const LOCAL_MEM_BASE: u64 = 1 << 40;
/// Address stride reserved per work-group for its local buffers.
pub const LOCAL_MEM_STRIDE: u64 = 1 << 20;

/// An OpenCL-style 3-dimensional index space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NDRange {
    pub global: [usize; 3],
    pub local: [usize; 3],
}

impl NDRange {
    /// 1-D range.
    pub fn d1(global: usize, local: usize) -> Self {
        NDRange {
            global: [global, 1, 1],
            local: [local, 1, 1],
        }
    }

    /// 2-D range.
    pub fn d2(gx: usize, gy: usize, lx: usize, ly: usize) -> Self {
        NDRange {
            global: [gx, gy, 1],
            local: [lx, ly, 1],
        }
    }

    /// 3-D range.
    pub fn d3(g: [usize; 3], l: [usize; 3]) -> Self {
        NDRange {
            global: g,
            local: l,
        }
    }

    pub fn num_groups(&self) -> [usize; 3] {
        [
            self.global[0] / self.local[0],
            self.global[1] / self.local[1],
            self.global[2] / self.local[2],
        ]
    }

    pub fn total_groups(&self) -> usize {
        let g = self.num_groups();
        g[0] * g[1] * g[2]
    }

    pub fn group_size(&self) -> usize {
        self.local[0] * self.local[1] * self.local[2]
    }

    pub fn total_items(&self) -> usize {
        self.global[0] * self.global[1] * self.global[2]
    }

    /// Check divisibility, as `clEnqueueNDRangeKernel` does.
    pub fn valid(&self) -> bool {
        (0..3).all(|d| {
            self.local[d] > 0 && self.global[d] > 0 && self.global[d].is_multiple_of(self.local[d])
        })
    }

    /// Linear group id → 3-D group coordinates.
    pub fn group_coords(&self, linear: usize) -> [usize; 3] {
        let n = self.num_groups();
        [
            linear % n[0],
            (linear / n[0]) % n[1],
            linear / (n[0] * n[1]),
        ]
    }
}

/// One bound kernel argument.
#[derive(Clone, Debug)]
pub enum ArgBinding {
    /// Global buffer: index into the launch's [`MemoryPool`].
    Global(usize),
    /// Local buffer: element count to allocate per work-group.
    LocalSize(usize),
    /// By-value scalar.
    Scalar(Value),
}

/// Execution error surfaced to the runtime layer.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    InvalidNDRange(NDRange),
    BindingMismatch(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::InvalidNDRange(n) => {
                write!(
                    f,
                    "global size {:?} not divisible by local size {:?}",
                    n.global, n.local
                )
            }
            ExecError::BindingMismatch(s) => write!(f, "argument binding mismatch: {s}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Check bindings against the program's argument declarations.
pub fn check_bindings(
    program: &Program,
    bindings: &[ArgBinding],
    pool: &MemoryPool,
) -> Result<(), ExecError> {
    if bindings.len() != program.args.len() {
        return Err(ExecError::BindingMismatch(format!(
            "kernel {} expects {} args, got {}",
            program.name,
            program.args.len(),
            bindings.len()
        )));
    }
    for (i, (decl, bind)) in program.args.iter().zip(bindings).enumerate() {
        match (decl, bind) {
            (ArgDecl::GlobalBuf { elem, .. }, ArgBinding::Global(idx)) => {
                if *idx >= pool.len() {
                    return Err(ExecError::BindingMismatch(format!(
                        "arg {i}: buffer index {idx} out of pool range"
                    )));
                }
                if pool.get(*idx).elem() != *elem {
                    return Err(ExecError::BindingMismatch(format!(
                        "arg {i}: buffer elem {:?} != declared {elem:?}",
                        pool.get(*idx).elem()
                    )));
                }
            }
            (ArgDecl::LocalBuf { .. }, ArgBinding::LocalSize(_)) => {}
            (ArgDecl::Scalar { ty }, ArgBinding::Scalar(v)) => {
                if v.vtype() != VType::scalar(*ty) {
                    return Err(ExecError::BindingMismatch(format!(
                        "arg {i}: scalar {:?} != declared {ty:?}",
                        v.vtype()
                    )));
                }
            }
            _ => {
                return Err(ExecError::BindingMismatch(format!(
                    "arg {i}: binding kind does not match declaration"
                )))
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Decoded program
// ---------------------------------------------------------------------------

/// A pre-resolved operand: registers carry their final index (and broadcast
/// width when the consumer is wider); immediates are splatted to the
/// consumer's type once, at decode time.
#[derive(Clone, Debug)]
pub(crate) enum DOperand {
    /// Register whose declared width already matches the consumer's.
    Reg(u32),
    /// Register broadcast to `width` lanes at each use.
    RegBc(u32, u8),
    /// Immediate pre-splatted to the consumer's type.
    Const(Value),
}

/// Where a buffer op lands, with the binding already resolved.
#[derive(Clone, Copy, Debug)]
pub(crate) enum DLoc {
    /// Index into the launch's [`MemoryPool`].
    Global(usize),
    /// Kernel-argument index of a per-group local buffer.
    Local(usize),
}

/// One decoded instruction. Destination registers are dense `u32` indices;
/// result types, op classes and traced types are resolved at decode time.
#[derive(Clone, Debug)]
pub(crate) enum DOp {
    Bin {
        dst: u32,
        op: BinOp,
        a: DOperand,
        b: DOperand,
        class: OpClass,
        ty: VType,
    },
    Un {
        dst: u32,
        op: UnOp,
        a: DOperand,
        class: OpClass,
        ty: VType,
    },
    Mad {
        dst: u32,
        a: DOperand,
        b: DOperand,
        c: DOperand,
        ty: VType,
    },
    Select {
        dst: u32,
        cond: DOperand,
        a: DOperand,
        b: DOperand,
        ty: VType,
    },
    Mov {
        dst: u32,
        a: DOperand,
        ty: VType,
    },
    CastReg {
        dst: u32,
        src: u32,
        to: Scalar,
        ty: VType,
    },
    Horiz {
        dst: u32,
        op: HorizOp,
        src: u32,
        ty: VType,
    },
    Extract {
        dst: u32,
        src: u32,
        lane: u8,
        ty: VType,
    },
    Insert {
        dst: u32,
        v: DOperand,
        lane: u8,
        ty: VType,
    },
    Query {
        dst: u32,
        q: Builtin,
    },
    /// By-value scalar arg read: free register write, no memory event.
    LoadScalarArg {
        dst: u32,
        v: Value,
    },
    Load {
        dst: u32,
        loc: DLoc,
        idx: DOperand,
        ty: VType,
        stream: u32,
    },
    VLoad {
        dst: u32,
        loc: DLoc,
        base: DOperand,
        ty: VType,
        stream: u32,
    },
    Store {
        loc: DLoc,
        idx: DOperand,
        val: DOperand,
        vt: VType,
        stream: u32,
    },
    VStore {
        loc: DLoc,
        base: DOperand,
        val: u32,
        stream: u32,
    },
    Atomic {
        op: AtomicOp,
        loc: DLoc,
        idx: DOperand,
        val: DOperand,
        /// Pre-splatted constant 1 for `atomic_inc`.
        one: Value,
        old: Option<u32>,
        elem: Scalar,
        stream: u32,
    },
    For {
        var: u32,
        elem: Scalar,
        start: DOperand,
        end: DOperand,
        step: DOperand,
        body: (u32, u32),
    },
    If {
        cond: DOperand,
        then: (u32, u32),
        els: (u32, u32),
    },
}

/// A [`Program`] decoded against one launch's bindings: flat op arena,
/// per-phase ranges, the zeroed register-file template, and the local-buffer
/// layout. Built once per launch, shared read-only by all workers.
pub struct DecodedProgram {
    pub(crate) ops: Vec<DOp>,
    /// Top-level barrier phases as `ops` ranges, in execution order.
    pub(crate) phases: Vec<(u32, u32)>,
    /// Zero-of-declared-type template copied into each item's register file.
    pub(crate) reg_init: Vec<Value>,
    /// Declared type of each register (drives the columnar engine's
    /// per-register column layout).
    pub(crate) reg_tys: Vec<VType>,
    /// Per-argument local-buffer spec: `(elem, len)` for local args.
    pub(crate) local_specs: Vec<Option<(Scalar, usize)>>,
    /// Whether any atomic targets a global buffer (forces serial groups).
    pub(crate) has_global_atomic: bool,
    /// Whether the columnar engine may run this program: every atomic must be
    /// an integer RMW without an `old` capture, so the final memory bits are
    /// independent of the order work-items apply them.
    pub(crate) columnar_ok: bool,
}

impl DecodedProgram {
    /// Decode `program` against `bindings`. The caller must have validated
    /// the bindings with [`check_bindings`] first.
    pub fn decode(program: &Program, bindings: &[ArgBinding], pool: &MemoryPool) -> Self {
        let mut dec = Decoder {
            prog: program,
            bindings,
            pool,
            ops: Vec::new(),
            has_global_atomic: false,
            columnar_ok: true,
        };
        let phases = program
            .phases()
            .iter()
            .map(|phase| dec.block(phase))
            .collect();
        let local_specs = program
            .args
            .iter()
            .zip(bindings)
            .map(|(decl, bind)| match (decl, bind) {
                (ArgDecl::LocalBuf { elem }, ArgBinding::LocalSize(n)) => Some((*elem, *n)),
                _ => None,
            })
            .collect();
        DecodedProgram {
            ops: dec.ops,
            phases,
            reg_init: program.regs.iter().map(|t| Value::zero(*t)).collect(),
            reg_tys: program.regs.clone(),
            local_specs,
            has_global_atomic: dec.has_global_atomic,
            columnar_ok: dec.columnar_ok,
        }
    }

    /// Whether this launch performs atomics on global buffers.
    pub fn has_global_atomic(&self) -> bool {
        self.has_global_atomic
    }

    /// Whether the columnar engine can execute this launch bit-identically.
    pub fn columnar_ok(&self) -> bool {
        self.columnar_ok
    }
}

/// Splat an immediate to the consumer's type (decode-time twin of the old
/// per-use `eval_operand` immediate path).
fn splat_imm(o: &Operand, want: VType) -> Value {
    match o {
        Operand::Reg(_) => unreachable!("register operand in immediate splat"),
        Operand::ImmF(x) => match want.elem {
            Scalar::F32 => Value::splat_f32(*x as f32, want.width),
            Scalar::F64 => Value::splat_f64(*x, want.width),
            other => panic!("float immediate in {other} context"),
        },
        Operand::ImmI(x) => match want.elem {
            Scalar::F32 => Value::splat_f32(*x as f32, want.width),
            Scalar::F64 => Value::splat_f64(*x as f64, want.width),
            Scalar::I32 => Value::splat_i32(*x as i32, want.width),
            Scalar::I64 => Value::splat_i64(*x, want.width),
            Scalar::U32 => Value::splat_u32(*x as u32, want.width),
            Scalar::U64 => Value::splat_u64(*x as u64, want.width),
            Scalar::Bool => panic!("integer immediate in bool context"),
        },
    }
}

struct Decoder<'a> {
    prog: &'a Program,
    bindings: &'a [ArgBinding],
    pool: &'a MemoryPool,
    ops: Vec<DOp>,
    has_global_atomic: bool,
    columnar_ok: bool,
}

impl Decoder<'_> {
    fn operand(&self, o: &Operand, want: VType) -> DOperand {
        match o {
            Operand::Reg(r) => {
                if self.prog.reg_ty(*r).width == want.width {
                    DOperand::Reg(r.0)
                } else {
                    DOperand::RegBc(r.0, want.width)
                }
            }
            imm => DOperand::Const(splat_imm(imm, want)),
        }
    }

    /// Decode a block contiguously into the arena. Nested bodies are decoded
    /// first (they land earlier in the arena); ranges are unaffected.
    fn block(&mut self, ops: &[Op]) -> (u32, u32) {
        let mut decoded = Vec::with_capacity(ops.len());
        for op in ops {
            decoded.push(self.op(op));
        }
        let start = self.ops.len() as u32;
        self.ops.extend(decoded);
        (start, self.ops.len() as u32)
    }

    /// Resolve a buffer argument to its location and stream id.
    fn loc(&self, buf: crate::instr::ArgIdx, what: &str) -> (DLoc, u32) {
        match &self.bindings[buf.0 as usize] {
            ArgBinding::Global(pool_idx) => (DLoc::Global(*pool_idx), buf.0),
            ArgBinding::LocalSize(_) => (DLoc::Local(buf.0 as usize), buf.0),
            ArgBinding::Scalar(_) => panic!("{what} scalar argument"),
        }
    }

    /// Element type of a buffer argument.
    fn buf_elem(&self, buf: crate::instr::ArgIdx) -> Scalar {
        match (
            &self.prog.args[buf.0 as usize],
            &self.bindings[buf.0 as usize],
        ) {
            (ArgDecl::GlobalBuf { .. }, ArgBinding::Global(pool_idx)) => {
                self.pool.get(*pool_idx).elem()
            }
            (ArgDecl::LocalBuf { elem }, _) => *elem,
            _ => unreachable!("checked by check_bindings"),
        }
    }

    fn op(&mut self, op: &Op) -> DOp {
        let prog = self.prog;
        match op {
            Op::Bin {
                dst,
                op: b,
                a,
                b: rhs,
            } => {
                let dt = prog.reg_ty(*dst);
                let src_ty = if b.is_compare() {
                    // operand type comes from whichever side is a register
                    match (a, rhs) {
                        (Operand::Reg(r), _) | (_, Operand::Reg(r)) => prog.reg_ty(*r),
                        _ => panic!("compare with two immediates"),
                    }
                } else {
                    dt
                };
                let class = match b {
                    BinOp::Mul => OpClass::Mul,
                    BinOp::Div | BinOp::Rem => OpClass::Div,
                    _ => OpClass::Simple,
                };
                DOp::Bin {
                    dst: dst.0,
                    op: *b,
                    a: self.operand(a, src_ty),
                    b: self.operand(rhs, src_ty),
                    class,
                    ty: src_ty,
                }
            }
            Op::Un { dst, op: u, a } => {
                let dt = prog.reg_ty(*dst);
                let class = match u {
                    UnOp::Exp | UnOp::Log => OpClass::Transcendental,
                    UnOp::Rsqrt => OpClass::Rsqrt,
                    _ if u.is_special() => OpClass::Special,
                    _ => OpClass::Simple,
                };
                DOp::Un {
                    dst: dst.0,
                    op: *u,
                    a: self.operand(a, dt),
                    class,
                    ty: dt,
                }
            }
            Op::Mad { dst, a, b, c } => {
                let dt = prog.reg_ty(*dst);
                DOp::Mad {
                    dst: dst.0,
                    a: self.operand(a, dt),
                    b: self.operand(b, dt),
                    c: self.operand(c, dt),
                    ty: dt,
                }
            }
            Op::Select { dst, cond, a, b } => {
                let dt = prog.reg_ty(*dst);
                DOp::Select {
                    dst: dst.0,
                    cond: self.operand(
                        cond,
                        VType {
                            elem: Scalar::Bool,
                            width: dt.width,
                        },
                    ),
                    a: self.operand(a, dt),
                    b: self.operand(b, dt),
                    ty: dt,
                }
            }
            Op::Mov { dst, a } => {
                let dt = prog.reg_ty(*dst);
                DOp::Mov {
                    dst: dst.0,
                    a: self.operand(a, dt),
                    ty: dt,
                }
            }
            Op::Cast { dst, a } => {
                let dt = prog.reg_ty(*dst);
                match a {
                    Operand::Reg(r) => DOp::CastReg {
                        dst: dst.0,
                        src: r.0,
                        to: dt.elem,
                        ty: dt,
                    },
                    // Immediate: splat-to-dt then cast-to-dt.elem is just the
                    // splat; traced identically to Mov (OpClass::Move, dt).
                    imm => DOp::Mov {
                        dst: dst.0,
                        a: DOperand::Const(splat_imm(imm, dt).cast(dt.elem)),
                        ty: dt,
                    },
                }
            }
            Op::Horiz { dst, op: h, a } => {
                let src = match a {
                    Operand::Reg(r) => r,
                    _ => panic!("horizontal reduction of immediate"),
                };
                DOp::Horiz {
                    dst: dst.0,
                    op: *h,
                    src: src.0,
                    ty: prog.reg_ty(*src),
                }
            }
            Op::Extract { dst, a, lane } => {
                let src = match a {
                    Operand::Reg(r) => r,
                    _ => panic!("extract from immediate"),
                };
                DOp::Extract {
                    dst: dst.0,
                    src: src.0,
                    lane: *lane,
                    ty: VType::scalar(prog.reg_ty(*src).elem),
                }
            }
            Op::Insert { dst, v, lane } => {
                let dt = prog.reg_ty(*dst);
                DOp::Insert {
                    dst: dst.0,
                    v: self.operand(v, VType::scalar(dt.elem)),
                    lane: *lane,
                    ty: VType::scalar(dt.elem),
                }
            }
            Op::Query { dst, q } => DOp::Query { dst: dst.0, q: *q },
            Op::Load { dst, buf, idx } => {
                let dt = prog.reg_ty(*dst);
                if let ArgBinding::Scalar(v) = &self.bindings[buf.0 as usize] {
                    return DOp::LoadScalarArg { dst: dst.0, v: *v };
                }
                let iw = operand_width(prog, idx);
                let (loc, stream) = self.loc(*buf, "load from");
                DOp::Load {
                    dst: dst.0,
                    loc,
                    idx: self.operand(
                        idx,
                        VType {
                            elem: Scalar::U32,
                            width: iw.max(1),
                        },
                    ),
                    ty: dt,
                    stream,
                }
            }
            Op::VLoad { dst, buf, base } => {
                let dt = prog.reg_ty(*dst);
                let (loc, stream) = self.loc(*buf, "vload from");
                DOp::VLoad {
                    dst: dst.0,
                    loc,
                    base: self.operand(base, VType::scalar(Scalar::U32)),
                    ty: dt,
                    stream,
                }
            }
            Op::Store { buf, idx, val } => {
                let iw = operand_width(prog, idx);
                let vt = VType {
                    elem: self.buf_elem(*buf),
                    width: iw,
                };
                let (loc, stream) = self.loc(*buf, "store to");
                DOp::Store {
                    loc,
                    idx: self.operand(
                        idx,
                        VType {
                            elem: Scalar::U32,
                            width: iw,
                        },
                    ),
                    val: self.operand(val, vt),
                    vt,
                    stream,
                }
            }
            Op::VStore { buf, base, val } => {
                let v = match val {
                    Operand::Reg(r) => r,
                    _ => panic!("vstore of immediate"),
                };
                let (loc, stream) = self.loc(*buf, "vstore to");
                DOp::VStore {
                    loc,
                    base: self.operand(base, VType::scalar(Scalar::U32)),
                    val: v.0,
                    stream,
                }
            }
            Op::Atomic {
                op: aop,
                buf,
                idx,
                val,
                old,
            } => {
                let elem = self.buf_elem(*buf);
                let (loc, stream) = self.loc(*buf, "atomic on");
                if matches!(loc, DLoc::Global(_)) {
                    self.has_global_atomic = true;
                }
                // The columnar engine applies atomics instruction-major, not
                // item-major. That is only bit-equivalent when the RMW is an
                // integer commutative/associative update whose intermediate
                // (`old`) value is never observed.
                if old.is_some() || !elem.is_int() {
                    self.columnar_ok = false;
                }
                DOp::Atomic {
                    op: *aop,
                    loc,
                    idx: self.operand(idx, VType::scalar(Scalar::U32)),
                    val: self.operand(val, VType::scalar(elem)),
                    one: splat_imm(&Operand::ImmI(1), VType::scalar(elem)),
                    old: old.map(|r| r.0),
                    elem,
                    stream,
                }
            }
            Op::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                let vt = prog.reg_ty(*var);
                let body = self.block(body);
                DOp::For {
                    var: var.0,
                    elem: vt.elem,
                    start: self.operand(start, vt),
                    end: self.operand(end, vt),
                    step: self.operand(step, vt),
                    body,
                }
            }
            Op::If { cond, then, els } => {
                let then = self.block(then);
                let els = self.block(els);
                DOp::If {
                    cond: self.operand(cond, VType::scalar(Scalar::Bool)),
                    then,
                    els,
                }
            }
            Op::Barrier => {
                unreachable!("barriers are phase boundaries, split by Program::phases")
            }
        }
    }
}

/// Element-index width of an index operand used for gathers.
fn operand_width(prog: &Program, o: &Operand) -> u8 {
    match o {
        Operand::Reg(r) => prog.reg_ty(*r).width,
        _ => 1,
    }
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

/// Per-work-item execution state.
struct ItemCtx {
    regs: Vec<Value>,
    global_id: [usize; 3],
    local_id: [usize; 3],
}

/// Per-group mutable memory state (local buffers + their addresses), shared
/// by the scalar and columnar engines.
#[derive(Default)]
pub(crate) struct GroupState {
    pub(crate) locals: Vec<Option<BufferData>>,
    pub(crate) local_addrs: Vec<u64>,
}

impl GroupState {
    /// Make the local-buffer set match `dp` (no-op when it already does).
    pub(crate) fn prepare(&mut self, dp: &DecodedProgram) {
        let locals_match = self.locals.len() == dp.local_specs.len()
            && dp
                .local_specs
                .iter()
                .zip(&self.locals)
                .all(|(spec, have)| match (spec, have) {
                    (Some((e, n)), Some(b)) => b.elem() == *e && b.len() == *n,
                    (None, None) => true,
                    _ => false,
                });
        if !locals_match {
            self.locals = dp
                .local_specs
                .iter()
                .map(|s| s.map(|(e, n)| BufferData::zeroed(e, n)))
                .collect();
            self.local_addrs = vec![0; dp.local_specs.len()];
        }
    }

    /// Zero the local buffers and lay out their simulated addresses for
    /// `group_linear`.
    pub(crate) fn begin_group(&mut self, dp: &DecodedProgram, group_linear: usize) {
        let mut next_local = LOCAL_MEM_BASE + group_linear as u64 * LOCAL_MEM_STRIDE;
        for (i, spec) in dp.local_specs.iter().enumerate() {
            match spec {
                Some((elem, n)) => {
                    if let Some(b) = self.locals[i].as_mut() {
                        b.zero_fill();
                    }
                    self.local_addrs[i] = next_local;
                    next_local += (*n as u64 * elem.bytes() as u64).max(64);
                }
                None => self.local_addrs[i] = 0,
            }
        }
    }
}

/// Reusable execution scratch: item contexts (register files) and local
/// buffers survive across groups — and, via a thread-local, across the tasks
/// a pool worker executes — instead of being reallocated per group.
#[derive(Default)]
struct ExecScratch {
    items: Vec<ItemCtx>,
    group: GroupState,
}

impl ExecScratch {
    /// Make the scratch shape match `dp`/`ndr` (no-op when it already does).
    fn prepare(&mut self, dp: &DecodedProgram, ndr: NDRange) {
        let n_items = ndr.group_size();
        let n_regs = dp.reg_init.len();
        if self.items.len() != n_items
            || self.items.first().is_some_and(|it| it.regs.len() != n_regs)
        {
            self.items = (0..n_items)
                .map(|_| ItemCtx {
                    regs: dp.reg_init.clone(),
                    global_id: [0; 3],
                    local_id: [0; 3],
                })
                .collect();
        }
        self.group.prepare(dp);
    }

    /// Reset item ids/registers and local buffers for `group_linear`.
    fn begin_group(&mut self, dp: &DecodedProgram, ndr: NDRange, group_linear: usize) {
        let group_id = ndr.group_coords(group_linear);
        let lsz = ndr.local;
        for (lin, item) in self.items.iter_mut().enumerate() {
            item.local_id = [
                lin % lsz[0],
                (lin / lsz[0]) % lsz[1],
                lin / (lsz[0] * lsz[1]),
            ];
            item.global_id = [
                group_id[0] * lsz[0] + item.local_id[0],
                group_id[1] * lsz[1] + item.local_id[1],
                group_id[2] * lsz[2] + item.local_id[2],
            ];
            item.regs.copy_from_slice(&dp.reg_init);
        }
        self.group.begin_group(dp, group_linear);
    }
}

thread_local! {
    /// Worker-local scratch for the sharded engine: reused across every
    /// group a pool worker executes.
    static SCRATCH: RefCell<ExecScratch> = RefCell::new(ExecScratch::default());
}

/// Execute one work-group into `tracer`, reusing `scratch`.
fn exec_group_into<T: ExecTracer>(
    dp: &DecodedProgram,
    ndr: NDRange,
    group_linear: usize,
    pool: &mut MemoryPool,
    scratch: &mut ExecScratch,
    tracer: &mut T,
) {
    tracer.group_start();
    scratch.prepare(dp, ndr);
    scratch.begin_group(dp, ndr, group_linear);
    let n_items = ndr.group_size() as u32;
    let n_phases = dp.phases.len();
    let ExecScratch { items, group } = scratch;
    for (pi, range) in dp.phases.iter().enumerate() {
        for item in items.iter_mut() {
            if pi == 0 {
                tracer.thread_start();
            }
            exec_range(dp, pool, group, ndr, item, *range, tracer);
        }
        if pi + 1 < n_phases {
            tracer.barrier(n_items);
        }
    }
}

// ---------------------------------------------------------------------------
// The hot loop
// ---------------------------------------------------------------------------

/// Operand value: a borrow of a register or decoded constant when no
/// broadcast is needed (the common case — no 136-byte `Value` copy), an
/// owned temporary otherwise.
enum OpVal<'a> {
    Ref(&'a Value),
    Own(Value),
}

impl OpVal<'_> {
    #[inline]
    fn get(&self) -> &Value {
        match self {
            OpVal::Ref(v) => v,
            OpVal::Own(v) => v,
        }
    }
}

#[inline]
fn ev<'a>(regs: &'a [Value], o: &'a DOperand) -> OpVal<'a> {
    match o {
        DOperand::Reg(i) => OpVal::Ref(&regs[*i as usize]),
        DOperand::RegBc(i, w) => OpVal::Own(regs[*i as usize].broadcast(*w)),
        DOperand::Const(v) => OpVal::Ref(v),
    }
}

fn exec_range<T: ExecTracer>(
    dp: &DecodedProgram,
    pool: &mut MemoryPool,
    grp: &mut GroupState,
    ndr: NDRange,
    item: &mut ItemCtx,
    range: (u32, u32),
    tracer: &mut T,
) {
    for i in range.0..range.1 {
        exec_dop(dp, pool, grp, ndr, item, &dp.ops[i as usize], tracer);
    }
}

#[inline]
fn exec_dop<T: ExecTracer>(
    dp: &DecodedProgram,
    pool: &mut MemoryPool,
    grp: &mut GroupState,
    ndr: NDRange,
    item: &mut ItemCtx,
    op: &DOp,
    tracer: &mut T,
) {
    match op {
        DOp::Bin {
            dst,
            op,
            a,
            b,
            class,
            ty,
        } => {
            let r = {
                let va = ev(&item.regs, a);
                let vb = ev(&item.regs, b);
                tracer.op(*class, *ty);
                eval_bin(*op, va.get(), vb.get())
            };
            item.regs[*dst as usize] = r;
        }
        DOp::Un {
            dst,
            op,
            a,
            class,
            ty,
        } => {
            let r = {
                let va = ev(&item.regs, a);
                tracer.op(*class, *ty);
                eval_un(*op, va.get())
            };
            item.regs[*dst as usize] = r;
        }
        DOp::Mad { dst, a, b, c, ty } => {
            let r = {
                let va = ev(&item.regs, a);
                let vb = ev(&item.regs, b);
                let vc = ev(&item.regs, c);
                tracer.op(OpClass::Mad, *ty);
                eval_mad(va.get(), vb.get(), vc.get())
            };
            item.regs[*dst as usize] = r;
        }
        DOp::Select {
            dst,
            cond,
            a,
            b,
            ty,
        } => {
            let r = {
                let vc = ev(&item.regs, cond);
                let va = ev(&item.regs, a);
                let vb = ev(&item.regs, b);
                tracer.op(OpClass::Move, *ty);
                eval_select(vc.get(), va.get(), vb.get())
            };
            item.regs[*dst as usize] = r;
        }
        DOp::Mov { dst, a, ty } => {
            tracer.op(OpClass::Move, *ty);
            let r = *ev(&item.regs, a).get();
            item.regs[*dst as usize] = r;
        }
        DOp::CastReg { dst, src, to, ty } => {
            tracer.op(OpClass::Move, *ty);
            let r = item.regs[*src as usize].cast(*to);
            item.regs[*dst as usize] = r;
        }
        DOp::Horiz { dst, op, src, ty } => {
            tracer.op(OpClass::Horizontal, *ty);
            let src = &item.regs[*src as usize];
            let r = match op {
                HorizOp::Add => src.reduce_add(),
                HorizOp::Min => src.reduce_min(),
                HorizOp::Max => src.reduce_max(),
            };
            item.regs[*dst as usize] = r;
        }
        DOp::Extract { dst, src, lane, ty } => {
            tracer.op(OpClass::Move, *ty);
            let r = item.regs[*src as usize].extract(*lane as usize);
            item.regs[*dst as usize] = r;
        }
        DOp::Insert { dst, v, lane, ty } => {
            let val = *ev(&item.regs, v).get();
            tracer.op(OpClass::Move, *ty);
            let cur = item.regs[*dst as usize];
            item.regs[*dst as usize] = cur.insert(*lane as usize, &val);
        }
        DOp::Query { dst, q } => {
            let v = match q {
                Builtin::GlobalId(d) => item.global_id[*d as usize],
                Builtin::LocalId(d) => item.local_id[*d as usize],
                Builtin::GroupId(d) => item.global_id[*d as usize] / ndr.local[*d as usize],
                Builtin::GlobalSize(d) => ndr.global[*d as usize],
                Builtin::LocalSize(d) => ndr.local[*d as usize],
                Builtin::NumGroups(d) => ndr.num_groups()[*d as usize],
            };
            tracer.op(OpClass::Move, VType::scalar(Scalar::U32));
            item.regs[*dst as usize] = Value::u32(v as u32);
        }
        DOp::LoadScalarArg { dst, v } => {
            item.regs[*dst as usize] = *v;
        }
        DOp::Load {
            dst,
            loc,
            idx,
            ty,
            stream,
        } => {
            let val = {
                let vidx = ev(&item.regs, idx);
                let vidx = vidx.get();
                match loc {
                    DLoc::Global(pool_idx) => {
                        let data = pool.get(*pool_idx);
                        let val = if ty.width == 1 {
                            data.get(vidx.lane_index(0))
                        } else {
                            data.gather(vidx)
                        };
                        emit_global_access(
                            pool,
                            *pool_idx,
                            vidx,
                            *ty,
                            AccessKind::Read,
                            *stream,
                            tracer,
                        );
                        val
                    }
                    DLoc::Local(arg_idx) => {
                        let base = grp.local_addrs[*arg_idx];
                        let data = grp.locals[*arg_idx].as_ref().expect("local buffer");
                        let val = if ty.width == 1 {
                            data.get(vidx.lane_index(0))
                        } else {
                            data.gather(vidx)
                        };
                        emit_local_access(base, vidx, *ty, AccessKind::Read, *stream, tracer);
                        val
                    }
                }
            };
            item.regs[*dst as usize] = val;
        }
        DOp::VLoad {
            dst,
            loc,
            base,
            ty,
            stream,
        } => {
            let b = ev(&item.regs, base).get().lane_index(0);
            let pattern = if ty.width == 1 {
                Pattern::Scalar
            } else {
                Pattern::Contiguous
            };
            let val = match loc {
                DLoc::Global(pool_idx) => {
                    let val = pool.get(*pool_idx).vload(b, ty.width);
                    tracer.mem(
                        &MemAccess {
                            stream: *stream,
                            space: MemSpace::Global,
                            kind: AccessKind::Read,
                            addr: pool.elem_addr(*pool_idx, b),
                            bytes: ty.bytes(),
                            elem: ty.elem,
                            width: ty.width,
                            pattern,
                        },
                        &[],
                    );
                    val
                }
                DLoc::Local(arg_idx) => {
                    let addr = grp.local_addrs[*arg_idx] + b as u64 * ty.elem.bytes() as u64;
                    let data = grp.locals[*arg_idx].as_ref().expect("local buffer");
                    let val = data.vload(b, ty.width);
                    tracer.mem(
                        &MemAccess {
                            stream: *stream,
                            space: MemSpace::Local,
                            kind: AccessKind::Read,
                            addr,
                            bytes: ty.bytes(),
                            elem: ty.elem,
                            width: ty.width,
                            pattern,
                        },
                        &[],
                    );
                    val
                }
            };
            item.regs[*dst as usize] = val;
        }
        DOp::Store {
            loc,
            idx,
            val,
            vt,
            stream,
        } => {
            let vidx = ev(&item.regs, idx);
            let vidx = vidx.get();
            let vval = ev(&item.regs, val);
            let vval = vval.get();
            match loc {
                DLoc::Global(pool_idx) => {
                    emit_global_access(
                        pool,
                        *pool_idx,
                        vidx,
                        *vt,
                        AccessKind::Write,
                        *stream,
                        tracer,
                    );
                    let data = pool.get_mut(*pool_idx);
                    for lane in 0..vt.width as usize {
                        data.set(vidx.lane_index(lane), vval, lane);
                    }
                }
                DLoc::Local(arg_idx) => {
                    let base = grp.local_addrs[*arg_idx];
                    emit_local_access(base, vidx, *vt, AccessKind::Write, *stream, tracer);
                    let data = grp.locals[*arg_idx].as_mut().expect("local buffer");
                    for lane in 0..vt.width as usize {
                        data.set(vidx.lane_index(lane), vval, lane);
                    }
                }
            }
        }
        DOp::VStore {
            loc,
            base,
            val,
            stream,
        } => {
            let b = ev(&item.regs, base).get().lane_index(0);
            let vval = &item.regs[*val as usize];
            let vt = vval.vtype();
            let pattern = if vt.width == 1 {
                Pattern::Scalar
            } else {
                Pattern::Contiguous
            };
            match loc {
                DLoc::Global(pool_idx) => {
                    tracer.mem(
                        &MemAccess {
                            stream: *stream,
                            space: MemSpace::Global,
                            kind: AccessKind::Write,
                            addr: pool.elem_addr(*pool_idx, b),
                            bytes: vt.bytes(),
                            elem: vt.elem,
                            width: vt.width,
                            pattern,
                        },
                        &[],
                    );
                    let vval = item.regs[*val as usize];
                    pool.get_mut(*pool_idx).vstore(b, &vval);
                }
                DLoc::Local(arg_idx) => {
                    let addr = grp.local_addrs[*arg_idx] + b as u64 * vt.elem.bytes() as u64;
                    tracer.mem(
                        &MemAccess {
                            stream: *stream,
                            space: MemSpace::Local,
                            kind: AccessKind::Write,
                            addr,
                            bytes: vt.bytes(),
                            elem: vt.elem,
                            width: vt.width,
                            pattern,
                        },
                        &[],
                    );
                    let vval = item.regs[*val as usize];
                    grp.locals[*arg_idx]
                        .as_mut()
                        .expect("local buffer")
                        .vstore(b, &vval);
                }
            }
        }
        DOp::Atomic {
            op,
            loc,
            idx,
            val,
            one,
            old,
            elem,
            stream,
        } => {
            let i = ev(&item.regs, idx).get().lane_index(0);
            let (space, addr) = match loc {
                DLoc::Global(pool_idx) => (MemSpace::Global, pool.elem_addr(*pool_idx, i)),
                DLoc::Local(arg_idx) => (
                    MemSpace::Local,
                    grp.local_addrs[*arg_idx] + i as u64 * elem.bytes() as u64,
                ),
            };
            let vval = *ev(&item.regs, val).get();
            tracer.mem(
                &MemAccess {
                    stream: *stream,
                    space,
                    kind: AccessKind::Atomic,
                    addr,
                    bytes: elem.bytes(),
                    elem: *elem,
                    width: 1,
                    pattern: Pattern::Scalar,
                },
                &[],
            );
            let data: &mut BufferData = match loc {
                DLoc::Global(pool_idx) => pool.get_mut(*pool_idx),
                DLoc::Local(arg_idx) => grp.locals[*arg_idx].as_mut().expect("local buffer"),
            };
            let cur = data.get(i);
            let next = match op {
                AtomicOp::Add => eval_bin(BinOp::Add, &cur, &vval),
                AtomicOp::Inc => eval_bin(BinOp::Add, &cur, one),
                AtomicOp::Min => eval_bin(BinOp::Min, &cur, &vval),
                AtomicOp::Max => eval_bin(BinOp::Max, &cur, &vval),
            };
            data.set(i, &next, 0);
            if let Some(o) = old {
                item.regs[*o as usize] = cur;
            }
        }
        DOp::For {
            var,
            elem,
            start,
            end,
            step,
            body,
        } => {
            let (mut i, end_i, step_i) = (
                ev(&item.regs, start).get().lane_i64(0),
                ev(&item.regs, end).get().lane_i64(0),
                ev(&item.regs, step).get().lane_i64(0),
            );
            assert!(step_i != 0, "zero loop step");
            while (step_i > 0 && i < end_i) || (step_i < 0 && i > end_i) {
                item.regs[*var as usize] = match elem {
                    Scalar::I32 => Value::i32(i as i32),
                    Scalar::I64 => Value::i64(i),
                    Scalar::U32 => Value::u32(i as u32),
                    Scalar::U64 => Value::u64(i as u64),
                    other => panic!("loop counter of type {other}"),
                };
                tracer.loop_iter();
                exec_range(dp, pool, grp, ndr, item, *body, tracer);
                i += step_i;
            }
        }
        DOp::If { cond, then, els } => {
            let c = ev(&item.regs, cond).get().lane_bool(0);
            tracer.op(OpClass::Simple, VType::scalar(Scalar::Bool));
            if c {
                exec_range(dp, pool, grp, ndr, item, *then, tracer);
            } else {
                exec_range(dp, pool, grp, ndr, item, *els, tracer);
            }
        }
    }
}

fn emit_global_access<T: ExecTracer>(
    pool: &MemoryPool,
    pool_idx: usize,
    vidx: &Value,
    vt: VType,
    kind: AccessKind,
    stream: u32,
    tracer: &mut T,
) {
    let w = vidx.width();
    if w == 1 {
        tracer.mem(
            &MemAccess {
                stream,
                space: MemSpace::Global,
                kind,
                addr: pool.elem_addr(pool_idx, vidx.lane_index(0)),
                bytes: vt.elem.bytes(),
                elem: vt.elem,
                width: 1,
                pattern: Pattern::Scalar,
            },
            &[],
        );
    } else {
        let mut lane_addrs = [0u64; MAX_LANES];
        for (lane, slot) in lane_addrs.iter_mut().enumerate().take(w as usize) {
            *slot = pool.elem_addr(pool_idx, vidx.lane_index(lane));
        }
        tracer.mem(
            &MemAccess {
                stream,
                space: MemSpace::Global,
                kind,
                addr: lane_addrs[0],
                bytes: vt.elem.bytes() * w as u32,
                elem: vt.elem,
                width: w,
                pattern: Pattern::Gather,
            },
            &lane_addrs[..w as usize],
        );
    }
}

fn emit_local_access<T: ExecTracer>(
    base: u64,
    vidx: &Value,
    vt: VType,
    kind: AccessKind,
    stream: u32,
    tracer: &mut T,
) {
    let w = vidx.width();
    if w == 1 {
        tracer.mem(
            &MemAccess {
                stream,
                space: MemSpace::Local,
                kind,
                addr: base + vidx.lane_index(0) as u64 * vt.elem.bytes() as u64,
                bytes: vt.elem.bytes(),
                elem: vt.elem,
                width: 1,
                pattern: Pattern::Scalar,
            },
            &[],
        );
    } else {
        let mut lane_addrs = [0u64; MAX_LANES];
        for (lane, slot) in lane_addrs.iter_mut().enumerate().take(w as usize) {
            *slot = base + vidx.lane_index(lane) as u64 * vt.elem.bytes() as u64;
        }
        tracer.mem(
            &MemAccess {
                stream,
                space: MemSpace::Local,
                kind,
                addr: lane_addrs[0],
                bytes: vt.elem.bytes() * w as u32,
                elem: vt.elem,
                width: w,
                pattern: Pattern::Gather,
            },
            &lane_addrs[..w as usize],
        );
    }
}

// ---------------------------------------------------------------------------
// Engine selection
// ---------------------------------------------------------------------------

/// Which interpreter core executes work-groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The original per-item path: one work-item at a time, per-item
    /// register files of boxed-width `Value`s.
    Scalar,
    /// The columnar path: registers are SoA columns indexed by work-item,
    /// each decoded instruction runs across the whole group as a tight
    /// monomorphic loop, divergence is handled with active-masks.
    Columnar,
}

impl Engine {
    /// Stable name, as accepted by the `SIM_EXEC` environment variable.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Scalar => "scalar",
            Engine::Columnar => "columnar",
        }
    }
}

/// 0 = unresolved (read `SIM_EXEC` lazily), 1 = scalar, 2 = columnar.
static ENGINE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// The configured execution engine. Resolved once from the `SIM_EXEC`
/// environment variable (`scalar` | `columnar`, default columnar) unless
/// [`set_engine`] was called first.
pub fn engine() -> Engine {
    match ENGINE.load(std::sync::atomic::Ordering::Relaxed) {
        1 => Engine::Scalar,
        2 => Engine::Columnar,
        _ => {
            let e = match std::env::var("SIM_EXEC") {
                Ok(v) if v == "scalar" => Engine::Scalar,
                Ok(v) if v == "columnar" || v.is_empty() => Engine::Columnar,
                Ok(v) => panic!("SIM_EXEC must be 'scalar' or 'columnar', got '{v}'"),
                Err(_) => Engine::Columnar,
            };
            set_engine(e);
            e
        }
    }
}

/// Select the execution engine for subsequent launches (overrides
/// `SIM_EXEC`). Launches in flight keep the engine they resolved at start.
pub fn set_engine(e: Engine) {
    let v = match e {
        Engine::Scalar => 1,
        Engine::Columnar => 2,
    };
    ENGINE.store(v, std::sync::atomic::Ordering::Relaxed);
}

/// The engine a launch of `dp` actually uses under `requested`: launches the
/// columnar core cannot reproduce bit-identically fall back to scalar.
fn resolve_engine(requested: Engine, dp: &DecodedProgram) -> Engine {
    if requested == Engine::Columnar && dp.columnar_ok {
        Engine::Columnar
    } else {
        Engine::Scalar
    }
}

/// Scratch for whichever engine a launch resolves to; only the used side
/// allocates.
#[derive(Default)]
struct EngineScratch {
    scalar: ExecScratch,
    columnar: crate::columnar::ColScratch,
}

thread_local! {
    /// Worker-local columnar scratch for the sharded engine.
    static COL_SCRATCH: RefCell<crate::columnar::ColScratch> =
        RefCell::new(crate::columnar::ColScratch::default());
}

// ---------------------------------------------------------------------------
// Serial executor (public API, unchanged)
// ---------------------------------------------------------------------------

/// Executes one work-group at a time.
pub struct GroupExecutor<'a, T: ExecTracer> {
    dp: DecodedProgram,
    pool: &'a mut MemoryPool,
    ndrange: NDRange,
    pub tracer: &'a mut T,
    scratch: EngineScratch,
    engine: Engine,
}

impl<'a, T: ExecTracer> GroupExecutor<'a, T> {
    /// Build an executor on the globally configured [`engine`].
    pub fn new(
        program: &'a Program,
        bindings: &'a [ArgBinding],
        pool: &'a mut MemoryPool,
        ndrange: NDRange,
        tracer: &'a mut T,
    ) -> Result<Self, ExecError> {
        Self::with_engine(program, bindings, pool, ndrange, tracer, engine())
    }

    /// Build an executor on an explicit engine (differential tests compare
    /// both cores in-process without touching the global selection).
    pub fn with_engine(
        program: &'a Program,
        bindings: &'a [ArgBinding],
        pool: &'a mut MemoryPool,
        ndrange: NDRange,
        tracer: &'a mut T,
        engine: Engine,
    ) -> Result<Self, ExecError> {
        if !ndrange.valid() {
            return Err(ExecError::InvalidNDRange(ndrange));
        }
        // Ambient optimizer pipeline (SIM_PASSES / opt::with_passes), the
        // same hook for every engine and thread count so results stay
        // byte-identical across the execution matrix.
        let opt = crate::opt::ambient().map(|pl| pl.run(program));
        let program = opt.as_ref().unwrap_or(program);
        check_bindings(program, bindings, pool)?;
        let dp = DecodedProgram::decode(program, bindings, pool);
        let engine = resolve_engine(engine, &dp);
        Ok(GroupExecutor {
            dp,
            pool,
            ndrange,
            tracer,
            scratch: EngineScratch::default(),
            engine,
        })
    }

    /// The engine this launch resolved to (columnar may fall back to scalar
    /// for launches it cannot reproduce bit-identically).
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Run one work-group identified by its linear id.
    pub fn run_group(&mut self, group_linear: usize) {
        match self.engine {
            Engine::Scalar => exec_group_into(
                &self.dp,
                self.ndrange,
                group_linear,
                self.pool,
                &mut self.scratch.scalar,
                self.tracer,
            ),
            Engine::Columnar => crate::columnar::exec_group_columnar(
                &self.dp,
                self.ndrange,
                group_linear,
                self.pool,
                &mut self.scratch.columnar,
                self.tracer,
            ),
        }
    }

    /// Run every group in linear order (functional-reference schedule).
    pub fn run_all(&mut self) {
        for g in 0..self.ndrange.total_groups() {
            self.run_group(g);
        }
    }
}

/// Convenience: run a full NDRange over a pool with a tracer on the globally
/// configured engine.
pub fn run_ndrange<T: ExecTracer>(
    program: &Program,
    bindings: &[ArgBinding],
    pool: &mut MemoryPool,
    ndrange: NDRange,
    tracer: &mut T,
) -> Result<(), ExecError> {
    let mut ex = GroupExecutor::new(program, bindings, pool, ndrange, tracer)?;
    ex.run_all();
    Ok(())
}

/// [`run_ndrange`] with an explicit engine.
pub fn run_ndrange_with_engine<T: ExecTracer>(
    program: &Program,
    bindings: &[ArgBinding],
    pool: &mut MemoryPool,
    ndrange: NDRange,
    tracer: &mut T,
    engine: Engine,
) -> Result<(), ExecError> {
    let mut ex = GroupExecutor::with_engine(program, bindings, pool, ndrange, tracer, engine)?;
    ex.run_all();
    Ok(())
}

// ---------------------------------------------------------------------------
// Sharded (parallel) executor
// ---------------------------------------------------------------------------

/// What the sharded engine actually did for one launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchStats {
    /// Total work-groups executed.
    pub groups: usize,
    /// Worker threads the group loop ran on (1 = serial).
    pub threads: usize,
    /// Why the launch was forced serial despite a multi-thread request.
    pub serial_reason: Option<&'static str>,
    /// Interpreter core the launch resolved to. Never exported into result
    /// artifacts — outputs are byte-identical across engines by contract.
    pub engine: Engine,
}

/// `&mut MemoryPool` smuggled across worker threads.
///
/// SAFETY: sound only under the OpenCL data-parallel contract the interpreter
/// already assumes — distinct work-groups never race on the same buffer
/// element (racy kernels are undefined behaviour in OpenCL itself), and
/// kernels performing *global* atomics (the one sanctioned cross-group
/// coupling) are excluded by the caller, which runs them serially.
struct PoolPtr(*mut MemoryPool);
unsafe impl Send for PoolPtr {}
unsafe impl Sync for PoolPtr {}

impl PoolPtr {
    /// SAFETY: callers must only touch buffer elements their work-group owns
    /// (see the type-level contract above).
    #[allow(clippy::mut_from_ref)]
    unsafe fn get(&self) -> &mut MemoryPool {
        &mut *self.0
    }
}

/// How many groups to execute per fork/join window. Bounds the memory held
/// by recorded-but-not-yet-replayed `MemAccess` logs.
fn window_size(threads: usize) -> usize {
    (threads * 8).max(32)
}

/// Run a full NDRange with work-groups executed in parallel on `threads`
/// workers, producing **bit-identical** tracer state to a serial run.
///
/// Each group's op-side events accumulate into a [`ShardTracer::Shard`] on
/// the worker that executes it; its memory accesses are recorded. The main
/// thread then absorbs shards and replays access logs in ascending group
/// order — the same canonical order the serial engine uses — so every
/// floating-point accumulation and every stateful cache-model transition
/// happens identically for any thread count, including 1.
///
/// Launches with global atomics run their groups serially (the replayed
/// trace stays deterministic, but the *functional* RMW order must be the
/// group order); [`LaunchStats::serial_reason`] reports this.
pub fn run_ndrange_sharded<T>(
    program: &Program,
    bindings: &[ArgBinding],
    pool: &mut MemoryPool,
    ndrange: NDRange,
    tracer: &mut T,
    threads: usize,
) -> Result<LaunchStats, ExecError>
where
    T: ShardTracer + Sync,
{
    if !ndrange.valid() {
        return Err(ExecError::InvalidNDRange(ndrange));
    }
    // Same ambient-optimizer hook as `GroupExecutor::with_engine`.
    let opt = crate::opt::ambient().map(|pl| pl.run(program));
    let program = opt.as_ref().unwrap_or(program);
    check_bindings(program, bindings, pool)?;
    let dp = DecodedProgram::decode(program, bindings, pool);
    let total = ndrange.total_groups();
    let eng = resolve_engine(engine(), &dp);

    let threads = threads.max(1);
    let (threads, serial_reason) = if dp.has_global_atomic && threads > 1 {
        (1, Some("global atomics force serial work-groups"))
    } else {
        (threads, None)
    };

    let window = window_size(threads);
    let pp = PoolPtr(pool as *mut MemoryPool);
    let dp_ref = &dp;
    let mut g0 = 0;
    while g0 < total {
        let count = window.min(total - g0);
        let tracer_ref: &T = tracer;
        let chunk: Vec<(T::Shard, Vec<MemAccess>, Vec<u64>)> =
            sim_pool::parallel_map_threads(threads, count, |k| {
                let group = g0 + k;
                // SAFETY: see `PoolPtr` — groups touch disjoint elements.
                let pool_mut = unsafe { pp.get() };
                let mut rec = RecordingTracer::new(tracer_ref.make_shard());
                match eng {
                    Engine::Scalar => SCRATCH.with(|s| {
                        let mut scratch = s.borrow_mut();
                        exec_group_into(dp_ref, ndrange, group, pool_mut, &mut scratch, &mut rec);
                    }),
                    Engine::Columnar => COL_SCRATCH.with(|s| {
                        let mut scratch = s.borrow_mut();
                        crate::columnar::exec_group_columnar(
                            dp_ref,
                            ndrange,
                            group,
                            pool_mut,
                            &mut scratch,
                            &mut rec,
                        );
                    }),
                }
                (rec.shard, rec.mem_log, rec.lane_log)
            });
        for (shard, mems, lanes) in chunk {
            tracer.absorb_group(shard, &mems, &lanes);
        }
        g0 += count;
    }
    Ok(LaunchStats {
        groups: total,
        threads,
        serial_reason,
        engine: eng,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::instr::BinOp;
    use crate::trace::{CountingTracer, NullTracer};
    use crate::types::Access;

    /// c[i] = a[i] + b[i]
    fn vecadd_kernel() -> Program {
        let mut kb = KernelBuilder::new("vecadd");
        let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let b = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let c = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let va = kb.load(Scalar::F32, a, gid.into());
        let vb = kb.load(Scalar::F32, b, gid.into());
        let s = kb.bin(BinOp::Add, va.into(), vb.into(), VType::scalar(Scalar::F32));
        kb.store(c, gid.into(), s.into());
        kb.finish()
    }

    #[test]
    fn vecadd_computes() {
        let p = vecadd_kernel();
        p.validate().expect("valid kernel");
        let mut pool = MemoryPool::new();
        let a = pool.add(BufferData::from(
            (0..64).map(|i| i as f32).collect::<Vec<_>>(),
        ));
        let b = pool.add(BufferData::from(vec![1.0f32; 64]));
        let c = pool.add(BufferData::zeroed(Scalar::F32, 64));
        let bindings = [
            ArgBinding::Global(a),
            ArgBinding::Global(b),
            ArgBinding::Global(c),
        ];
        let mut t = NullTracer;
        run_ndrange(&p, &bindings, &mut pool, NDRange::d1(64, 16), &mut t).unwrap();
        for i in 0..64 {
            assert_eq!(pool.get(c).as_f32()[i], i as f32 + 1.0);
        }
    }

    #[test]
    fn vecadd_event_counts() {
        let p = vecadd_kernel();
        let mut pool = MemoryPool::new();
        let a = pool.add(BufferData::zeroed(Scalar::F32, 64));
        let b = pool.add(BufferData::zeroed(Scalar::F32, 64));
        let c = pool.add(BufferData::zeroed(Scalar::F32, 64));
        let bindings = [
            ArgBinding::Global(a),
            ArgBinding::Global(b),
            ArgBinding::Global(c),
        ];
        let mut t = CountingTracer::default();
        run_ndrange(&p, &bindings, &mut pool, NDRange::d1(64, 16), &mut t).unwrap();
        assert_eq!(t.threads, 64);
        assert_eq!(t.groups, 4);
        assert_eq!(t.loads, 128);
        assert_eq!(t.stores, 64);
        assert_eq!(t.bytes_read, 128 * 4);
        assert_eq!(t.bytes_written, 64 * 4);
    }

    #[test]
    fn vectorized_vecadd_matches_scalar() {
        // float4 version: gid processes elements [4*gid, 4*gid+4)
        let mut kb = KernelBuilder::new("vecadd4");
        let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let b = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let c = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let base = kb.bin(
            BinOp::Mul,
            gid.into(),
            Operand::ImmI(4),
            VType::scalar(Scalar::U32),
        );
        let va = kb.vload(Scalar::F32, 4, a, base.into());
        let vb = kb.vload(Scalar::F32, 4, b, base.into());
        let s = kb.bin(BinOp::Add, va.into(), vb.into(), VType::new(Scalar::F32, 4));
        kb.vstore(c, base.into(), s.into());
        let p = kb.finish();
        p.validate().expect("valid");

        let mut pool = MemoryPool::new();
        let a = pool.add(BufferData::from(
            (0..64).map(|i| i as f32 * 0.5).collect::<Vec<_>>(),
        ));
        let b = pool.add(BufferData::from(
            (0..64).map(|i| i as f32).collect::<Vec<_>>(),
        ));
        let c = pool.add(BufferData::zeroed(Scalar::F32, 64));
        let bindings = [
            ArgBinding::Global(a),
            ArgBinding::Global(b),
            ArgBinding::Global(c),
        ];
        let mut t = CountingTracer::default();
        run_ndrange(&p, &bindings, &mut pool, NDRange::d1(16, 8), &mut t).unwrap();
        for i in 0..64 {
            assert_eq!(pool.get(c).as_f32()[i], i as f32 * 1.5);
        }
        // 16 threads × 2 vloads, all contiguous.
        assert_eq!(t.loads, 32);
        assert_eq!(t.contiguous, 32 + 16);
        assert_eq!(t.bytes_read, 128 * 4);
    }

    #[test]
    fn barrier_phases_share_local_memory() {
        // Each item writes its local id to local mem; after the barrier,
        // item 0 sums them and stores to out[group_id].
        let mut kb = KernelBuilder::new("localsum");
        let out = kb.arg_global(Scalar::U32, Access::WriteOnly, true);
        let scratch = kb.arg_local(Scalar::U32);
        let lid = kb.query_local_id(0);
        kb.store(scratch, lid.into(), lid.into());
        kb.barrier();
        let lid2 = kb.query_local_id(0);
        let is_zero = kb.bin(
            BinOp::Eq,
            lid2.into(),
            Operand::ImmI(0),
            VType::scalar(Scalar::U32),
        );
        kb.if_then(is_zero.into(), |kb| {
            let acc = kb.mov(Operand::ImmI(0), VType::scalar(Scalar::U32));
            let lsz = kb.query_local_size(0);
            kb.for_loop(Operand::ImmI(0), lsz.into(), Operand::ImmI(1), |kb, i| {
                let v = kb.load(Scalar::U32, scratch, i.into());
                kb.bin_into(acc, BinOp::Add, acc.into(), v.into());
            });
            let gid = kb.query_group_id(0);
            kb.store(out, gid.into(), acc.into());
        });
        let p = kb.finish();
        p.validate().expect("valid");

        let mut pool = MemoryPool::new();
        let out_b = pool.add(BufferData::zeroed(Scalar::U32, 4));
        let bindings = [ArgBinding::Global(out_b), ArgBinding::LocalSize(8)];
        let mut t = NullTracer;
        run_ndrange(&p, &bindings, &mut pool, NDRange::d1(32, 8), &mut t).unwrap();
        // sum of 0..8 = 28 in every group
        for g in 0..4 {
            assert_eq!(pool.get(out_b).as_u32()[g], 28);
        }
    }

    #[test]
    fn atomics_serialize_correctly() {
        let mut kb = KernelBuilder::new("count");
        let out = kb.arg_global(Scalar::U32, Access::ReadWrite, false);
        kb.atomic(AtomicOp::Inc, out, Operand::ImmI(0), Operand::ImmI(0));
        let p = kb.finish();
        p.validate().expect("valid");
        let mut pool = MemoryPool::new();
        let out_b = pool.add(BufferData::zeroed(Scalar::U32, 1));
        let mut t = CountingTracer::default();
        run_ndrange(
            &p,
            &[ArgBinding::Global(out_b)],
            &mut pool,
            NDRange::d1(100, 10),
            &mut t,
        )
        .unwrap();
        assert_eq!(pool.get(out_b).as_u32()[0], 100);
        assert_eq!(t.atomics, 100);
    }

    #[test]
    fn scalar_args_are_readable() {
        let mut kb = KernelBuilder::new("saxpy_alpha");
        let x = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
        let alpha = kb.arg_scalar(Scalar::F32);
        let gid = kb.query_global_id(0);
        let va = kb.load_scalar_arg(alpha);
        let vx = kb.load(Scalar::F32, x, gid.into());
        let r = kb.bin(BinOp::Mul, vx.into(), va.into(), VType::scalar(Scalar::F32));
        kb.store(x, gid.into(), r.into());
        let p = kb.finish();
        p.validate().expect("valid");
        let mut pool = MemoryPool::new();
        let x_b = pool.add(BufferData::from(vec![2.0f32; 8]));
        let bindings = [ArgBinding::Global(x_b), ArgBinding::Scalar(Value::f32(3.0))];
        run_ndrange(&p, &bindings, &mut pool, NDRange::d1(8, 8), &mut NullTracer).unwrap();
        assert_eq!(pool.get(x_b).as_f32(), &[6.0f32; 8]);
    }

    #[test]
    fn uninitialized_registers_read_zero_across_group_reuse() {
        // A register written only under a condition must read as the
        // declared type's zero everywhere else — including in later groups
        // whose reused register-file slot was written by an earlier group.
        let mut kb = KernelBuilder::new("stale");
        let out = kb.arg_global(Scalar::U32, Access::WriteOnly, true);
        let acc = kb.reg(VType::scalar(Scalar::U32));
        let gid = kb.query_global_id(0);
        let is0 = kb.bin(
            BinOp::Eq,
            gid.into(),
            Operand::ImmI(0),
            VType::scalar(Scalar::U32),
        );
        kb.if_then(is0.into(), |kb| {
            kb.mov_into(acc, Operand::ImmI(7));
        });
        kb.store(out, gid.into(), acc.into());
        let p = kb.finish();
        p.validate().expect("valid");

        for eng in [Engine::Scalar, Engine::Columnar] {
            let mut pool = MemoryPool::new();
            let out_b = pool.add(BufferData::zeroed(Scalar::U32, 8));
            let mut t = NullTracer;
            let bindings = [ArgBinding::Global(out_b)];
            // Local size 1: every group reuses the same item slot, so a
            // stale-value leak from group 0's write would surface directly.
            let mut ex = GroupExecutor::with_engine(
                &p,
                &bindings,
                &mut pool,
                NDRange::d1(8, 1),
                &mut t,
                eng,
            )
            .unwrap();
            assert_eq!(ex.engine(), eng, "kernel should not force a fallback");
            ex.run_all();
            let got = pool.get(out_b).as_u32();
            assert_eq!(got[0], 7, "{eng:?}");
            assert_eq!(&got[1..], &[0u32; 7], "{eng:?}");
        }
    }

    #[test]
    fn columnar_matches_scalar_counters_and_outputs() {
        let p = vecadd_kernel();
        let run = |eng: Engine| {
            let mut pool = MemoryPool::new();
            let a = pool.add(BufferData::from(
                (0..96).map(|i| i as f32 * 0.25).collect::<Vec<_>>(),
            ));
            let b = pool.add(BufferData::from(vec![1.5f32; 96]));
            let c = pool.add(BufferData::zeroed(Scalar::F32, 96));
            let bindings = [
                ArgBinding::Global(a),
                ArgBinding::Global(b),
                ArgBinding::Global(c),
            ];
            let mut t = CountingTracer::default();
            // Non-power-of-2 local size exercises ragged columns.
            run_ndrange_with_engine(&p, &bindings, &mut pool, NDRange::d1(96, 12), &mut t, eng)
                .unwrap();
            (t, pool.get(c).as_f32().to_vec())
        };
        let (ts, outs) = run(Engine::Scalar);
        let (tc, outc) = run(Engine::Columnar);
        assert_eq!(ts, tc, "telemetry counters must match across engines");
        assert_eq!(outs, outc, "outputs must match across engines");
    }

    #[test]
    fn invalid_ndrange_rejected() {
        let p = vecadd_kernel();
        let mut pool = MemoryPool::new();
        let a = pool.add(BufferData::zeroed(Scalar::F32, 64));
        let b = pool.add(BufferData::zeroed(Scalar::F32, 64));
        let c = pool.add(BufferData::zeroed(Scalar::F32, 64));
        let bindings = [
            ArgBinding::Global(a),
            ArgBinding::Global(b),
            ArgBinding::Global(c),
        ];
        let err = run_ndrange(
            &p,
            &bindings,
            &mut pool,
            NDRange::d1(63, 16),
            &mut NullTracer,
        );
        assert!(matches!(err, Err(ExecError::InvalidNDRange(_))));
    }

    #[test]
    fn binding_mismatch_rejected() {
        let p = vecadd_kernel();
        let mut pool = MemoryPool::new();
        let a = pool.add(BufferData::zeroed(Scalar::F32, 64));
        let err = run_ndrange(
            &p,
            &[ArgBinding::Global(a)],
            &mut pool,
            NDRange::d1(64, 16),
            &mut NullTracer,
        );
        assert!(matches!(err, Err(ExecError::BindingMismatch(_))));
    }

    #[test]
    fn ndrange_helpers() {
        let n = NDRange::d2(64, 32, 8, 4);
        assert_eq!(n.num_groups(), [8, 8, 1]);
        assert_eq!(n.total_groups(), 64);
        assert_eq!(n.group_size(), 32);
        assert_eq!(n.total_items(), 2048);
        assert_eq!(n.group_coords(9), [1, 1, 0]);
    }

    #[test]
    fn for_loop_with_negative_step() {
        let mut kb = KernelBuilder::new("countdown");
        let out = kb.arg_global(Scalar::I32, Access::ReadWrite, false);
        let acc = kb.mov(Operand::ImmI(0), VType::scalar(Scalar::I32));
        kb.for_loop_typed(
            Scalar::I32,
            Operand::ImmI(5),
            Operand::ImmI(0),
            Operand::ImmI(-1),
            |kb, i| {
                kb.bin_into(acc, BinOp::Add, acc.into(), i.into());
            },
        );
        kb.store(out, Operand::ImmI(0), acc.into());
        let p = kb.finish();
        p.validate().expect("valid");
        let mut pool = MemoryPool::new();
        let out_b = pool.add(BufferData::zeroed(Scalar::I32, 1));
        run_ndrange(
            &p,
            &[ArgBinding::Global(out_b)],
            &mut pool,
            NDRange::d1(1, 1),
            &mut NullTracer,
        )
        .unwrap();
        assert_eq!(pool.get(out_b).as_i32()[0], 5 + 4 + 3 + 2 + 1);
    }

    // --- sharded engine ----------------------------------------------------

    /// Minimal ShardTracer: shards are CountingTracers; absorb merges the
    /// shard and replays memory accesses into the main counter.
    #[derive(Default)]
    struct CountingShardTracer {
        total: CountingTracer,
    }

    impl ShardTracer for CountingShardTracer {
        type Shard = CountingTracer;
        fn make_shard(&self) -> CountingTracer {
            CountingTracer::default()
        }
        fn absorb_group(&mut self, shard: CountingTracer, mem: &[MemAccess], lanes: &[u64]) {
            let t = &mut self.total;
            t.ops += shard.ops;
            t.special_ops += shard.special_ops;
            t.mad_ops += shard.mad_ops;
            t.barriers += shard.barriers;
            t.loop_iters += shard.loop_iters;
            t.threads += shard.threads;
            t.groups += shard.groups;
            t.lanes_issued += shard.lanes_issued;
            let mut lc = 0usize;
            for a in mem {
                let w = if a.pattern == Pattern::Gather {
                    a.width as usize
                } else {
                    0
                };
                t.mem(a, &lanes[lc..lc + w]);
                lc += w;
            }
        }
    }

    fn barrier_kernel() -> Program {
        let mut kb = KernelBuilder::new("localsum");
        let out = kb.arg_global(Scalar::U32, Access::WriteOnly, true);
        let scratch = kb.arg_local(Scalar::U32);
        let lid = kb.query_local_id(0);
        kb.store(scratch, lid.into(), lid.into());
        kb.barrier();
        let lid2 = kb.query_local_id(0);
        let is_zero = kb.bin(
            BinOp::Eq,
            lid2.into(),
            Operand::ImmI(0),
            VType::scalar(Scalar::U32),
        );
        kb.if_then(is_zero.into(), |kb| {
            let acc = kb.mov(Operand::ImmI(0), VType::scalar(Scalar::U32));
            let lsz = kb.query_local_size(0);
            kb.for_loop(Operand::ImmI(0), lsz.into(), Operand::ImmI(1), |kb, i| {
                let v = kb.load(Scalar::U32, scratch, i.into());
                kb.bin_into(acc, BinOp::Add, acc.into(), v.into());
            });
            let gid = kb.query_group_id(0);
            kb.store(out, gid.into(), acc.into());
        });
        kb.finish()
    }

    fn run_sharded_counts(threads: usize) -> (CountingTracer, Vec<u32>, LaunchStats) {
        let p = barrier_kernel();
        let mut pool = MemoryPool::new();
        let out_b = pool.add(BufferData::zeroed(Scalar::U32, 16));
        let bindings = [ArgBinding::Global(out_b), ArgBinding::LocalSize(8)];
        let mut t = CountingShardTracer::default();
        let stats = run_ndrange_sharded(
            &p,
            &bindings,
            &mut pool,
            NDRange::d1(128, 8),
            &mut t,
            threads,
        )
        .unwrap();
        (t.total, pool.get(out_b).as_u32().to_vec(), stats)
    }

    #[test]
    fn sharded_matches_serial_tracer_and_results() {
        let p = barrier_kernel();
        let mut pool = MemoryPool::new();
        let out_b = pool.add(BufferData::zeroed(Scalar::U32, 16));
        let bindings = [ArgBinding::Global(out_b), ArgBinding::LocalSize(8)];
        let mut serial = CountingTracer::default();
        run_ndrange(&p, &bindings, &mut pool, NDRange::d1(128, 8), &mut serial).unwrap();
        let serial_out = pool.get(out_b).as_u32().to_vec();

        for threads in [1, 4, 8] {
            let (counts, out, stats) = run_sharded_counts(threads);
            assert_eq!(out, serial_out, "results diverged at {threads} threads");
            assert_eq!(stats.threads, threads);
            assert_eq!(stats.serial_reason, None);
            assert_eq!(counts.ops, serial.ops);
            assert_eq!(counts.loads, serial.loads);
            assert_eq!(counts.stores, serial.stores);
            assert_eq!(counts.local_accesses, serial.local_accesses);
            assert_eq!(counts.barriers, serial.barriers);
            assert_eq!(counts.loop_iters, serial.loop_iters);
            assert_eq!(counts.threads, serial.threads);
            assert_eq!(counts.groups, serial.groups);
        }
    }

    #[test]
    fn sharded_atomics_fall_back_to_serial() {
        let mut kb = KernelBuilder::new("count");
        let out = kb.arg_global(Scalar::U32, Access::ReadWrite, false);
        kb.atomic(AtomicOp::Inc, out, Operand::ImmI(0), Operand::ImmI(0));
        let p = kb.finish();
        let mut pool = MemoryPool::new();
        let out_b = pool.add(BufferData::zeroed(Scalar::U32, 1));
        let mut t = CountingShardTracer::default();
        let stats = run_ndrange_sharded(
            &p,
            &[ArgBinding::Global(out_b)],
            &mut pool,
            NDRange::d1(100, 10),
            &mut t,
            8,
        )
        .unwrap();
        assert_eq!(stats.threads, 1);
        assert!(stats.serial_reason.is_some());
        assert_eq!(pool.get(out_b).as_u32()[0], 100);
        assert_eq!(t.total.atomics, 100);
    }

    #[test]
    fn local_atomics_do_not_force_serial() {
        // Atomic on a *local* buffer is per-group state — safe in parallel.
        let mut kb = KernelBuilder::new("localcount");
        let out = kb.arg_global(Scalar::U32, Access::WriteOnly, true);
        let scratch = kb.arg_local(Scalar::U32);
        kb.atomic(AtomicOp::Inc, scratch, Operand::ImmI(0), Operand::ImmI(0));
        kb.barrier();
        let lid = kb.query_local_id(0);
        let is_zero = kb.bin(
            BinOp::Eq,
            lid.into(),
            Operand::ImmI(0),
            VType::scalar(Scalar::U32),
        );
        kb.if_then(is_zero.into(), |kb| {
            let v = kb.load(Scalar::U32, scratch, Operand::ImmI(0));
            let gid = kb.query_group_id(0);
            kb.store(out, gid.into(), v.into());
        });
        let p = kb.finish();
        let mut pool = MemoryPool::new();
        let out_b = pool.add(BufferData::zeroed(Scalar::U32, 4));
        let mut t = CountingShardTracer::default();
        let stats = run_ndrange_sharded(
            &p,
            &[ArgBinding::Global(out_b), ArgBinding::LocalSize(1)],
            &mut pool,
            NDRange::d1(32, 8),
            &mut t,
            4,
        )
        .unwrap();
        assert_eq!(stats.threads, 4);
        assert_eq!(stats.serial_reason, None);
        assert_eq!(pool.get(out_b).as_u32(), &[8, 8, 8, 8]);
    }

    #[test]
    fn executor_reuse_across_groups_is_clean() {
        // Registers and local buffers are reused across groups; a kernel
        // whose result would change if state leaked between groups.
        let p = barrier_kernel();
        let mut pool = MemoryPool::new();
        let out_b = pool.add(BufferData::zeroed(Scalar::U32, 8));
        let bindings = [ArgBinding::Global(out_b), ArgBinding::LocalSize(4)];
        run_ndrange(
            &p,
            &bindings,
            &mut pool,
            NDRange::d1(32, 4),
            &mut NullTracer,
        )
        .unwrap();
        // each group sums 0+1+2+3 = 6
        assert_eq!(pool.get(out_b).as_u32(), &[6u32; 8]);
    }
}
