//! The IR interpreter.
//!
//! Execution is per-work-group: all work-items of a group run each barrier
//! phase to completion before the next phase starts (the strongest legal
//! schedule, equivalent to any OpenCL-conformant one for barrier-correct
//! kernels). Every issued op and memory access is reported to an
//! [`ExecTracer`], which is how the device models meter cost without the
//! interpreter knowing anything about cycles.

use crate::instr::{ArgDecl, AtomicOp, Builtin, HorizOp, Op, Operand};
use crate::memory::{BufferData, MemoryPool};
use crate::ops::{eval_bin, eval_mad, eval_select, eval_un};
use crate::program::Program;
use crate::trace::{AccessKind, ExecTracer, MemAccess, OpClass, Pattern};
use crate::types::{MemSpace, Scalar, VType, MAX_LANES};
use crate::value::Value;

/// Simulated base address of the per-group "local memory" window. On Mali
/// local memory is carved out of global memory; we place it in a distinct
/// high region so cache models can still tell the spaces apart if they care.
pub const LOCAL_MEM_BASE: u64 = 1 << 40;
/// Address stride reserved per work-group for its local buffers.
pub const LOCAL_MEM_STRIDE: u64 = 1 << 20;

/// An OpenCL-style 3-dimensional index space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NDRange {
    pub global: [usize; 3],
    pub local: [usize; 3],
}

impl NDRange {
    /// 1-D range.
    pub fn d1(global: usize, local: usize) -> Self {
        NDRange {
            global: [global, 1, 1],
            local: [local, 1, 1],
        }
    }

    /// 2-D range.
    pub fn d2(gx: usize, gy: usize, lx: usize, ly: usize) -> Self {
        NDRange {
            global: [gx, gy, 1],
            local: [lx, ly, 1],
        }
    }

    /// 3-D range.
    pub fn d3(g: [usize; 3], l: [usize; 3]) -> Self {
        NDRange {
            global: g,
            local: l,
        }
    }

    pub fn num_groups(&self) -> [usize; 3] {
        [
            self.global[0] / self.local[0],
            self.global[1] / self.local[1],
            self.global[2] / self.local[2],
        ]
    }

    pub fn total_groups(&self) -> usize {
        let g = self.num_groups();
        g[0] * g[1] * g[2]
    }

    pub fn group_size(&self) -> usize {
        self.local[0] * self.local[1] * self.local[2]
    }

    pub fn total_items(&self) -> usize {
        self.global[0] * self.global[1] * self.global[2]
    }

    /// Check divisibility, as `clEnqueueNDRangeKernel` does.
    pub fn valid(&self) -> bool {
        (0..3).all(|d| {
            self.local[d] > 0 && self.global[d] > 0 && self.global[d].is_multiple_of(self.local[d])
        })
    }

    /// Linear group id → 3-D group coordinates.
    pub fn group_coords(&self, linear: usize) -> [usize; 3] {
        let n = self.num_groups();
        [
            linear % n[0],
            (linear / n[0]) % n[1],
            linear / (n[0] * n[1]),
        ]
    }
}

/// One bound kernel argument.
#[derive(Clone, Debug)]
pub enum ArgBinding {
    /// Global buffer: index into the launch's [`MemoryPool`].
    Global(usize),
    /// Local buffer: element count to allocate per work-group.
    LocalSize(usize),
    /// By-value scalar.
    Scalar(Value),
}

/// Execution error surfaced to the runtime layer.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    InvalidNDRange(NDRange),
    BindingMismatch(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::InvalidNDRange(n) => {
                write!(
                    f,
                    "global size {:?} not divisible by local size {:?}",
                    n.global, n.local
                )
            }
            ExecError::BindingMismatch(s) => write!(f, "argument binding mismatch: {s}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Check bindings against the program's argument declarations.
pub fn check_bindings(
    program: &Program,
    bindings: &[ArgBinding],
    pool: &MemoryPool,
) -> Result<(), ExecError> {
    if bindings.len() != program.args.len() {
        return Err(ExecError::BindingMismatch(format!(
            "kernel {} expects {} args, got {}",
            program.name,
            program.args.len(),
            bindings.len()
        )));
    }
    for (i, (decl, bind)) in program.args.iter().zip(bindings).enumerate() {
        match (decl, bind) {
            (ArgDecl::GlobalBuf { elem, .. }, ArgBinding::Global(idx)) => {
                if *idx >= pool.len() {
                    return Err(ExecError::BindingMismatch(format!(
                        "arg {i}: buffer index {idx} out of pool range"
                    )));
                }
                if pool.get(*idx).elem() != *elem {
                    return Err(ExecError::BindingMismatch(format!(
                        "arg {i}: buffer elem {:?} != declared {elem:?}",
                        pool.get(*idx).elem()
                    )));
                }
            }
            (ArgDecl::LocalBuf { .. }, ArgBinding::LocalSize(_)) => {}
            (ArgDecl::Scalar { ty }, ArgBinding::Scalar(v)) => {
                if v.vtype() != VType::scalar(*ty) {
                    return Err(ExecError::BindingMismatch(format!(
                        "arg {i}: scalar {:?} != declared {ty:?}",
                        v.vtype()
                    )));
                }
            }
            _ => {
                return Err(ExecError::BindingMismatch(format!(
                    "arg {i}: binding kind does not match declaration"
                )))
            }
        }
    }
    Ok(())
}

/// Per-work-item execution state.
struct ItemCtx {
    regs: Vec<Value>,
    global_id: [usize; 3],
    local_id: [usize; 3],
}

/// Executes one work-group at a time.
pub struct GroupExecutor<'a, T: ExecTracer> {
    program: &'a Program,
    bindings: &'a [ArgBinding],
    pool: &'a mut MemoryPool,
    ndrange: NDRange,
    pub tracer: &'a mut T,
}

impl<'a, T: ExecTracer> GroupExecutor<'a, T> {
    pub fn new(
        program: &'a Program,
        bindings: &'a [ArgBinding],
        pool: &'a mut MemoryPool,
        ndrange: NDRange,
        tracer: &'a mut T,
    ) -> Result<Self, ExecError> {
        if !ndrange.valid() {
            return Err(ExecError::InvalidNDRange(ndrange));
        }
        check_bindings(program, bindings, pool)?;
        Ok(GroupExecutor {
            program,
            bindings,
            pool,
            ndrange,
            tracer,
        })
    }

    /// Run one work-group identified by its linear id.
    pub fn run_group(&mut self, group_linear: usize) {
        let group_id = self.ndrange.group_coords(group_linear);
        self.tracer.group_start();

        // Allocate this group's local buffers.
        let mut locals: Vec<Option<BufferData>> = Vec::with_capacity(self.bindings.len());
        let mut local_addrs: Vec<u64> = Vec::with_capacity(self.bindings.len());
        let mut next_local = LOCAL_MEM_BASE + group_linear as u64 * LOCAL_MEM_STRIDE;
        for (decl, bind) in self.program.args.iter().zip(self.bindings) {
            match (decl, bind) {
                (ArgDecl::LocalBuf { elem }, ArgBinding::LocalSize(n)) => {
                    locals.push(Some(BufferData::zeroed(*elem, *n)));
                    local_addrs.push(next_local);
                    next_local += (*n as u64 * elem.bytes() as u64).max(64);
                }
                _ => {
                    locals.push(None);
                    local_addrs.push(0);
                }
            }
        }

        // Materialize per-item contexts.
        let lsz = self.ndrange.local;
        let n_items = self.ndrange.group_size();
        let mut items: Vec<ItemCtx> = (0..n_items)
            .map(|lin| {
                let local_id = [
                    lin % lsz[0],
                    (lin / lsz[0]) % lsz[1],
                    lin / (lsz[0] * lsz[1]),
                ];
                let global_id = [
                    group_id[0] * lsz[0] + local_id[0],
                    group_id[1] * lsz[1] + local_id[1],
                    group_id[2] * lsz[2] + local_id[2],
                ];
                ItemCtx {
                    regs: self.program.regs.iter().map(|t| Value::zero(*t)).collect(),
                    global_id,
                    local_id,
                }
            })
            .collect();

        let phases = self.program.phases();
        let mut group = GroupState {
            locals,
            local_addrs,
            group_id,
        };
        for (pi, phase) in phases.iter().enumerate() {
            for item in items.iter_mut() {
                if pi == 0 {
                    self.tracer.thread_start();
                }
                exec_block(
                    self.program,
                    self.bindings,
                    self.pool,
                    &mut group,
                    self.ndrange,
                    item,
                    phase,
                    self.tracer,
                );
            }
            if pi + 1 < phases.len() {
                self.tracer.barrier(n_items as u32);
            }
        }
    }

    /// Run every group in linear order (functional-reference schedule).
    pub fn run_all(&mut self) {
        for g in 0..self.ndrange.total_groups() {
            self.run_group(g);
        }
    }
}

/// Convenience: run a full NDRange over a pool with a tracer.
pub fn run_ndrange<T: ExecTracer>(
    program: &Program,
    bindings: &[ArgBinding],
    pool: &mut MemoryPool,
    ndrange: NDRange,
    tracer: &mut T,
) -> Result<(), ExecError> {
    let mut ex = GroupExecutor::new(program, bindings, pool, ndrange, tracer)?;
    ex.run_all();
    Ok(())
}

struct GroupState {
    locals: Vec<Option<BufferData>>,
    local_addrs: Vec<u64>,
    #[allow(dead_code)]
    group_id: [usize; 3],
}

#[allow(clippy::too_many_arguments)]
fn exec_block<T: ExecTracer>(
    prog: &Program,
    bindings: &[ArgBinding],
    pool: &mut MemoryPool,
    group: &mut GroupState,
    ndr: NDRange,
    item: &mut ItemCtx,
    ops: &[Op],
    tracer: &mut T,
) {
    for op in ops {
        exec_op(prog, bindings, pool, group, ndr, item, op, tracer);
    }
}

fn eval_operand(item: &ItemCtx, o: &Operand, want: VType) -> Value {
    match o {
        Operand::Reg(r) => {
            let v = item.regs[r.0 as usize];
            v.broadcast(want.width)
        }
        Operand::ImmF(x) => match want.elem {
            Scalar::F32 => Value::splat_f32(*x as f32, want.width),
            Scalar::F64 => Value::splat_f64(*x, want.width),
            other => panic!("float immediate in {other} context"),
        },
        Operand::ImmI(x) => match want.elem {
            Scalar::F32 => Value::splat_f32(*x as f32, want.width),
            Scalar::F64 => Value::splat_f64(*x as f64, want.width),
            Scalar::I32 => Value::splat_i32(*x as i32, want.width),
            Scalar::I64 => Value::splat_i64(*x, want.width),
            Scalar::U32 => Value::splat_u32(*x as u32, want.width),
            Scalar::U64 => Value::splat_u64(*x as u64, want.width),
            Scalar::Bool => panic!("integer immediate in bool context"),
        },
    }
}

/// Element-index width of an index operand used for gathers.
fn operand_width(prog: &Program, o: &Operand) -> u8 {
    match o {
        Operand::Reg(r) => prog.reg_ty(*r).width,
        _ => 1,
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_op<T: ExecTracer>(
    prog: &Program,
    bindings: &[ArgBinding],
    pool: &mut MemoryPool,
    group: &mut GroupState,
    ndr: NDRange,
    item: &mut ItemCtx,
    op: &Op,
    tracer: &mut T,
) {
    match op {
        Op::Bin {
            dst,
            op: b,
            a,
            b: rhs,
        } => {
            let dt = prog.reg_ty(*dst);
            let src_ty = if b.is_compare() {
                // operand type comes from whichever side is a register
                match (a, rhs) {
                    (Operand::Reg(r), _) | (_, Operand::Reg(r)) => prog.reg_ty(*r),
                    _ => panic!("compare with two immediates"),
                }
            } else {
                dt
            };
            let va = eval_operand(item, a, src_ty);
            let vb = eval_operand(item, rhs, src_ty);
            let class = match b {
                crate::instr::BinOp::Mul => OpClass::Mul,
                crate::instr::BinOp::Div | crate::instr::BinOp::Rem => OpClass::Div,
                _ => OpClass::Simple,
            };
            tracer.op(class, src_ty);
            item.regs[dst.0 as usize] = eval_bin(*b, &va, &vb);
        }
        Op::Un { dst, op: u, a } => {
            let dt = prog.reg_ty(*dst);
            let va = eval_operand(item, a, dt);
            let class = match u {
                crate::instr::UnOp::Exp | crate::instr::UnOp::Log => OpClass::Transcendental,
                crate::instr::UnOp::Rsqrt => OpClass::Rsqrt,
                _ if u.is_special() => OpClass::Special,
                _ => OpClass::Simple,
            };
            tracer.op(class, dt);
            item.regs[dst.0 as usize] = eval_un(*u, &va);
        }
        Op::Mad { dst, a, b, c } => {
            let dt = prog.reg_ty(*dst);
            let va = eval_operand(item, a, dt);
            let vb = eval_operand(item, b, dt);
            let vc = eval_operand(item, c, dt);
            tracer.op(OpClass::Mad, dt);
            item.regs[dst.0 as usize] = eval_mad(&va, &vb, &vc);
        }
        Op::Select { dst, cond, a, b } => {
            let dt = prog.reg_ty(*dst);
            let vc = eval_operand(
                item,
                cond,
                VType {
                    elem: Scalar::Bool,
                    width: dt.width,
                },
            );
            let va = eval_operand(item, a, dt);
            let vb = eval_operand(item, b, dt);
            tracer.op(OpClass::Move, dt);
            item.regs[dst.0 as usize] = eval_select(&vc, &va, &vb);
        }
        Op::Mov { dst, a } => {
            let dt = prog.reg_ty(*dst);
            tracer.op(OpClass::Move, dt);
            item.regs[dst.0 as usize] = eval_operand(item, a, dt);
        }
        Op::Cast { dst, a } => {
            let dt = prog.reg_ty(*dst);
            let src = match a {
                Operand::Reg(r) => item.regs[r.0 as usize],
                _ => eval_operand(item, a, dt),
            };
            tracer.op(OpClass::Move, dt);
            item.regs[dst.0 as usize] = src.cast(dt.elem);
        }
        Op::Horiz { dst, op: h, a } => {
            let src = match a {
                Operand::Reg(r) => item.regs[r.0 as usize],
                _ => panic!("horizontal reduction of immediate"),
            };
            tracer.op(OpClass::Horizontal, src.vtype());
            item.regs[dst.0 as usize] = match h {
                HorizOp::Add => src.reduce_add(),
                HorizOp::Min => src.reduce_min(),
                HorizOp::Max => src.reduce_max(),
            };
        }
        Op::Extract { dst, a, lane } => {
            let src = match a {
                Operand::Reg(r) => item.regs[r.0 as usize],
                _ => panic!("extract from immediate"),
            };
            tracer.op(OpClass::Move, VType::scalar(src.elem()));
            item.regs[dst.0 as usize] = src.extract(*lane as usize);
        }
        Op::Insert { dst, v, lane } => {
            let dt = prog.reg_ty(*dst);
            let val = eval_operand(item, v, VType::scalar(dt.elem));
            tracer.op(OpClass::Move, VType::scalar(dt.elem));
            let cur = item.regs[dst.0 as usize];
            item.regs[dst.0 as usize] = cur.insert(*lane as usize, &val);
        }
        Op::Query { dst, q } => {
            let v = match q {
                Builtin::GlobalId(d) => item.global_id[*d as usize],
                Builtin::LocalId(d) => item.local_id[*d as usize],
                Builtin::GroupId(d) => item.global_id[*d as usize] / ndr.local[*d as usize],
                Builtin::GlobalSize(d) => ndr.global[*d as usize],
                Builtin::LocalSize(d) => ndr.local[*d as usize],
                Builtin::NumGroups(d) => ndr.num_groups()[*d as usize],
            };
            tracer.op(OpClass::Move, VType::scalar(Scalar::U32));
            item.regs[dst.0 as usize] = Value::u32(v as u32);
        }
        Op::Load { dst, buf, idx } => {
            let dt = prog.reg_ty(*dst);
            match &bindings[buf.0 as usize] {
                ArgBinding::Scalar(v) => {
                    // By-value scalar arg: free register read, no memory event.
                    item.regs[dst.0 as usize] = *v;
                }
                ArgBinding::Global(pool_idx) => {
                    let iw = operand_width(prog, idx);
                    let vidx = eval_operand(
                        item,
                        idx,
                        VType {
                            elem: Scalar::U32,
                            width: iw.max(1),
                        },
                    );
                    let data = pool.get(*pool_idx);
                    let val = if dt.width == 1 {
                        data.get(vidx.lane_index(0))
                    } else {
                        data.gather(&vidx)
                    };
                    emit_global_access(pool, *pool_idx, &vidx, dt, AccessKind::Read, buf.0, tracer);
                    item.regs[dst.0 as usize] = val;
                }
                ArgBinding::LocalSize(_) => {
                    let iw = operand_width(prog, idx);
                    let vidx = eval_operand(
                        item,
                        idx,
                        VType {
                            elem: Scalar::U32,
                            width: iw.max(1),
                        },
                    );
                    let base = group.local_addrs[buf.0 as usize];
                    let data = group.locals[buf.0 as usize].as_ref().expect("local buffer");
                    let val = if dt.width == 1 {
                        data.get(vidx.lane_index(0))
                    } else {
                        data.gather(&vidx)
                    };
                    emit_local_access(base, &vidx, dt, AccessKind::Read, buf.0, tracer);
                    item.regs[dst.0 as usize] = val;
                }
            }
        }
        Op::VLoad { dst, buf, base } => {
            let dt = prog.reg_ty(*dst);
            let b = eval_operand(item, base, VType::scalar(Scalar::U32)).lane_index(0);
            match &bindings[buf.0 as usize] {
                ArgBinding::Global(pool_idx) => {
                    let val = pool.get(*pool_idx).vload(b, dt.width);
                    tracer.mem(&MemAccess {
                        stream: buf.0,
                        space: MemSpace::Global,
                        kind: AccessKind::Read,
                        addr: pool.elem_addr(*pool_idx, b),
                        bytes: dt.bytes(),
                        elem: dt.elem,
                        width: dt.width,
                        pattern: if dt.width == 1 {
                            Pattern::Scalar
                        } else {
                            Pattern::Contiguous
                        },
                        lane_addrs: None,
                    });
                    item.regs[dst.0 as usize] = val;
                }
                ArgBinding::LocalSize(_) => {
                    let addr =
                        group.local_addrs[buf.0 as usize] + b as u64 * dt.elem.bytes() as u64;
                    let data = group.locals[buf.0 as usize].as_ref().expect("local buffer");
                    let val = data.vload(b, dt.width);
                    tracer.mem(&MemAccess {
                        stream: buf.0,
                        space: MemSpace::Local,
                        kind: AccessKind::Read,
                        addr,
                        bytes: dt.bytes(),
                        elem: dt.elem,
                        width: dt.width,
                        pattern: if dt.width == 1 {
                            Pattern::Scalar
                        } else {
                            Pattern::Contiguous
                        },
                        lane_addrs: None,
                    });
                    item.regs[dst.0 as usize] = val;
                }
                ArgBinding::Scalar(_) => panic!("vload from scalar argument"),
            }
        }
        Op::Store { buf, idx, val } => {
            let iw = operand_width(prog, idx);
            let elem = match &bindings[buf.0 as usize] {
                ArgBinding::Global(pool_idx) => pool.get(*pool_idx).elem(),
                ArgBinding::LocalSize(_) => group.locals[buf.0 as usize]
                    .as_ref()
                    .expect("local buffer")
                    .elem(),
                ArgBinding::Scalar(_) => panic!("store to scalar argument"),
            };
            let vt = VType { elem, width: iw };
            let vidx = eval_operand(
                item,
                idx,
                VType {
                    elem: Scalar::U32,
                    width: iw,
                },
            );
            let vval = eval_operand(item, val, vt);
            match &bindings[buf.0 as usize] {
                ArgBinding::Global(pool_idx) => {
                    emit_global_access(
                        pool,
                        *pool_idx,
                        &vidx,
                        vt,
                        AccessKind::Write,
                        buf.0,
                        tracer,
                    );
                    let data = pool.get_mut(*pool_idx);
                    for lane in 0..iw as usize {
                        data.set(vidx.lane_index(lane), &vval, lane);
                    }
                }
                ArgBinding::LocalSize(_) => {
                    let base = group.local_addrs[buf.0 as usize];
                    emit_local_access(base, &vidx, vt, AccessKind::Write, buf.0, tracer);
                    let data = group.locals[buf.0 as usize].as_mut().expect("local buffer");
                    for lane in 0..iw as usize {
                        data.set(vidx.lane_index(lane), &vval, lane);
                    }
                }
                ArgBinding::Scalar(_) => unreachable!(),
            }
        }
        Op::VStore { buf, base, val } => {
            let b = eval_operand(item, base, VType::scalar(Scalar::U32)).lane_index(0);
            let vval = match val {
                Operand::Reg(r) => item.regs[r.0 as usize],
                _ => panic!("vstore of immediate"),
            };
            let vt = vval.vtype();
            match &bindings[buf.0 as usize] {
                ArgBinding::Global(pool_idx) => {
                    tracer.mem(&MemAccess {
                        stream: buf.0,
                        space: MemSpace::Global,
                        kind: AccessKind::Write,
                        addr: pool.elem_addr(*pool_idx, b),
                        bytes: vt.bytes(),
                        elem: vt.elem,
                        width: vt.width,
                        pattern: if vt.width == 1 {
                            Pattern::Scalar
                        } else {
                            Pattern::Contiguous
                        },
                        lane_addrs: None,
                    });
                    pool.get_mut(*pool_idx).vstore(b, &vval);
                }
                ArgBinding::LocalSize(_) => {
                    let addr =
                        group.local_addrs[buf.0 as usize] + b as u64 * vt.elem.bytes() as u64;
                    tracer.mem(&MemAccess {
                        stream: buf.0,
                        space: MemSpace::Local,
                        kind: AccessKind::Write,
                        addr,
                        bytes: vt.bytes(),
                        elem: vt.elem,
                        width: vt.width,
                        pattern: if vt.width == 1 {
                            Pattern::Scalar
                        } else {
                            Pattern::Contiguous
                        },
                        lane_addrs: None,
                    });
                    group.locals[buf.0 as usize]
                        .as_mut()
                        .expect("local buffer")
                        .vstore(b, &vval);
                }
                ArgBinding::Scalar(_) => panic!("vstore to scalar argument"),
            }
        }
        Op::Atomic {
            op: aop,
            buf,
            idx,
            val,
            old,
        } => {
            let i = eval_operand(item, idx, VType::scalar(Scalar::U32)).lane_index(0);
            let (elem, space, addr) = match &bindings[buf.0 as usize] {
                ArgBinding::Global(pool_idx) => (
                    pool.get(*pool_idx).elem(),
                    MemSpace::Global,
                    pool.elem_addr(*pool_idx, i),
                ),
                ArgBinding::LocalSize(_) => {
                    let e = group.locals[buf.0 as usize]
                        .as_ref()
                        .expect("local buffer")
                        .elem();
                    let base = group.local_addrs[buf.0 as usize];
                    (e, MemSpace::Local, base + i as u64 * e.bytes() as u64)
                }
                ArgBinding::Scalar(_) => panic!("atomic on scalar argument"),
            };
            let vval = eval_operand(item, val, VType::scalar(elem));
            tracer.mem(&MemAccess {
                stream: buf.0,
                space,
                kind: AccessKind::Atomic,
                addr,
                bytes: elem.bytes(),
                elem,
                width: 1,
                pattern: Pattern::Scalar,
                lane_addrs: None,
            });
            let data: &mut BufferData = match &bindings[buf.0 as usize] {
                ArgBinding::Global(pool_idx) => pool.get_mut(*pool_idx),
                ArgBinding::LocalSize(_) => {
                    group.locals[buf.0 as usize].as_mut().expect("local buffer")
                }
                ArgBinding::Scalar(_) => unreachable!(),
            };
            let cur = data.get(i);
            if let Some(o) = old {
                item.regs[o.0 as usize] = cur;
            }
            let next = match aop {
                AtomicOp::Add => eval_bin(crate::instr::BinOp::Add, &cur, &vval),
                AtomicOp::Inc => {
                    let one = eval_operand(item, &Operand::ImmI(1), VType::scalar(elem));
                    eval_bin(crate::instr::BinOp::Add, &cur, &one)
                }
                AtomicOp::Min => eval_bin(crate::instr::BinOp::Min, &cur, &vval),
                AtomicOp::Max => eval_bin(crate::instr::BinOp::Max, &cur, &vval),
            };
            data.set(i, &next, 0);
        }
        Op::For {
            var,
            start,
            end,
            step,
            body,
        } => {
            let vt = prog.reg_ty(*var);
            let vstart = eval_operand(item, start, vt);
            let vend = eval_operand(item, end, vt);
            let vstep = eval_operand(item, step, vt);
            let (mut i, end_i, step_i) = (vstart.lane_i64(0), vend.lane_i64(0), vstep.lane_i64(0));
            assert!(step_i != 0, "zero loop step");
            while (step_i > 0 && i < end_i) || (step_i < 0 && i > end_i) {
                item.regs[var.0 as usize] = match vt.elem {
                    Scalar::I32 => Value::i32(i as i32),
                    Scalar::I64 => Value::i64(i),
                    Scalar::U32 => Value::u32(i as u32),
                    Scalar::U64 => Value::u64(i as u64),
                    other => panic!("loop counter of type {other}"),
                };
                tracer.loop_iter();
                exec_block(prog, bindings, pool, group, ndr, item, body, tracer);
                i += step_i;
            }
        }
        Op::If { cond, then, els } => {
            let c = eval_operand(item, cond, VType::scalar(Scalar::Bool));
            tracer.op(OpClass::Simple, VType::scalar(Scalar::Bool));
            if c.lane_bool(0) {
                exec_block(prog, bindings, pool, group, ndr, item, then, tracer);
            } else {
                exec_block(prog, bindings, pool, group, ndr, item, els, tracer);
            }
        }
        Op::Barrier => {
            unreachable!("barriers are phase boundaries, handled by run_group")
        }
    }
}

fn emit_global_access<T: ExecTracer>(
    pool: &MemoryPool,
    pool_idx: usize,
    vidx: &Value,
    vt: VType,
    kind: AccessKind,
    stream: u32,
    tracer: &mut T,
) {
    let w = vidx.width();
    if w == 1 {
        tracer.mem(&MemAccess {
            stream,
            space: MemSpace::Global,
            kind,
            addr: pool.elem_addr(pool_idx, vidx.lane_index(0)),
            bytes: vt.elem.bytes(),
            elem: vt.elem,
            width: 1,
            pattern: Pattern::Scalar,
            lane_addrs: None,
        });
    } else {
        let mut lane_addrs = [0u64; MAX_LANES];
        for (lane, slot) in lane_addrs.iter_mut().enumerate().take(w as usize) {
            *slot = pool.elem_addr(pool_idx, vidx.lane_index(lane));
        }
        tracer.mem(&MemAccess {
            stream,
            space: MemSpace::Global,
            kind,
            addr: lane_addrs[0],
            bytes: vt.elem.bytes() * w as u32,
            elem: vt.elem,
            width: w,
            pattern: Pattern::Gather,
            lane_addrs: Some(lane_addrs),
        });
    }
}

fn emit_local_access<T: ExecTracer>(
    base: u64,
    vidx: &Value,
    vt: VType,
    kind: AccessKind,
    stream: u32,
    tracer: &mut T,
) {
    let w = vidx.width();
    if w == 1 {
        tracer.mem(&MemAccess {
            stream,
            space: MemSpace::Local,
            kind,
            addr: base + vidx.lane_index(0) as u64 * vt.elem.bytes() as u64,
            bytes: vt.elem.bytes(),
            elem: vt.elem,
            width: 1,
            pattern: Pattern::Scalar,
            lane_addrs: None,
        });
    } else {
        let mut lane_addrs = [0u64; MAX_LANES];
        for (lane, slot) in lane_addrs.iter_mut().enumerate().take(w as usize) {
            *slot = base + vidx.lane_index(lane) as u64 * vt.elem.bytes() as u64;
        }
        tracer.mem(&MemAccess {
            stream,
            space: MemSpace::Local,
            kind,
            addr: lane_addrs[0],
            bytes: vt.elem.bytes() * w as u32,
            elem: vt.elem,
            width: w,
            pattern: Pattern::Gather,
            lane_addrs: Some(lane_addrs),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::instr::BinOp;
    use crate::trace::{CountingTracer, NullTracer};
    use crate::types::Access;

    /// c[i] = a[i] + b[i]
    fn vecadd_kernel() -> Program {
        let mut kb = KernelBuilder::new("vecadd");
        let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let b = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let c = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let va = kb.load(Scalar::F32, a, gid.into());
        let vb = kb.load(Scalar::F32, b, gid.into());
        let s = kb.bin(BinOp::Add, va.into(), vb.into(), VType::scalar(Scalar::F32));
        kb.store(c, gid.into(), s.into());
        kb.finish()
    }

    #[test]
    fn vecadd_computes() {
        let p = vecadd_kernel();
        p.validate().expect("valid kernel");
        let mut pool = MemoryPool::new();
        let a = pool.add(BufferData::from(
            (0..64).map(|i| i as f32).collect::<Vec<_>>(),
        ));
        let b = pool.add(BufferData::from(vec![1.0f32; 64]));
        let c = pool.add(BufferData::zeroed(Scalar::F32, 64));
        let bindings = [
            ArgBinding::Global(a),
            ArgBinding::Global(b),
            ArgBinding::Global(c),
        ];
        let mut t = NullTracer;
        run_ndrange(&p, &bindings, &mut pool, NDRange::d1(64, 16), &mut t).unwrap();
        for i in 0..64 {
            assert_eq!(pool.get(c).as_f32()[i], i as f32 + 1.0);
        }
    }

    #[test]
    fn vecadd_event_counts() {
        let p = vecadd_kernel();
        let mut pool = MemoryPool::new();
        let a = pool.add(BufferData::zeroed(Scalar::F32, 64));
        let b = pool.add(BufferData::zeroed(Scalar::F32, 64));
        let c = pool.add(BufferData::zeroed(Scalar::F32, 64));
        let bindings = [
            ArgBinding::Global(a),
            ArgBinding::Global(b),
            ArgBinding::Global(c),
        ];
        let mut t = CountingTracer::default();
        run_ndrange(&p, &bindings, &mut pool, NDRange::d1(64, 16), &mut t).unwrap();
        assert_eq!(t.threads, 64);
        assert_eq!(t.groups, 4);
        assert_eq!(t.loads, 128);
        assert_eq!(t.stores, 64);
        assert_eq!(t.bytes_read, 128 * 4);
        assert_eq!(t.bytes_written, 64 * 4);
    }

    #[test]
    fn vectorized_vecadd_matches_scalar() {
        // float4 version: gid processes elements [4*gid, 4*gid+4)
        let mut kb = KernelBuilder::new("vecadd4");
        let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let b = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let c = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let base = kb.bin(
            BinOp::Mul,
            gid.into(),
            Operand::ImmI(4),
            VType::scalar(Scalar::U32),
        );
        let va = kb.vload(Scalar::F32, 4, a, base.into());
        let vb = kb.vload(Scalar::F32, 4, b, base.into());
        let s = kb.bin(BinOp::Add, va.into(), vb.into(), VType::new(Scalar::F32, 4));
        kb.vstore(c, base.into(), s.into());
        let p = kb.finish();
        p.validate().expect("valid");

        let mut pool = MemoryPool::new();
        let a = pool.add(BufferData::from(
            (0..64).map(|i| i as f32 * 0.5).collect::<Vec<_>>(),
        ));
        let b = pool.add(BufferData::from(
            (0..64).map(|i| i as f32).collect::<Vec<_>>(),
        ));
        let c = pool.add(BufferData::zeroed(Scalar::F32, 64));
        let bindings = [
            ArgBinding::Global(a),
            ArgBinding::Global(b),
            ArgBinding::Global(c),
        ];
        let mut t = CountingTracer::default();
        run_ndrange(&p, &bindings, &mut pool, NDRange::d1(16, 8), &mut t).unwrap();
        for i in 0..64 {
            assert_eq!(pool.get(c).as_f32()[i], i as f32 * 1.5);
        }
        // 16 threads × 2 vloads, all contiguous.
        assert_eq!(t.loads, 32);
        assert_eq!(t.contiguous, 32 + 16);
        assert_eq!(t.bytes_read, 128 * 4);
    }

    #[test]
    fn barrier_phases_share_local_memory() {
        // Each item writes its local id to local mem; after the barrier,
        // item 0 sums them and stores to out[group_id].
        let mut kb = KernelBuilder::new("localsum");
        let out = kb.arg_global(Scalar::U32, Access::WriteOnly, true);
        let scratch = kb.arg_local(Scalar::U32);
        let lid = kb.query_local_id(0);
        kb.store(scratch, lid.into(), lid.into());
        kb.barrier();
        let lid2 = kb.query_local_id(0);
        let is_zero = kb.bin(
            BinOp::Eq,
            lid2.into(),
            Operand::ImmI(0),
            VType::scalar(Scalar::U32),
        );
        kb.if_then(is_zero.into(), |kb| {
            let acc = kb.mov(Operand::ImmI(0), VType::scalar(Scalar::U32));
            let lsz = kb.query_local_size(0);
            kb.for_loop(Operand::ImmI(0), lsz.into(), Operand::ImmI(1), |kb, i| {
                let v = kb.load(Scalar::U32, scratch, i.into());
                kb.bin_into(acc, BinOp::Add, acc.into(), v.into());
            });
            let gid = kb.query_group_id(0);
            kb.store(out, gid.into(), acc.into());
        });
        let p = kb.finish();
        p.validate().expect("valid");

        let mut pool = MemoryPool::new();
        let out_b = pool.add(BufferData::zeroed(Scalar::U32, 4));
        let bindings = [ArgBinding::Global(out_b), ArgBinding::LocalSize(8)];
        let mut t = NullTracer;
        run_ndrange(&p, &bindings, &mut pool, NDRange::d1(32, 8), &mut t).unwrap();
        // sum of 0..8 = 28 in every group
        for g in 0..4 {
            assert_eq!(pool.get(out_b).as_u32()[g], 28);
        }
    }

    #[test]
    fn atomics_serialize_correctly() {
        let mut kb = KernelBuilder::new("count");
        let out = kb.arg_global(Scalar::U32, Access::ReadWrite, false);
        kb.atomic(AtomicOp::Inc, out, Operand::ImmI(0), Operand::ImmI(0));
        let p = kb.finish();
        p.validate().expect("valid");
        let mut pool = MemoryPool::new();
        let out_b = pool.add(BufferData::zeroed(Scalar::U32, 1));
        let mut t = CountingTracer::default();
        run_ndrange(
            &p,
            &[ArgBinding::Global(out_b)],
            &mut pool,
            NDRange::d1(100, 10),
            &mut t,
        )
        .unwrap();
        assert_eq!(pool.get(out_b).as_u32()[0], 100);
        assert_eq!(t.atomics, 100);
    }

    #[test]
    fn scalar_args_are_readable() {
        let mut kb = KernelBuilder::new("saxpy_alpha");
        let x = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
        let alpha = kb.arg_scalar(Scalar::F32);
        let gid = kb.query_global_id(0);
        let va = kb.load_scalar_arg(alpha);
        let vx = kb.load(Scalar::F32, x, gid.into());
        let r = kb.bin(BinOp::Mul, vx.into(), va.into(), VType::scalar(Scalar::F32));
        kb.store(x, gid.into(), r.into());
        let p = kb.finish();
        p.validate().expect("valid");
        let mut pool = MemoryPool::new();
        let x_b = pool.add(BufferData::from(vec![2.0f32; 8]));
        let bindings = [ArgBinding::Global(x_b), ArgBinding::Scalar(Value::f32(3.0))];
        run_ndrange(&p, &bindings, &mut pool, NDRange::d1(8, 8), &mut NullTracer).unwrap();
        assert_eq!(pool.get(x_b).as_f32(), &[6.0f32; 8]);
    }

    #[test]
    fn invalid_ndrange_rejected() {
        let p = vecadd_kernel();
        let mut pool = MemoryPool::new();
        let a = pool.add(BufferData::zeroed(Scalar::F32, 64));
        let b = pool.add(BufferData::zeroed(Scalar::F32, 64));
        let c = pool.add(BufferData::zeroed(Scalar::F32, 64));
        let bindings = [
            ArgBinding::Global(a),
            ArgBinding::Global(b),
            ArgBinding::Global(c),
        ];
        let err = run_ndrange(
            &p,
            &bindings,
            &mut pool,
            NDRange::d1(63, 16),
            &mut NullTracer,
        );
        assert!(matches!(err, Err(ExecError::InvalidNDRange(_))));
    }

    #[test]
    fn binding_mismatch_rejected() {
        let p = vecadd_kernel();
        let mut pool = MemoryPool::new();
        let a = pool.add(BufferData::zeroed(Scalar::F32, 64));
        let err = run_ndrange(
            &p,
            &[ArgBinding::Global(a)],
            &mut pool,
            NDRange::d1(64, 16),
            &mut NullTracer,
        );
        assert!(matches!(err, Err(ExecError::BindingMismatch(_))));
    }

    #[test]
    fn ndrange_helpers() {
        let n = NDRange::d2(64, 32, 8, 4);
        assert_eq!(n.num_groups(), [8, 8, 1]);
        assert_eq!(n.total_groups(), 64);
        assert_eq!(n.group_size(), 32);
        assert_eq!(n.total_items(), 2048);
        assert_eq!(n.group_coords(9), [1, 1, 0]);
    }

    #[test]
    fn for_loop_with_negative_step() {
        let mut kb = KernelBuilder::new("countdown");
        let out = kb.arg_global(Scalar::I32, Access::ReadWrite, false);
        let acc = kb.mov(Operand::ImmI(0), VType::scalar(Scalar::I32));
        kb.for_loop_typed(
            Scalar::I32,
            Operand::ImmI(5),
            Operand::ImmI(0),
            Operand::ImmI(-1),
            |kb, i| {
                kb.bin_into(acc, BinOp::Add, acc.into(), i.into());
            },
        );
        kb.store(out, Operand::ImmI(0), acc.into());
        let p = kb.finish();
        p.validate().expect("valid");
        let mut pool = MemoryPool::new();
        let out_b = pool.add(BufferData::zeroed(Scalar::I32, 1));
        run_ndrange(
            &p,
            &[ArgBinding::Global(out_b)],
            &mut pool,
            NDRange::d1(1, 1),
            &mut NullTracer,
        )
        .unwrap();
        assert_eq!(pool.get(out_b).as_i32()[0], 5 + 4 + 3 + 2 + 1);
    }
}
