//! Static program analysis: instruction mix, memory-access summary and an
//! arithmetic-intensity estimate, derived from the IR without executing it.
//!
//! Complements the dynamic event stream: the harness's roofline view
//! measures what *ran*; this module predicts the same quantities from the
//! program text (per work-item, with loop trip counts folded in when they
//! are compile-time immediates), which is what a §III-style optimization
//! guide reasons about before ever launching a kernel.

use crate::instr::{Op, Operand, UnOp};
use crate::program::Program;

/// Per-work-item static instruction counts. Loop bodies are weighted by
/// their immediate trip counts; dynamic-bound loops are weighted by
/// [`StaticMix::DYNAMIC_TRIP_ASSUMPTION`] and flagged.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StaticMix {
    /// Floating-point operations (a mad counts 2).
    pub flops: f64,
    /// Integer/move/compare operations (address arithmetic etc.).
    pub int_ops: f64,
    /// Special-function ops (sqrt/rsqrt/exp/log).
    pub special_ops: f64,
    /// Memory load instructions (any width).
    pub loads: f64,
    /// Memory store instructions.
    pub stores: f64,
    /// Atomic RMWs.
    pub atomics: f64,
    /// Bytes read per item, counting each load's full width.
    pub bytes_read: f64,
    /// Bytes written per item.
    pub bytes_written: f64,
    /// Top-level barriers.
    pub barriers: usize,
    /// True when any loop had non-immediate bounds (counts are then lower
    /// bounds scaled by the assumption below).
    pub has_dynamic_loops: bool,
}

impl StaticMix {
    /// Trip count assumed for loops whose bounds are not compile-time
    /// immediates.
    pub const DYNAMIC_TRIP_ASSUMPTION: f64 = 16.0;

    /// flops per byte of memory traffic — the roofline x-axis, statically
    /// estimated.
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.bytes_read + self.bytes_written;
        if bytes > 0.0 {
            self.flops / bytes
        } else {
            f64::INFINITY
        }
    }

    /// Fraction of instructions that are memory accesses.
    pub fn memory_instruction_fraction(&self) -> f64 {
        let mem = self.loads + self.stores + self.atomics;
        let total = mem + self.flops + self.int_ops + self.special_ops;
        if total > 0.0 {
            mem / total
        } else {
            0.0
        }
    }
}

fn trip_count(start: &Operand, end: &Operand, step: &Operand) -> Option<f64> {
    if let (Operand::ImmI(s), Operand::ImmI(e), Operand::ImmI(st)) = (start, end, step) {
        if *st > 0 && e > s {
            return Some(((e - s + st - 1) / st) as f64);
        }
        if *st < 0 && e < s {
            return Some(((s - e - st - 1) / -st) as f64);
        }
        return Some(0.0);
    }
    None
}

/// Analyze `p` and return its per-work-item static mix.
pub fn analyze(p: &Program) -> StaticMix {
    let mut mix = StaticMix::default();
    walk(p, &p.body, 1.0, &mut mix, true);
    mix
}

fn elem_bytes(p: &Program, buf: crate::instr::ArgIdx) -> f64 {
    p.args
        .get(buf.0 as usize)
        .map(|a| a.elem().bytes() as f64)
        .unwrap_or(4.0)
}

fn walk(p: &Program, ops: &[Op], weight: f64, mix: &mut StaticMix, top: bool) {
    for op in ops {
        match op {
            Op::Bin { dst, .. } => {
                if p.reg_ty(*dst).elem.is_float() {
                    mix.flops += weight * p.reg_ty(*dst).width as f64;
                } else {
                    mix.int_ops += weight;
                }
            }
            Op::Mad { dst, .. } => {
                if p.reg_ty(*dst).elem.is_float() {
                    mix.flops += 2.0 * weight * p.reg_ty(*dst).width as f64;
                } else {
                    mix.int_ops += weight;
                }
            }
            Op::Un { dst, op: u, .. } => match u {
                UnOp::Sqrt | UnOp::Rsqrt | UnOp::Exp | UnOp::Log => {
                    mix.special_ops += weight * p.reg_ty(*dst).width as f64;
                }
                _ => {
                    if p.reg_ty(*dst).elem.is_float() {
                        mix.flops += weight * p.reg_ty(*dst).width as f64;
                    } else {
                        mix.int_ops += weight;
                    }
                }
            },
            Op::Select { .. }
            | Op::Mov { .. }
            | Op::Cast { .. }
            | Op::Horiz { .. }
            | Op::Extract { .. }
            | Op::Insert { .. }
            | Op::Query { .. } => {
                mix.int_ops += weight;
            }
            Op::Load { dst, buf, .. } => {
                // Scalar-arg "loads" are register reads, not memory.
                if matches!(
                    p.args.get(buf.0 as usize),
                    Some(crate::instr::ArgDecl::Scalar { .. })
                ) {
                    continue;
                }
                mix.loads += weight;
                mix.bytes_read += weight * p.reg_ty(*dst).width as f64 * elem_bytes(p, *buf);
            }
            Op::VLoad { dst, buf, .. } => {
                mix.loads += weight;
                mix.bytes_read += weight * p.reg_ty(*dst).width as f64 * elem_bytes(p, *buf);
            }
            Op::Store { buf, idx, .. } => {
                mix.stores += weight;
                let w = match idx {
                    Operand::Reg(r) => p.reg_ty(*r).width as f64,
                    _ => 1.0,
                };
                mix.bytes_written += weight * w * elem_bytes(p, *buf);
            }
            Op::VStore { buf, val, .. } => {
                mix.stores += weight;
                let w = match val {
                    Operand::Reg(r) => p.reg_ty(*r).width as f64,
                    _ => 1.0,
                };
                mix.bytes_written += weight * w * elem_bytes(p, *buf);
            }
            Op::Atomic { .. } => {
                mix.atomics += weight;
            }
            Op::For {
                start,
                end,
                step,
                body,
                ..
            } => {
                let trips = match trip_count(start, end, step) {
                    Some(t) => t,
                    None => {
                        mix.has_dynamic_loops = true;
                        StaticMix::DYNAMIC_TRIP_ASSUMPTION
                    }
                };
                mix.int_ops += weight * trips; // back-edge
                walk(p, body, weight * trips, mix, false);
            }
            Op::If { then, els, .. } => {
                mix.int_ops += weight;
                // Weight both arms by half: branchless expectation.
                walk(p, then, weight * 0.5, mix, false);
                walk(p, els, weight * 0.5, mix, false);
            }
            Op::Barrier => {
                if top {
                    mix.barriers += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::instr::BinOp;
    use crate::types::Scalar;
    use crate::types::{Access, VType};

    #[test]
    fn vecadd_mix() {
        let mut kb = KernelBuilder::new("va");
        let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let b = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let c = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let va = kb.load(Scalar::F32, a, gid.into());
        let vb = kb.load(Scalar::F32, b, gid.into());
        let s = kb.bin(BinOp::Add, va.into(), vb.into(), VType::scalar(Scalar::F32));
        kb.store(c, gid.into(), s.into());
        let mix = analyze(&kb.finish());
        assert_eq!(mix.flops, 1.0);
        assert_eq!(mix.loads, 2.0);
        assert_eq!(mix.stores, 1.0);
        assert_eq!(mix.bytes_read, 8.0);
        assert_eq!(mix.bytes_written, 4.0);
        // 1 flop / 12 bytes — memory bound, as §V says of vecop.
        assert!((mix.arithmetic_intensity() - 1.0 / 12.0).abs() < 1e-12);
        assert!(!mix.has_dynamic_loops);
    }

    #[test]
    fn loop_weighting_with_immediate_trips() {
        let mut kb = KernelBuilder::new("loop");
        let a = kb.arg_global(Scalar::F64, Access::ReadOnly, true);
        let o = kb.arg_global(Scalar::F64, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let acc = kb.mov(crate::instr::Operand::ImmF(0.0), VType::scalar(Scalar::F64));
        kb.for_loop(
            crate::instr::Operand::ImmI(0),
            crate::instr::Operand::ImmI(10),
            crate::instr::Operand::ImmI(1),
            |kb, i| {
                let v = kb.load(Scalar::F64, a, i.into());
                kb.mad_into(acc, v.into(), v.into(), acc.into());
            },
        );
        kb.store(o, gid.into(), acc.into());
        let mix = analyze(&kb.finish());
        assert_eq!(mix.loads, 10.0);
        assert_eq!(mix.flops, 20.0); // 10 mads x 2
        assert_eq!(mix.bytes_read, 80.0);
    }

    #[test]
    fn dynamic_loops_flagged() {
        let mut kb = KernelBuilder::new("dyn");
        let ptr = kb.arg_global(Scalar::U32, Access::ReadOnly, true);
        let o = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let end = kb.load(Scalar::U32, ptr, gid.into());
        let acc = kb.mov(crate::instr::Operand::ImmF(0.0), VType::scalar(Scalar::F32));
        kb.for_loop(
            crate::instr::Operand::ImmI(0),
            end.into(),
            crate::instr::Operand::ImmI(1),
            |kb, _| {
                kb.bin_into(
                    acc,
                    BinOp::Add,
                    acc.into(),
                    crate::instr::Operand::ImmF(1.0),
                );
            },
        );
        kb.store(o, gid.into(), acc.into());
        let mix = analyze(&kb.finish());
        assert!(mix.has_dynamic_loops);
        assert_eq!(mix.flops, StaticMix::DYNAMIC_TRIP_ASSUMPTION);
    }

    #[test]
    fn vector_ops_count_lanes() {
        let mut kb = KernelBuilder::new("v");
        let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let o = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let v = kb.vload(Scalar::F32, 8, a, gid.into());
        let s = kb.bin(BinOp::Mul, v.into(), v.into(), VType::new(Scalar::F32, 8));
        kb.vstore(o, gid.into(), s.into());
        let mix = analyze(&kb.finish());
        assert_eq!(mix.flops, 8.0);
        assert_eq!(mix.loads, 1.0);
        assert_eq!(mix.bytes_read, 32.0);
        assert_eq!(mix.bytes_written, 32.0);
    }

    #[test]
    fn special_and_atomic_counting() {
        let mut kb = KernelBuilder::new("sa");
        let h = kb.arg_global(Scalar::U32, Access::ReadWrite, false);
        let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let gid = kb.query_global_id(0);
        let v = kb.load(Scalar::F32, a, gid.into());
        let _r = kb.un(UnOp::Rsqrt, v.into(), VType::scalar(Scalar::F32));
        kb.atomic(
            crate::instr::AtomicOp::Inc,
            h,
            gid.into(),
            crate::instr::Operand::ImmI(0),
        );
        let mix = analyze(&kb.finish());
        assert_eq!(mix.special_ops, 1.0);
        assert_eq!(mix.atomics, 1.0);
        assert!(mix.memory_instruction_fraction() > 0.3);
    }
}
