//! Ergonomic kernel construction.
//!
//! [`KernelBuilder`] allocates typed registers and appends instructions;
//! loops and conditionals take closures so nesting reads like the OpenCL C
//! it stands in for.

use crate::instr::{
    ArgDecl, ArgIdx, AtomicOp, BinOp, Builtin, Hints, HorizOp, Op, Operand, Reg, UnOp,
};
use crate::program::Program;
use crate::types::{Access, Scalar, VType};

/// Incremental builder for a [`Program`].
pub struct KernelBuilder {
    name: String,
    args: Vec<ArgDecl>,
    regs: Vec<VType>,
    /// Stack of op lists: bottom is the kernel body, the rest are open
    /// loop/if bodies.
    blocks: Vec<Vec<Op>>,
    hints: Hints,
}

impl KernelBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            args: Vec::new(),
            regs: Vec::new(),
            blocks: vec![Vec::new()],
            hints: Hints::default(),
        }
    }

    /// Set the Section III-B compiler hints.
    pub fn hints(&mut self, hints: Hints) -> &mut Self {
        self.hints = hints;
        self
    }

    // ---- declarations -------------------------------------------------

    /// Declare a `__global` buffer argument.
    pub fn arg_global(&mut self, elem: Scalar, access: Access, restrict: bool) -> ArgIdx {
        self.args.push(ArgDecl::GlobalBuf {
            elem,
            access,
            restrict,
        });
        ArgIdx((self.args.len() - 1) as u32)
    }

    /// Declare a `__local` buffer argument (size chosen at launch).
    pub fn arg_local(&mut self, elem: Scalar) -> ArgIdx {
        self.args.push(ArgDecl::LocalBuf { elem });
        ArgIdx((self.args.len() - 1) as u32)
    }

    /// Declare a by-value scalar argument.
    pub fn arg_scalar(&mut self, ty: Scalar) -> ArgIdx {
        self.args.push(ArgDecl::Scalar { ty });
        ArgIdx((self.args.len() - 1) as u32)
    }

    /// Allocate a fresh register of type `ty`.
    pub fn reg(&mut self, ty: VType) -> Reg {
        self.regs.push(ty);
        Reg((self.regs.len() - 1) as u32)
    }

    fn push(&mut self, op: Op) {
        self.blocks
            .last_mut()
            .expect("block stack never empty")
            .push(op);
    }

    // ---- straight-line ops --------------------------------------------

    /// `dst = a <op> b`, allocating the destination.
    pub fn bin(&mut self, op: BinOp, a: Operand, b: Operand, ty: VType) -> Reg {
        let dst_ty = crate::ops::bin_result_type(op, ty);
        let dst = self.reg(dst_ty);
        self.push(Op::Bin { dst, op, a, b });
        dst
    }

    /// `dst = a <op> b` into an existing register.
    pub fn bin_into(&mut self, dst: Reg, op: BinOp, a: Operand, b: Operand) {
        self.push(Op::Bin { dst, op, a, b });
    }

    pub fn un(&mut self, op: UnOp, a: Operand, ty: VType) -> Reg {
        let dst = self.reg(ty);
        self.push(Op::Un { dst, op, a });
        dst
    }

    /// Fused multiply-add `a*b + c`.
    pub fn mad(&mut self, a: Operand, b: Operand, c: Operand, ty: VType) -> Reg {
        let dst = self.reg(ty);
        self.push(Op::Mad { dst, a, b, c });
        dst
    }

    pub fn mad_into(&mut self, dst: Reg, a: Operand, b: Operand, c: Operand) {
        self.push(Op::Mad { dst, a, b, c });
    }

    pub fn select(&mut self, cond: Operand, a: Operand, b: Operand, ty: VType) -> Reg {
        let dst = self.reg(ty);
        self.push(Op::Select { dst, cond, a, b });
        dst
    }

    pub fn select_into(&mut self, dst: Reg, cond: Operand, a: Operand, b: Operand) {
        self.push(Op::Select { dst, cond, a, b });
    }

    pub fn mov(&mut self, a: Operand, ty: VType) -> Reg {
        let dst = self.reg(ty);
        self.push(Op::Mov { dst, a });
        dst
    }

    pub fn mov_into(&mut self, dst: Reg, a: Operand) {
        self.push(Op::Mov { dst, a });
    }

    /// Lane-wise conversion of `a` into a fresh register of type `to`.
    pub fn cast(&mut self, a: Operand, to: VType) -> Reg {
        let dst = self.reg(to);
        self.push(Op::Cast { dst, a });
        dst
    }

    pub fn horiz(&mut self, op: HorizOp, a: Reg) -> Reg {
        let elem = self.regs[a.0 as usize].elem;
        let dst = self.reg(VType::scalar(elem));
        self.push(Op::Horiz {
            dst,
            op,
            a: a.into(),
        });
        dst
    }

    pub fn extract(&mut self, a: Reg, lane: u8) -> Reg {
        let elem = self.regs[a.0 as usize].elem;
        let dst = self.reg(VType::scalar(elem));
        self.push(Op::Extract {
            dst,
            a: a.into(),
            lane,
        });
        dst
    }

    pub fn insert_into(&mut self, dst: Reg, v: Operand, lane: u8) {
        self.push(Op::Insert { dst, v, lane });
    }

    // ---- queries -------------------------------------------------------

    fn query(&mut self, q: Builtin) -> Reg {
        let dst = self.reg(VType::scalar(Scalar::U32));
        self.push(Op::Query { dst, q });
        dst
    }

    pub fn query_global_id(&mut self, dim: u8) -> Reg {
        self.query(Builtin::GlobalId(dim))
    }
    pub fn query_local_id(&mut self, dim: u8) -> Reg {
        self.query(Builtin::LocalId(dim))
    }
    pub fn query_group_id(&mut self, dim: u8) -> Reg {
        self.query(Builtin::GroupId(dim))
    }
    pub fn query_global_size(&mut self, dim: u8) -> Reg {
        self.query(Builtin::GlobalSize(dim))
    }
    pub fn query_local_size(&mut self, dim: u8) -> Reg {
        self.query(Builtin::LocalSize(dim))
    }
    pub fn query_num_groups(&mut self, dim: u8) -> Reg {
        self.query(Builtin::NumGroups(dim))
    }

    // ---- memory ---------------------------------------------------------

    /// Scalar or gather load (dst width follows the index width).
    pub fn load(&mut self, elem: Scalar, buf: ArgIdx, idx: Operand) -> Reg {
        let width = match idx {
            Operand::Reg(r) => self.regs[r.0 as usize].width,
            _ => 1,
        };
        let dst = self.reg(VType::new(elem, width));
        self.push(Op::Load { dst, buf, idx });
        dst
    }

    /// Contiguous `vloadN`.
    pub fn vload(&mut self, elem: Scalar, width: u8, buf: ArgIdx, base: Operand) -> Reg {
        let dst = self.reg(VType::new(elem, width));
        self.push(Op::VLoad { dst, buf, base });
        dst
    }

    pub fn store(&mut self, buf: ArgIdx, idx: Operand, val: Operand) {
        self.push(Op::Store { buf, idx, val });
    }

    pub fn vstore(&mut self, buf: ArgIdx, base: Operand, val: Operand) {
        self.push(Op::VStore { buf, base, val });
    }

    pub fn atomic(&mut self, op: AtomicOp, buf: ArgIdx, idx: Operand, val: Operand) {
        self.push(Op::Atomic {
            op,
            buf,
            idx,
            val,
            old: None,
        });
    }

    pub fn atomic_old(
        &mut self,
        op: AtomicOp,
        buf: ArgIdx,
        idx: Operand,
        val: Operand,
        elem: Scalar,
    ) -> Reg {
        let old = self.reg(VType::scalar(elem));
        self.push(Op::Atomic {
            op,
            buf,
            idx,
            val,
            old: Some(old),
        });
        old
    }

    /// Load a by-value scalar kernel argument into a register.
    ///
    /// Scalar args are modeled as single-element loads from a uniform space
    /// at execution time, but in the IR they read directly; the builder
    /// represents this as a `Load` from the scalar arg with index 0.
    pub fn load_scalar_arg(&mut self, arg: ArgIdx) -> Reg {
        let ty = self.args[arg.0 as usize].elem();
        let dst = self.reg(VType::scalar(ty));
        self.push(Op::Load {
            dst,
            buf: arg,
            idx: Operand::ImmI(0),
        });
        dst
    }

    // ---- control flow ----------------------------------------------------

    /// `for (var = start; var < end; var += step) body(var)` with a `u32`
    /// counter.
    pub fn for_loop(
        &mut self,
        start: Operand,
        end: Operand,
        step: Operand,
        body: impl FnOnce(&mut Self, Reg),
    ) {
        self.for_loop_typed(Scalar::U32, start, end, step, body)
    }

    /// `for` with an explicit counter type.
    pub fn for_loop_typed(
        &mut self,
        counter: Scalar,
        start: Operand,
        end: Operand,
        step: Operand,
        body: impl FnOnce(&mut Self, Reg),
    ) {
        let var = self.reg(VType::scalar(counter));
        self.blocks.push(Vec::new());
        body(self, var);
        let body_ops = self.blocks.pop().expect("loop body block");
        self.push(Op::For {
            var,
            start,
            end,
            step,
            body: body_ops,
        });
    }

    /// `if (cond) then` with no else branch.
    pub fn if_then(&mut self, cond: Operand, then: impl FnOnce(&mut Self)) {
        self.if_then_else(cond, then, |_| {})
    }

    pub fn if_then_else(
        &mut self,
        cond: Operand,
        then: impl FnOnce(&mut Self),
        els: impl FnOnce(&mut Self),
    ) {
        self.blocks.push(Vec::new());
        then(self);
        let then_ops = self.blocks.pop().expect("then block");
        self.blocks.push(Vec::new());
        els(self);
        let els_ops = self.blocks.pop().expect("else block");
        self.push(Op::If {
            cond,
            then: then_ops,
            els: els_ops,
        });
    }

    /// Work-group barrier. Panics if inside a loop/if — the validator would
    /// reject it anyway; failing at build time gives a better backtrace.
    pub fn barrier(&mut self) {
        assert_eq!(
            self.blocks.len(),
            1,
            "barrier may only be emitted at the top level of a kernel"
        );
        self.push(Op::Barrier);
    }

    /// Finalize; panics if a loop/if body is still open.
    pub fn finish(self) -> Program {
        assert_eq!(self.blocks.len(), 1, "unclosed block in kernel builder");
        let mut blocks = self.blocks;
        Program {
            name: self.name,
            args: self.args,
            regs: self.regs,
            body: blocks.pop().unwrap(),
            hints: self.hints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_structure() {
        let mut kb = KernelBuilder::new("nest");
        let acc = kb.mov(Operand::ImmF(0.0), VType::scalar(Scalar::F32));
        kb.for_loop(
            Operand::ImmI(0),
            Operand::ImmI(10),
            Operand::ImmI(1),
            |kb, _i| {
                kb.bin_into(acc, BinOp::Add, acc.into(), Operand::ImmF(1.0));
                let c = kb.bin(
                    BinOp::Lt,
                    acc.into(),
                    Operand::ImmF(5.0),
                    VType::scalar(Scalar::F32),
                );
                kb.if_then(c.into(), |kb| {
                    kb.bin_into(acc, BinOp::Add, acc.into(), Operand::ImmF(1.0));
                });
            },
        );
        let p = kb.finish();
        assert!(p.validate().is_ok(), "{:?}", p.validate());
        assert_eq!(p.body.len(), 2); // mov + for
        match &p.body[1] {
            Op::For { body, .. } => assert_eq!(body.len(), 3), // add, cmp, if
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "barrier may only be emitted at the top level")]
    fn barrier_inside_loop_panics_at_build() {
        let mut kb = KernelBuilder::new("bad");
        kb.for_loop(
            Operand::ImmI(0),
            Operand::ImmI(2),
            Operand::ImmI(1),
            |kb, _| {
                kb.barrier();
            },
        );
    }

    #[test]
    fn load_width_follows_index() {
        let mut kb = KernelBuilder::new("g");
        let buf = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let idx = kb.mov(Operand::ImmI(0), VType::new(Scalar::U32, 4));
        let v = kb.load(Scalar::F32, buf, idx.into());
        let p = kb.finish();
        assert_eq!(p.reg_ty(v), VType::new(Scalar::F32, 4));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn compare_allocates_bool_register() {
        let mut kb = KernelBuilder::new("c");
        let a = kb.mov(Operand::ImmF(1.0), VType::new(Scalar::F32, 4));
        let c = kb.bin(
            BinOp::Lt,
            a.into(),
            Operand::ImmF(2.0),
            VType::new(Scalar::F32, 4),
        );
        let p = kb.finish();
        assert_eq!(p.reg_ty(c), VType::new(Scalar::Bool, 4));
        assert!(p.validate().is_ok(), "{:?}", p.validate());
    }

    #[test]
    fn scalar_arg_load() {
        let mut kb = KernelBuilder::new("s");
        let n = kb.arg_scalar(Scalar::U32);
        let r = kb.load_scalar_arg(n);
        let p = kb.finish();
        assert_eq!(p.reg_ty(r), VType::scalar(Scalar::U32));
    }
}
