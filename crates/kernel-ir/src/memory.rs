//! Device memory: typed buffers and the flat address space they live in.
//!
//! Buffers carry a *simulated base address* so cache models downstream see a
//! realistic address stream (distinct buffers map to distinct, page-aligned
//! regions, as the Mali MMU would arrange them).

use crate::types::Scalar;
use crate::value::Value;

/// Typed element storage of one buffer.
#[derive(Clone, Debug, PartialEq)]
pub enum BufferData {
    F32(Vec<f32>),
    F64(Vec<f64>),
    I32(Vec<i32>),
    I64(Vec<i64>),
    U32(Vec<u32>),
    U64(Vec<u64>),
}

impl BufferData {
    /// Zero-initialized buffer of `len` elements.
    pub fn zeroed(elem: Scalar, len: usize) -> BufferData {
        match elem {
            Scalar::F32 => BufferData::F32(vec![0.0; len]),
            Scalar::F64 => BufferData::F64(vec![0.0; len]),
            Scalar::I32 => BufferData::I32(vec![0; len]),
            Scalar::I64 => BufferData::I64(vec![0; len]),
            Scalar::U32 => BufferData::U32(vec![0; len]),
            Scalar::U64 => BufferData::U64(vec![0; len]),
            Scalar::Bool => panic!("bool buffers are not storable"),
        }
    }

    /// Reset every element to zero in place — lets per-group local buffers
    /// be reused across groups instead of reallocated.
    pub fn zero_fill(&mut self) {
        match self {
            BufferData::F32(v) => v.fill(0.0),
            BufferData::F64(v) => v.fill(0.0),
            BufferData::I32(v) => v.fill(0),
            BufferData::I64(v) => v.fill(0),
            BufferData::U32(v) => v.fill(0),
            BufferData::U64(v) => v.fill(0),
        }
    }

    pub fn elem(&self) -> Scalar {
        match self {
            BufferData::F32(_) => Scalar::F32,
            BufferData::F64(_) => Scalar::F64,
            BufferData::I32(_) => Scalar::I32,
            BufferData::I64(_) => Scalar::I64,
            BufferData::U32(_) => Scalar::U32,
            BufferData::U64(_) => Scalar::U64,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            BufferData::F32(v) => v.len(),
            BufferData::F64(v) => v.len(),
            BufferData::I32(v) => v.len(),
            BufferData::I64(v) => v.len(),
            BufferData::U32(v) => v.len(),
            BufferData::U64(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Byte size of the buffer contents.
    pub fn bytes(&self) -> u64 {
        self.len() as u64 * self.elem().bytes() as u64
    }

    /// Read one element as a scalar [`Value`]. Panics on out-of-bounds, which
    /// surfaces kernel indexing bugs immediately (a real device would fault
    /// or corrupt memory — the simulator is stricter).
    pub fn get(&self, i: usize) -> Value {
        match self {
            BufferData::F32(v) => Value::f32(v[i]),
            BufferData::F64(v) => Value::f64(v[i]),
            BufferData::I32(v) => Value::i32(v[i]),
            BufferData::I64(v) => Value::i64(v[i]),
            BufferData::U32(v) => Value::u32(v[i]),
            BufferData::U64(v) => Value::u64(v[i]),
        }
    }

    /// Write lane `lane` of `val` to element `i`.
    pub fn set(&mut self, i: usize, val: &Value, lane: usize) {
        match self {
            BufferData::F32(v) => v[i] = val.lane_f64(lane) as f32,
            BufferData::F64(v) => v[i] = val.lane_f64(lane),
            BufferData::I32(v) => v[i] = val.lane_i64(lane) as i32,
            BufferData::I64(v) => v[i] = val.lane_i64(lane),
            BufferData::U32(v) => v[i] = val.lane_i64(lane) as u32,
            BufferData::U64(v) => v[i] = val.lane_i64(lane) as u64,
        }
    }

    /// Gather `width` lanes at element indices given by `idx` lanes.
    pub fn gather(&self, idx: &Value) -> Value {
        let w = idx.width() as usize;
        let mut out = Value::zero(crate::types::VType::new(self.elem(), w as u8));
        for lane in 0..w {
            out = out.insert(lane, &self.get(idx.lane_index(lane)));
        }
        out
    }

    /// Contiguous load of `width` elements starting at `base`.
    pub fn vload(&self, base: usize, width: u8) -> Value {
        let mut out = Value::zero(crate::types::VType::new(self.elem(), width));
        for lane in 0..width as usize {
            out = out.insert(lane, &self.get(base + lane));
        }
        out
    }

    /// Contiguous store of all lanes of `val` starting at `base`.
    pub fn vstore(&mut self, base: usize, val: &Value) {
        for lane in 0..val.width() as usize {
            self.set(base + lane, val, lane);
        }
    }

    /// Convenience accessors for host code / validation.
    pub fn as_f32(&self) -> &[f32] {
        match self {
            BufferData::F32(v) => v,
            _ => panic!("buffer is {:?}, not f32", self.elem()),
        }
    }
    pub fn as_f64(&self) -> &[f64] {
        match self {
            BufferData::F64(v) => v,
            _ => panic!("buffer is {:?}, not f64", self.elem()),
        }
    }
    pub fn as_u32(&self) -> &[u32] {
        match self {
            BufferData::U32(v) => v,
            _ => panic!("buffer is {:?}, not u32", self.elem()),
        }
    }
    pub fn as_i32(&self) -> &[i32] {
        match self {
            BufferData::I32(v) => v,
            _ => panic!("buffer is {:?}, not i32", self.elem()),
        }
    }

    /// Lane `i` as f64 for tolerance comparisons in tests/validators.
    pub fn elem_f64(&self, i: usize) -> f64 {
        self.get(i).lane_f64(0)
    }
}

impl From<Vec<f32>> for BufferData {
    fn from(v: Vec<f32>) -> Self {
        BufferData::F32(v)
    }
}
impl From<Vec<f64>> for BufferData {
    fn from(v: Vec<f64>) -> Self {
        BufferData::F64(v)
    }
}
impl From<Vec<i32>> for BufferData {
    fn from(v: Vec<i32>) -> Self {
        BufferData::I32(v)
    }
}
impl From<Vec<u32>> for BufferData {
    fn from(v: Vec<u32>) -> Self {
        BufferData::U32(v)
    }
}
impl From<Vec<i64>> for BufferData {
    fn from(v: Vec<i64>) -> Self {
        BufferData::I64(v)
    }
}
impl From<Vec<u64>> for BufferData {
    fn from(v: Vec<u64>) -> Self {
        BufferData::U64(v)
    }
}

/// Alignment of simulated buffer base addresses (one 4 KiB page).
pub const BUFFER_ALIGN: u64 = 4096;

/// A set of buffers laid out in a single simulated physical address space.
#[derive(Clone, Debug, Default)]
pub struct MemoryPool {
    buffers: Vec<BufferData>,
    bases: Vec<u64>,
    next_base: u64,
}

impl MemoryPool {
    pub fn new() -> Self {
        MemoryPool {
            buffers: Vec::new(),
            bases: Vec::new(),
            next_base: BUFFER_ALIGN,
        }
    }

    /// Add a buffer; returns its pool index.
    ///
    /// Bases are page-aligned and *colored*: each buffer is additionally
    /// staggered by a line-aligned offset so that same-index elements of
    /// consecutive buffers do not land in the same cache set (a packed
    /// layout would alias power-of-two-sized buffers pathologically, which
    /// real allocators avoid by accident).
    pub fn add(&mut self, data: BufferData) -> usize {
        let idx = self.buffers.len();
        let size = data.bytes().max(1);
        let color = (idx as u64 % 13) * 832; // 13 x 64-byte lines per step
        self.bases.push(self.next_base + color);
        self.next_base += (size + color).div_ceil(BUFFER_ALIGN) * BUFFER_ALIGN + BUFFER_ALIGN;
        self.buffers.push(data);
        idx
    }

    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    pub fn get(&self, idx: usize) -> &BufferData {
        &self.buffers[idx]
    }

    pub fn get_mut(&mut self, idx: usize) -> &mut BufferData {
        &mut self.buffers[idx]
    }

    /// Simulated physical base address of buffer `idx`.
    pub fn base_addr(&self, idx: usize) -> u64 {
        self.bases[idx]
    }

    /// Simulated physical address of element `elem_idx` in buffer `idx`.
    pub fn elem_addr(&self, idx: usize, elem_idx: usize) -> u64 {
        self.bases[idx] + elem_idx as u64 * self.buffers[idx].elem().bytes() as u64
    }

    pub fn take(self) -> Vec<BufferData> {
        self.buffers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_typed() {
        let b = BufferData::zeroed(Scalar::F64, 8);
        assert_eq!(b.len(), 8);
        assert_eq!(b.elem(), Scalar::F64);
        assert_eq!(b.bytes(), 64);
    }

    #[test]
    fn vload_vstore_roundtrip() {
        let mut b = BufferData::from(vec![0f32; 8]);
        let v = Value::f32s(&[1.0, 2.0, 3.0, 4.0]);
        b.vstore(2, &v);
        let r = b.vload(2, 4);
        assert_eq!(r, v);
        assert_eq!(b.as_f32()[1], 0.0);
        assert_eq!(b.as_f32()[6], 0.0);
    }

    #[test]
    fn gather_respects_indices() {
        let b = BufferData::from(vec![10f32, 11.0, 12.0, 13.0]);
        let idx = Value::u32s(&[3, 0]);
        let g = b.gather(&idx);
        assert_eq!(g.lane_f64(0), 13.0);
        assert_eq!(g.lane_f64(1), 10.0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_faults() {
        let b = BufferData::from(vec![1f32]);
        let _ = b.get(5);
    }

    #[test]
    fn pool_addresses_disjoint_and_aligned() {
        let mut pool = MemoryPool::new();
        let a = pool.add(BufferData::zeroed(Scalar::F32, 1000));
        let b = pool.add(BufferData::zeroed(Scalar::F64, 10));
        let base_a = pool.base_addr(a);
        let base_b = pool.base_addr(b);
        // Bases are line-aligned (coloring staggers them off page
        // boundaries on purpose).
        assert_eq!(base_a % 64, 0);
        assert_eq!(base_b % 64, 0);
        // b starts past the end of a.
        assert!(base_b >= base_a + 4000);
        // element addressing scales with element size.
        assert_eq!(pool.elem_addr(b, 3), base_b + 24);
    }

    #[test]
    fn set_get_integer_exact() {
        let mut b = BufferData::zeroed(Scalar::U64, 2);
        let big = Value::u64(u64::MAX - 1);
        b.set(1, &big, 0);
        assert_eq!(b.get(1), big);
    }
}
