//! The optimization passes, each a function over [`Ssa`] form.
//!
//! Legality ground rules (the byte-identical-results invariant):
//!
//! - Constant arithmetic goes through the interpreter's own `eval_*`
//!   helpers, and immediates are materialized exactly the way the decoder's
//!   `splat_imm` will re-materialize them, so folding is bit-exact by
//!   construction. NaN lanes are never turned into immediates.
//! - Float rewrites are restricted to exact IEEE identities (`x*1.0`,
//!   `x/1.0`, `x-0.0`, double negation). `x+0.0` is *not* an identity
//!   (`-0.0 + 0.0 == +0.0`) and float `Mul`+`Add` is never fused into `Mad`
//!   (`Mad` lowers to `mul_add`, which rounds once, not twice).
//! - Integer rewrites lean on the IR's wrapping semantics; `Mul`+`Add`
//!   fusion and multiply-by-power-of-two strength reduction are exact.
//! - Trapping ops (integer `Div`/`Rem`) are never speculated (licm), never
//!   folded unless the divisor is a known all-nonzero constant, and
//!   `Div`/`Rem` strength reduction is unsigned-only.
//! - `dse`/`dce` may delete memory events (the overwritten store, a dead
//!   load) without changing any result byte; this is the one documented
//!   observable deviation (DESIGN.md §17).
//!
//! Everything iterates `Vec`s/`BTreeMap`s only — pass output is fully
//! deterministic, a requirement for content-addressed serving cells.

use super::ssa::{BlockId, InstKind, Shape, Ssa, VOp, ValId};
use super::PassCounters;
use crate::instr::{BinOp, Builtin, UnOp};
use crate::ops::{eval_bin, eval_mad, eval_select, eval_un};
use crate::types::{Scalar, VType};
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// Materialize an immediate operand at `ty`, exactly as the decoder's
/// `splat_imm` will at launch. Returns `None` for contexts immediates
/// cannot legally take (`Bool`, or a float immediate in an int context).
fn imm_value(o: &VOp, ty: VType) -> Option<Value> {
    let w = ty.width;
    match (o, ty.elem) {
        (VOp::ImmF(x), Scalar::F32) => Some(Value::splat_f32(*x as f32, w)),
        (VOp::ImmF(x), Scalar::F64) => Some(Value::splat_f64(*x, w)),
        (VOp::ImmF(_), _) => None,
        (VOp::ImmI(x), Scalar::F32) => Some(Value::splat_f32(*x as f32, w)),
        (VOp::ImmI(x), Scalar::F64) => Some(Value::splat_f64(*x as f64, w)),
        (VOp::ImmI(x), Scalar::I32) => Some(Value::splat_i32(*x as i32, w)),
        (VOp::ImmI(x), Scalar::I64) => Some(Value::splat_i64(*x, w)),
        (VOp::ImmI(x), Scalar::U32) => Some(Value::splat_u32(*x as u32, w)),
        (VOp::ImmI(x), Scalar::U64) => Some(Value::splat_u64(*x as u64, w)),
        (VOp::ImmI(_), Scalar::Bool) => None,
        (VOp::Val(_) | VOp::Reg(_), _) => None,
    }
}

/// Turn a known constant value into an immediate operand, but only when the
/// round trip through `splat_imm` is bit-exact: the value must be lane-
/// uniform, non-`Bool`, and float lanes must not be NaN (NaN payloads do
/// not survive an f32→f64→f32 round trip portably).
fn value_to_imm(v: &Value) -> Option<VOp> {
    let w = v.width() as usize;
    match v.elem() {
        Scalar::Bool => None,
        Scalar::F32 | Scalar::F64 => {
            let x = v.lane_f64(0);
            if x.is_nan() {
                return None;
            }
            for i in 1..w {
                if v.lane_f64(i).to_bits() != x.to_bits() {
                    return None;
                }
            }
            Some(VOp::ImmF(x))
        }
        _ => {
            let x = v.lane_i64(0);
            for i in 1..w {
                if v.lane_i64(i) != x {
                    return None;
                }
            }
            Some(VOp::ImmI(x))
        }
    }
}

/// Bitwise lane-by-lane equality (distinguishes `-0.0` from `0.0`, treats
/// equal-payload NaNs as equal).
fn bits_eq(a: &Value, b: &Value) -> bool {
    if a.vtype() != b.vtype() {
        return false;
    }
    (0..a.width() as usize).all(|i| match a.elem() {
        Scalar::F32 | Scalar::F64 => a.lane_f64(i).to_bits() == b.lane_f64(i).to_bits(),
        Scalar::Bool => a.lane_bool(i) == b.lane_bool(i),
        _ => a.lane_i64(i) == b.lane_i64(i),
    })
}

/// Static use counts of every value (phi arguments included).
fn use_counts(f: &Ssa) -> Vec<usize> {
    let mut uses = vec![0usize; f.insts.len()];
    for blk in &f.blocks {
        for &v in &blk.insts {
            for o in Ssa::operands(&f.insts[v].kind) {
                if let VOp::Val(u) = o {
                    uses[u] += 1;
                }
            }
        }
    }
    uses
}

// ---------------------------------------------------------------------------
// cf — constant folding + propagation
// ---------------------------------------------------------------------------

/// Evaluate `v` if all its operands are known constants; `None` otherwise.
/// Trapping cases (int div/rem with a zero divisor lane) are left alone so
/// the runtime trap survives.
fn const_eval(f: &Ssa, vals: &[Option<Value>], v: ValId) -> Option<Value> {
    let inst = &f.insts[v];
    let ty = inst.ty?;
    let opv = |o: &VOp, want: VType| -> Option<Value> {
        match o {
            VOp::Val(u) => vals[*u].map(|x| x.broadcast(want.width)),
            imm => imm_value(imm, want),
        }
    };
    match &inst.kind {
        InstKind::Bin { op, a, b } => {
            let want = if op.is_compare() {
                // Operand element type comes from whichever side is a value.
                let elem = [a, b]
                    .iter()
                    .find_map(|o| o.as_val().and_then(|u| f.insts[u].ty))
                    .map(|t| t.elem)?;
                VType {
                    elem,
                    width: ty.width,
                }
            } else {
                ty
            };
            let av = opv(a, want)?;
            let bv = opv(b, want)?;
            if matches!(op, BinOp::Div | BinOp::Rem) && want.elem.is_int() {
                // Keep the division-by-zero trap.
                if (0..bv.width() as usize).any(|i| bv.lane_i64(i) == 0) {
                    return None;
                }
            }
            Some(eval_bin(*op, &av, &bv))
        }
        InstKind::Un { op, a } => Some(eval_un(*op, &opv(a, ty)?)),
        InstKind::Mad { a, b, c } => Some(eval_mad(&opv(a, ty)?, &opv(b, ty)?, &opv(c, ty)?)),
        InstKind::Select { cond, a, b } => {
            let cw = VType {
                elem: Scalar::Bool,
                width: ty.width,
            };
            Some(eval_select(&opv(cond, cw)?, &opv(a, ty)?, &opv(b, ty)?))
        }
        InstKind::Mov { a } => opv(a, ty),
        InstKind::Cast { a } => {
            // Only fold through a known value — an immediate source has no
            // defined pre-cast type.
            let u = a.as_val()?;
            Some(vals[u]?.cast(ty.elem))
        }
        InstKind::Horiz { op, a } => {
            let u = a.as_val()?;
            let av = vals[u]?;
            if av.elem() == Scalar::Bool {
                return None;
            }
            Some(match op {
                crate::instr::HorizOp::Add => av.reduce_add(),
                crate::instr::HorizOp::Min => av.reduce_min(),
                crate::instr::HorizOp::Max => av.reduce_max(),
            })
        }
        InstKind::Extract { a, lane } => {
            let u = a.as_val()?;
            Some(vals[u]?.extract(*lane as usize))
        }
        InstKind::Insert { vec, v: val, lane } => {
            let vecv = opv(vec, ty)?;
            let vv = opv(val, VType::scalar(ty.elem))?;
            Some(vecv.insert(*lane as usize, &vv))
        }
        InstKind::Phi { args } => {
            let mut merged: Option<Value> = None;
            for (_, a) in args {
                let av = opv(a, ty)?;
                match &merged {
                    None => merged = Some(av),
                    Some(m) if bits_eq(m, &av) => {}
                    Some(_) => return None,
                }
            }
            merged
        }
        InstKind::Undef => Some(Value::zero(ty)),
        _ => None,
    }
}

pub(crate) fn const_fold(f: &mut Ssa, c: &mut PassCounters) {
    // Forward dataflow to a fixpoint (loop-carried constants converge on
    // the second sweep).
    let mut vals: Vec<Option<Value>> = vec![None; f.insts.len()];
    let rpo = f.rpo.clone();
    loop {
        let mut changed = false;
        for &b in &rpo {
            for i in 0..f.blocks[b].insts.len() {
                let v = f.blocks[b].insts[i];
                if vals[v].is_some() {
                    continue;
                }
                if let Some(val) = const_eval(f, &vals, v) {
                    vals[v] = Some(val);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Fold: rewrite fully-known pure computations to `Mov` of an immediate.
    // Phis stay phis (lowering materializes them as edge copies), and a
    // `Select` with a known lane-uniform condition collapses to the taken
    // arm even when the arm itself is unknown.
    for b in 0..f.blocks.len() {
        for i in 0..f.blocks[b].insts.len() {
            let v = f.blocks[b].insts[i];
            let foldable = matches!(
                f.insts[v].kind,
                InstKind::Bin { .. }
                    | InstKind::Un { .. }
                    | InstKind::Mad { .. }
                    | InstKind::Select { .. }
                    | InstKind::Cast { .. }
                    | InstKind::Horiz { .. }
                    | InstKind::Extract { .. }
                    | InstKind::Insert { .. }
            );
            if !foldable {
                continue;
            }
            if let Some(val) = &vals[v] {
                if let Some(imm) = value_to_imm(val) {
                    f.insts[v].kind = InstKind::Mov { a: imm };
                    c.folded += 1;
                    continue;
                }
            }
            if let InstKind::Select {
                cond: VOp::Val(u),
                a,
                b: alt,
            } = f.insts[v].kind
            {
                if let Some(cv) = &vals[u] {
                    let w = cv.width() as usize;
                    let first = cv.lane_bool(0);
                    if (1..w).all(|i| cv.lane_bool(i) == first) {
                        f.insts[v].kind = InstKind::Mov {
                            a: if first { a } else { alt },
                        };
                        c.folded += 1;
                    }
                }
            }
        }
    }

    // Propagate: rewrite operand uses of known constants to immediates,
    // wherever the validator (and the trap rules) allow an immediate.
    let mut propagated = 0u64;
    for b in 0..f.blocks.len() {
        for i in 0..f.blocks[b].insts.len() {
            let v = f.blocks[b].insts[i];
            let mut kind = std::mem::replace(&mut f.insts[v].kind, InstKind::Barrier);
            propagate_into(&mut kind, &vals, f, &mut propagated);
            f.insts[v].kind = kind;
        }
    }
    c.propagated += propagated;
}

/// Constant value of operand `o`, as an immediate, if representable.
fn imm_of(o: &VOp, vals: &[Option<Value>]) -> Option<VOp> {
    match o {
        VOp::Val(u) => vals[*u].as_ref().and_then(value_to_imm),
        _ => None,
    }
}

fn propagate_into(kind: &mut InstKind, vals: &[Option<Value>], f: &Ssa, n: &mut u64) {
    let width_of = |o: &VOp| -> u8 {
        match o {
            VOp::Val(u) => f.insts[*u].ty.map(|t| t.width).unwrap_or(1),
            _ => 1,
        }
    };
    fn prop(o: &mut VOp, vals: &[Option<Value>], n: &mut u64) {
        if let Some(imm) = imm_of(o, vals) {
            *o = imm;
            *n += 1;
        }
    }
    // Indices must stay non-negative as immediates (the validator rejects
    // negative immediate indices; a negative *runtime* index is a trap the
    // original program keeps).
    fn prop_idx(o: &mut VOp, vals: &[Option<Value>], n: &mut u64) {
        if let Some(VOp::ImmI(x)) = imm_of(o, vals) {
            if x >= 0 {
                *o = VOp::ImmI(x);
                *n += 1;
            }
        }
    }
    match kind {
        InstKind::Bin { op, a, b } if op.is_compare() => {
            // A compare needs at least one register side.
            let a_imm = !matches!(a, VOp::Val(_));
            let b_imm = !matches!(b, VOp::Val(_));
            if !a_imm && !b_imm {
                let before = *n;
                prop(a, vals, n);
                if *n == before {
                    prop(b, vals, n);
                }
            } else if !a_imm {
                prop(a, vals, n);
            }
            // else: a already immediate, b must stay a register.
        }
        InstKind::Bin { a, b, .. } => {
            prop(a, vals, n);
            prop(b, vals, n);
        }
        InstKind::Un { a, .. } | InstKind::Mov { a } => prop(a, vals, n),
        InstKind::Mad { a, b, c } => {
            prop(a, vals, n);
            prop(b, vals, n);
            prop(c, vals, n);
        }
        InstKind::Select { a, b, .. } => {
            // Never the condition (no Bool immediates).
            prop(a, vals, n);
            prop(b, vals, n);
        }
        InstKind::Insert { vec, v, .. } => {
            prop(vec, vals, n);
            prop(v, vals, n);
        }
        InstKind::Load { idx, .. } => prop_idx(idx, vals, n),
        InstKind::VLoad { base, .. } => prop_idx(base, vals, n),
        InstKind::Store { idx, val, .. } => {
            // An immediate index means a width-1 store; only legal when the
            // index was scalar to begin with.
            if width_of(idx) == 1 {
                prop_idx(idx, vals, n);
            }
            prop(val, vals, n);
        }
        InstKind::VStore { base, .. } => {
            // `val` must stay a register (validator).
            prop_idx(base, vals, n);
        }
        InstKind::Atomic { idx, val, .. } => {
            prop_idx(idx, vals, n);
            prop(val, vals, n);
        }
        InstKind::Phi { args } => {
            for (_, a) in args {
                prop(a, vals, n);
            }
        }
        InstKind::LoopBounds { start, end, step } => {
            prop(start, vals, n);
            prop(end, vals, n);
            // `ImmI(0)` steps are rejected by the validator; a runtime zero
            // step simply iterates zero times, so keep it in a register.
            if let Some(VOp::ImmI(x)) = imm_of(step, vals) {
                if x != 0 {
                    *step = VOp::ImmI(x);
                    *n += 1;
                }
            }
        }
        // Horiz/Extract/VStore-val/Cast sources and If/Select conditions
        // must remain registers.
        InstKind::Cast { .. }
        | InstKind::Horiz { .. }
        | InstKind::Extract { .. }
        | InstKind::IfCond { .. }
        | InstKind::Query { .. }
        | InstKind::ScalarArg { .. }
        | InstKind::Barrier
        | InstKind::Undef
        | InstKind::ForIndex => {}
    }
}

// ---------------------------------------------------------------------------
// alg — algebraic simplification + copy propagation
// ---------------------------------------------------------------------------

pub(crate) fn algebraic(f: &mut Ssa, c: &mut PassCounters) {
    // Identity rewrites create new `Mov`s that the forwarding sweep must then
    // fold through (e.g. `neg(neg(x))` -> `Mov x` -> uses rewritten to `x`),
    // so iterate to a fixpoint. Each round strictly shrinks the set of
    // non-`Mov` rewritable instructions, so this terminates quickly.
    while algebraic_round(f, c) {}
}

fn algebraic_round(f: &mut Ssa, c: &mut PassCounters) -> bool {
    let mut changed = false;
    // Copy propagation: resolve `Mov` chains (exact-type only — a widening
    // broadcast Mov is a real operation) and trivial phis.
    let n = f.insts.len();
    let mut fwd: Vec<Option<ValId>> = vec![None; n];
    for (v, slot) in fwd.iter_mut().enumerate() {
        match &f.insts[v].kind {
            InstKind::Mov { a: VOp::Val(u) } if f.insts[v].ty == f.insts[*u].ty => {
                *slot = Some(*u);
            }
            InstKind::Phi { args } if !args.is_empty() => {
                let mut same: Option<ValId> = None;
                let mut trivial = true;
                for (_, a) in args {
                    match a {
                        VOp::Val(u) if *u == v => {}
                        VOp::Val(u) if same.is_none() || same == Some(*u) => same = Some(*u),
                        _ => {
                            trivial = false;
                            break;
                        }
                    }
                }
                if trivial {
                    if let Some(u) = same {
                        if f.insts[v].ty == f.insts[u].ty {
                            *slot = Some(u);
                        }
                    }
                }
            }
            _ => {}
        }
    }
    let resolve = |mut v: ValId| -> ValId {
        let mut hops = 0;
        while let Some(u) = fwd[v] {
            v = u;
            hops += 1;
            if hops > n {
                break; // defensive: mutually-trivial phi cycle
            }
        }
        v
    };
    for b in 0..f.blocks.len() {
        for i in 0..f.blocks[b].insts.len() {
            let v = f.blocks[b].insts[i];
            let mut kind = std::mem::replace(&mut f.insts[v].kind, InstKind::Barrier);
            for o in Ssa::operands_mut(&mut kind) {
                if let VOp::Val(u) = o {
                    let r = resolve(*u);
                    if r != *u {
                        *u = r;
                        changed = true;
                    }
                }
            }
            f.insts[v].kind = kind;
        }
    }

    // Identity rewrites.
    let same_vop = |a: &VOp, b: &VOp| -> bool {
        match (a, b) {
            (VOp::Val(x), VOp::Val(y)) => x == y,
            (VOp::ImmI(x), VOp::ImmI(y)) => x == y,
            (VOp::ImmF(x), VOp::ImmF(y)) => x.to_bits() == y.to_bits(),
            _ => false,
        }
    };
    let is_zero_i = |o: &VOp| matches!(o, VOp::ImmI(0));
    // `+0.0` only — `x - (+0.0) == x` exactly, `x - (-0.0)` is not.
    let is_pos_zero_f = |o: &VOp| {
        matches!(o, VOp::ImmI(0)) || matches!(o, VOp::ImmF(x) if x.to_bits() == 0.0f64.to_bits())
    };
    let is_one = |o: &VOp, float: bool| {
        matches!(o, VOp::ImmI(1)) || (float && matches!(o, VOp::ImmF(x) if *x == 1.0))
    };
    for v in 0..n {
        let ty = match f.insts[v].ty {
            Some(t) => t,
            None => continue,
        };
        let int = ty.elem.is_int();
        let float = ty.elem.is_float();
        let new_kind: Option<InstKind> = match &f.insts[v].kind {
            InstKind::Bin { op, a, b } if !op.is_compare() => {
                let mv = |o: &VOp| Some(InstKind::Mov { a: *o });
                let zero = || Some(InstKind::Mov { a: VOp::ImmI(0) });
                match op {
                    BinOp::Add if int && is_zero_i(b) => mv(a),
                    BinOp::Add if int && is_zero_i(a) => mv(b),
                    BinOp::Sub if int && is_zero_i(b) => mv(a),
                    BinOp::Sub if int && same_vop(a, b) => zero(),
                    BinOp::Sub if float && is_pos_zero_f(b) => mv(a),
                    BinOp::Mul if (int || float) && is_one(b, float) => mv(a),
                    BinOp::Mul if (int || float) && is_one(a, float) => mv(b),
                    BinOp::Mul if int && (is_zero_i(a) || is_zero_i(b)) => zero(),
                    BinOp::Div if (int || float) && is_one(b, float) => mv(a),
                    BinOp::Rem if int && is_one(b, false) => zero(),
                    BinOp::And if int && same_vop(a, b) => mv(a),
                    BinOp::And if int && (is_zero_i(a) || is_zero_i(b)) => zero(),
                    BinOp::Or if int && same_vop(a, b) => mv(a),
                    BinOp::Or if int && is_zero_i(b) => mv(a),
                    BinOp::Or if int && is_zero_i(a) => mv(b),
                    BinOp::Xor if int && same_vop(a, b) => zero(),
                    BinOp::Xor if int && is_zero_i(b) => mv(a),
                    BinOp::Xor if int && is_zero_i(a) => mv(b),
                    BinOp::Shl | BinOp::Shr if int && is_zero_i(b) => mv(a),
                    BinOp::Min | BinOp::Max if same_vop(a, b) => mv(a),
                    _ => None,
                }
            }
            InstKind::Mad { a, b, c } if int => {
                if is_zero_i(a) || is_zero_i(b) {
                    Some(InstKind::Mov { a: *c })
                } else if is_zero_i(c) {
                    Some(InstKind::Bin {
                        op: BinOp::Mul,
                        a: *a,
                        b: *b,
                    })
                } else if is_one(b, false) {
                    Some(InstKind::Bin {
                        op: BinOp::Add,
                        a: *a,
                        b: *c,
                    })
                } else if is_one(a, false) {
                    Some(InstKind::Bin {
                        op: BinOp::Add,
                        a: *b,
                        b: *c,
                    })
                } else {
                    None
                }
            }
            InstKind::Select { a, b, .. } if same_vop(a, b) => Some(InstKind::Mov { a: *a }),
            InstKind::Un { op: UnOp::Neg, a } => match a.as_val() {
                // --x == x exactly: ints wrap, floats flip the sign bit.
                Some(u) => match &f.insts[u].kind {
                    InstKind::Un {
                        op: UnOp::Neg,
                        a: inner,
                    } if f.insts[u].ty == Some(ty) => Some(InstKind::Mov { a: *inner }),
                    _ => None,
                },
                None => None,
            },
            InstKind::Un { op: UnOp::Abs, a } => match a.as_val() {
                Some(u) => match &f.insts[u].kind {
                    InstKind::Un { op: UnOp::Abs, .. } if f.insts[u].ty == Some(ty) => {
                        Some(InstKind::Mov { a: VOp::Val(u) })
                    }
                    _ => None,
                },
                None => None,
            },
            _ => None,
        };
        if let Some(k) = new_kind {
            f.insts[v].kind = k;
            c.simplified += 1;
            changed = true;
        }
    }
    changed
}

// ---------------------------------------------------------------------------
// sr — strength reduction
// ---------------------------------------------------------------------------

/// `Some(k)` when `o` is an integer immediate equal to `2^k`, `k >= 1`,
/// and `2^k` is exactly representable in `elem` (so the decoder's wrapping
/// materialization cannot change the divisor).
fn pow2_shift(o: &VOp, elem: Scalar) -> Option<i64> {
    let bits = (elem.bytes() * 8) as i64;
    match o {
        VOp::ImmI(x) if *x >= 2 && (x & (x - 1)) == 0 => {
            let k = x.trailing_zeros() as i64;
            (k < bits).then_some(k)
        }
        _ => None,
    }
}

pub(crate) fn strength_reduce(f: &mut Ssa, c: &mut PassCounters) {
    let uses = use_counts(f);
    for v in 0..f.insts.len() {
        let ty = match f.insts[v].ty {
            Some(t) => t,
            None => continue,
        };
        if !ty.elem.is_int() {
            continue;
        }
        let unsigned = matches!(ty.elem, Scalar::U32 | Scalar::U64);
        let new_kind: Option<InstKind> = match &f.insts[v].kind {
            // Wrapping multiply by 2^k is a shift for signed and unsigned.
            InstKind::Bin {
                op: BinOp::Mul,
                a,
                b,
            } => {
                if let Some(k) = pow2_shift(b, ty.elem) {
                    Some(InstKind::Bin {
                        op: BinOp::Shl,
                        a: *a,
                        b: VOp::ImmI(k),
                    })
                } else {
                    pow2_shift(a, ty.elem).map(|k| InstKind::Bin {
                        op: BinOp::Shl,
                        a: *b,
                        b: VOp::ImmI(k),
                    })
                }
            }
            // Unsigned-only: signed division rounds toward zero, an
            // arithmetic shift would round toward -inf.
            InstKind::Bin {
                op: BinOp::Div,
                a,
                b,
            } if unsigned => pow2_shift(b, ty.elem).map(|k| InstKind::Bin {
                op: BinOp::Shr,
                a: *a,
                b: VOp::ImmI(k),
            }),
            InstKind::Bin {
                op: BinOp::Rem,
                a,
                b,
            } if unsigned => pow2_shift(b, ty.elem).map(|k| InstKind::Bin {
                op: BinOp::And,
                a: *a,
                b: VOp::ImmI((1i64 << k) - 1),
            }),
            // Integer Mul feeding a single Add fuses into Mad (wrapping
            // multiply-then-add, bit-identical to the separate ops; float
            // Mad is fused-rounding and must never be formed this way).
            InstKind::Bin {
                op: BinOp::Add,
                a,
                b,
            } => {
                let try_fuse = |m: &VOp, other: &VOp| -> Option<InstKind> {
                    let u = m.as_val()?;
                    if uses[u] != 1 {
                        return None;
                    }
                    match &f.insts[u].kind {
                        InstKind::Bin {
                            op: BinOp::Mul,
                            a: ma,
                            b: mb,
                        } if f.insts[u].ty.map(|t| t.elem) == Some(ty.elem) => {
                            Some(InstKind::Mad {
                                a: *ma,
                                b: *mb,
                                c: *other,
                            })
                        }
                        _ => None,
                    }
                };
                try_fuse(a, b).or_else(|| try_fuse(b, a))
            }
            _ => None,
        };
        if let Some(k) = new_kind {
            f.insts[v].kind = k;
            c.reduced += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// cse — dominator-scoped global value numbering
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
enum OKey {
    V(ValId),
    F(u64),
    I(i64),
}

fn okey(o: &VOp) -> OKey {
    match o {
        VOp::Val(u) => OKey::V(*u),
        VOp::ImmF(x) => OKey::F(x.to_bits()),
        VOp::ImmI(x) => OKey::I(*x),
        VOp::Reg(_) => unreachable!("register operand after renaming"),
    }
}

type ExprKey = (u8, u32, Vec<OKey>, (u8, u8));

fn scalar_tag(s: Scalar) -> u8 {
    match s {
        Scalar::F32 => 0,
        Scalar::F64 => 1,
        Scalar::I32 => 2,
        Scalar::I64 => 3,
        Scalar::U32 => 4,
        Scalar::U64 => 5,
        Scalar::Bool => 6,
    }
}

fn builtin_tag(q: Builtin) -> u32 {
    match q {
        Builtin::GlobalId(d) => d as u32,
        Builtin::LocalId(d) => 16 + d as u32,
        Builtin::GroupId(d) => 32 + d as u32,
        Builtin::GlobalSize(d) => 48 + d as u32,
        Builtin::LocalSize(d) => 64 + d as u32,
        Builtin::NumGroups(d) => 80 + d as u32,
    }
}

/// Key for a pure, CSE-able instruction; `None` for everything else
/// (memory ops, `Mov` — copy-prop's job — and machinery).
fn expr_key(f: &Ssa, v: ValId) -> Option<ExprKey> {
    let inst = &f.insts[v];
    let ty = inst.ty?;
    let tyk = (scalar_tag(ty.elem), ty.width);
    match &inst.kind {
        InstKind::Bin { op, a, b } => {
            let mut ops = vec![okey(a), okey(b)];
            // Commutative canonicalization for exact-int operators only.
            let commutative_int = ty.elem.is_int()
                && matches!(
                    op,
                    BinOp::Add
                        | BinOp::Mul
                        | BinOp::And
                        | BinOp::Or
                        | BinOp::Xor
                        | BinOp::Min
                        | BinOp::Max
                );
            if commutative_int {
                ops.sort();
            }
            Some((1, *op as u32, ops, tyk))
        }
        InstKind::Un { op, a } => Some((2, *op as u32, vec![okey(a)], tyk)),
        InstKind::Mad { a, b, c } => Some((3, 0, vec![okey(a), okey(b), okey(c)], tyk)),
        InstKind::Select { cond, a, b } => Some((4, 0, vec![okey(cond), okey(a), okey(b)], tyk)),
        InstKind::Cast { a } => Some((5, 0, vec![okey(a)], tyk)),
        InstKind::Horiz { op, a } => Some((6, *op as u32, vec![okey(a)], tyk)),
        InstKind::Extract { a, lane } => Some((7, *lane as u32, vec![okey(a)], tyk)),
        InstKind::Insert { vec, v, lane } => Some((8, *lane as u32, vec![okey(vec), okey(v)], tyk)),
        InstKind::Query { q } => Some((9, builtin_tag(*q), vec![], tyk)),
        InstKind::ScalarArg { arg } => Some((10, arg.0, vec![], tyk)),
        _ => None,
    }
}

pub(crate) fn cse(f: &mut Ssa, c: &mut PassCounters) {
    let children = f.dom_children();
    let mut table: BTreeMap<ExprKey, Vec<ValId>> = BTreeMap::new();
    fn walk(
        f: &mut Ssa,
        b: BlockId,
        children: &[Vec<BlockId>],
        table: &mut BTreeMap<ExprKey, Vec<ValId>>,
        numbered: &mut u64,
    ) {
        let mut scoped: Vec<ExprKey> = Vec::new();
        for i in 0..f.blocks[b].insts.len() {
            let v = f.blocks[b].insts[i];
            let Some(key) = expr_key(f, v) else { continue };
            if let Some(existing) = table.get(&key).and_then(|s| s.last()) {
                f.insts[v].kind = InstKind::Mov {
                    a: VOp::Val(*existing),
                };
                *numbered += 1;
            } else {
                table.entry(key.clone()).or_default().push(v);
                scoped.push(key);
            }
        }
        for &ch in &children[b] {
            walk(f, ch, children, table, numbered);
        }
        for key in scoped.into_iter().rev() {
            table.get_mut(&key).expect("scoped key present").pop();
        }
    }
    let mut numbered = 0u64;
    walk(f, 0, &children, &mut table, &mut numbered);
    c.numbered += numbered;
}

// ---------------------------------------------------------------------------
// licm — loop-invariant code motion
// ---------------------------------------------------------------------------

fn blocks_in(shapes: &[Shape], out: &mut BTreeSet<BlockId>) {
    for s in shapes {
        match s {
            Shape::Seq(b) => {
                out.insert(*b);
            }
            Shape::If { then_s, els_s, .. } => {
                blocks_in(then_s, out);
                blocks_in(els_s, out);
            }
            Shape::For { header, body_s, .. } => {
                out.insert(*header);
                blocks_in(body_s, out);
            }
        }
    }
}

/// Pure, non-trapping, non-memory — safe to speculate in a preheader even
/// when the loop runs zero times or the defining path was conditional.
fn hoistable_kind(kind: &InstKind, elem_int: impl Fn(&VOp) -> bool) -> bool {
    match kind {
        // Integer div/rem can trap; hoisting would speculate the trap.
        InstKind::Bin {
            op: BinOp::Div, b, ..
        }
        | InstKind::Bin {
            op: BinOp::Rem, b, ..
        } => !elem_int(b),
        InstKind::Bin { .. }
        | InstKind::Un { .. }
        | InstKind::Mad { .. }
        | InstKind::Select { .. }
        | InstKind::Mov { .. }
        | InstKind::Cast { .. }
        | InstKind::Horiz { .. }
        | InstKind::Extract { .. }
        | InstKind::Insert { .. }
        | InstKind::Query { .. }
        | InstKind::ScalarArg { .. } => true,
        _ => false,
    }
}

pub(crate) fn licm(f: &mut Ssa, c: &mut PassCounters) {
    let shapes = f.shapes.clone();
    licm_shapes(f, &shapes, c);
}

fn licm_shapes(f: &mut Ssa, shapes: &[Shape], c: &mut PassCounters) {
    for s in shapes {
        match s {
            Shape::Seq(_) => {}
            Shape::If { then_s, els_s, .. } => {
                licm_shapes(f, then_s, c);
                licm_shapes(f, els_s, c);
            }
            Shape::For {
                bounds,
                header,
                body_s,
                ..
            } => {
                // Innermost loops first, so invariants bubble outward.
                licm_shapes(f, body_s, c);
                let mut lblocks = BTreeSet::new();
                lblocks.insert(*header);
                blocks_in(body_s, &mut lblocks);
                let pre = f.insts[*bounds].block;
                loop {
                    let mut moved = false;
                    for &b in lblocks.clone().iter() {
                        let list = f.blocks[b].insts.clone();
                        for v in list {
                            if f.insts[v].ty.is_none() {
                                continue;
                            }
                            let div_trap_guard = |o: &VOp| match f.insts[v].ty {
                                Some(t) => t.elem.is_int() && !matches!(o, VOp::ImmI(x) if *x != 0),
                                None => true,
                            };
                            if !hoistable_kind(&f.insts[v].kind, div_trap_guard) {
                                continue;
                            }
                            let invariant =
                                Ssa::operands(&f.insts[v].kind).iter().all(|o| match o {
                                    VOp::Val(u) => !lblocks.contains(&f.insts[*u].block),
                                    _ => true,
                                });
                            if !invariant {
                                continue;
                            }
                            // Move v into the preheader, before the bounds
                            // anchor (so bounds still evaluate last).
                            let pos = f.blocks[b]
                                .insts
                                .iter()
                                .position(|&x| x == v)
                                .expect("inst in its block");
                            f.blocks[b].insts.remove(pos);
                            let anchor = f.blocks[pre]
                                .insts
                                .iter()
                                .position(|&x| x == *bounds)
                                .expect("bounds anchor in preheader");
                            f.blocks[pre].insts.insert(anchor, v);
                            f.insts[v].block = pre;
                            c.hoisted += 1;
                            moved = true;
                        }
                    }
                    if !moved {
                        break;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// dse — dead-store elimination
// ---------------------------------------------------------------------------

pub(crate) fn dse(f: &mut Ssa, c: &mut PassCounters) {
    for b in 0..f.blocks.len() {
        // (buf, vstore?, index operand, width) → store awaiting overwrite.
        let mut last: BTreeMap<(u32, bool, OKey, u8), ValId> = BTreeMap::new();
        let mut dead: BTreeSet<ValId> = BTreeSet::new();
        for i in 0..f.blocks[b].insts.len() {
            let v = f.blocks[b].insts[i];
            match &f.insts[v].kind {
                InstKind::Store { buf, idx, .. } => {
                    let w = match idx {
                        VOp::Val(u) => f.insts[*u].ty.map(|t| t.width).unwrap_or(1),
                        _ => 1,
                    };
                    if let Some(prev) = last.insert((buf.0, false, okey(idx), w), v) {
                        dead.insert(prev);
                    }
                }
                InstKind::VStore { buf, base, val } => {
                    let w = match val {
                        VOp::Val(u) => f.insts[*u].ty.map(|t| t.width).unwrap_or(1),
                        _ => 1,
                    };
                    if let Some(prev) = last.insert((buf.0, true, okey(base), w), v) {
                        dead.insert(prev);
                    }
                }
                // Any read (or atomic, or phase boundary) may observe the
                // earlier store: forget everything.
                InstKind::Load { .. }
                | InstKind::VLoad { .. }
                | InstKind::Atomic { .. }
                | InstKind::Barrier => last.clear(),
                _ => {}
            }
        }
        if !dead.is_empty() {
            c.dead_stores += dead.len() as u64;
            f.blocks[b].insts.retain(|v| !dead.contains(v));
        }
    }
}

// ---------------------------------------------------------------------------
// dce — dead-code elimination
// ---------------------------------------------------------------------------

pub(crate) fn dce(f: &mut Ssa, c: &mut PassCounters) {
    let n = f.insts.len();
    let mut live = vec![false; n];
    let mut work: Vec<ValId> = Vec::new();
    let mark = |live: &mut Vec<bool>, work: &mut Vec<ValId>, u: ValId| {
        if !live[u] {
            live[u] = true;
            work.push(u);
        }
    };
    for blk in &f.blocks {
        for &v in &blk.insts {
            if Ssa::is_root(&f.insts[v].kind) {
                mark(&mut live, &mut work, v);
            }
        }
    }
    while let Some(v) = work.pop() {
        for o in Ssa::operands(&f.insts[v].kind) {
            if let VOp::Val(u) = o {
                mark(&mut live, &mut work, u);
            }
        }
    }
    let mut removed = 0u64;
    for blk in &mut f.blocks {
        let before = blk.insts.len();
        blk.insts.retain(|&v| live[v]);
        removed += (before - blk.insts.len()) as u64;
    }
    c.dead_code += removed;
}
