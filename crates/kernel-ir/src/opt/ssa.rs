//! SSA construction over the structured kernel IR, and lowering back.
//!
//! The structured body (`For`/`If` trees) is first flattened into a small
//! CFG of basic blocks whose instructions reference *original registers*.
//! Structured constructs get the classic shapes:
//!
//! ```text
//! If:   head ─→ then-entry … then-exit ─→ join
//!         └──→ else-entry … else-exit ──↗
//! For:  preheader ─→ header ─→ body-entry … latch ─→ (back to header)
//!                      └─────→ exit
//! ```
//!
//! Both arms of an `If` always get their own entry block (even when empty),
//! so the CFG has no critical edges and phi-argument copies always have a
//! dedicated predecessor block to land in. A `For` keeps the engines'
//! semantics exactly: its `(start, end, step)` operands are captured once in
//! the preheader ([`InstKind::LoopBounds`]), the loop variable is redefined
//! from the hidden counter at the top of every iteration
//! ([`InstKind::ForIndex`]), and the value the variable holds *after* the
//! loop — the pre-loop value for a zero-trip loop, the end-of-body value
//! otherwise — is exactly what the header phi for that register merges.
//!
//! Dominators are computed with the Cooper–Harvey–Kennedy iterative
//! algorithm, phis are placed at iterated dominance frontiers (the
//! `ssaconstructor` recipe), and renaming is the standard dominator-tree
//! walk with per-register stacks. A register read before any write becomes
//! an [`InstKind::Undef`] value, which lowers to a fresh never-written
//! register — the engines zero-initialize the register file, so this
//! reproduces the original read-of-zero exactly.
//!
//! Lowering assigns one fresh register per surviving value, emits phi moves
//! at predecessor exits with parallel-copy sequentialization (a cycle among
//! the moves is broken with a temporary), re-fuses single-use `Insert`
//! chains back into in-place read-modify-write form, and finally
//! [`compact_registers`] shrinks the register file with a liveness-interval
//! scan that mirrors `Program::register_footprint`.

use crate::instr::{ArgDecl, ArgIdx, AtomicOp, BinOp, Builtin, HorizOp, Op, Operand, Reg, UnOp};
use crate::program::Program;
use crate::types::VType;
use std::collections::BTreeMap;

pub(crate) type ValId = usize;
pub(crate) type BlockId = usize;

/// An SSA operand. `Reg` only appears between CFG construction and
/// renaming; every operand afterwards is a value or an immediate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum VOp {
    Val(ValId),
    Reg(Reg),
    ImmF(f64),
    ImmI(i64),
}

impl VOp {
    pub(crate) fn as_val(&self) -> Option<ValId> {
        match self {
            VOp::Val(v) => Some(*v),
            _ => None,
        }
    }
}

/// One SSA instruction. Value-producing kinds define the instruction's id.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum InstKind {
    Bin {
        op: BinOp,
        a: VOp,
        b: VOp,
    },
    Un {
        op: UnOp,
        a: VOp,
    },
    Mad {
        a: VOp,
        b: VOp,
        c: VOp,
    },
    Select {
        cond: VOp,
        a: VOp,
        b: VOp,
    },
    Mov {
        a: VOp,
    },
    Cast {
        a: VOp,
    },
    Horiz {
        op: HorizOp,
        a: VOp,
    },
    Extract {
        a: VOp,
        lane: u8,
    },
    /// Pure functional form of the RMW `Op::Insert`: a copy of `vec` with
    /// `lane` replaced by `v`.
    Insert {
        vec: VOp,
        v: VOp,
        lane: u8,
    },
    Query {
        q: Builtin,
    },
    /// Load of a by-value scalar argument — pure, no memory event.
    ScalarArg {
        arg: ArgIdx,
    },
    Load {
        buf: ArgIdx,
        idx: VOp,
    },
    VLoad {
        buf: ArgIdx,
        base: VOp,
    },
    Store {
        buf: ArgIdx,
        idx: VOp,
        val: VOp,
    },
    VStore {
        buf: ArgIdx,
        base: VOp,
        val: VOp,
    },
    Atomic {
        op: AtomicOp,
        buf: ArgIdx,
        idx: VOp,
        val: VOp,
        has_old: bool,
    },
    Barrier,
    /// One `(predecessor block, value)` argument per predecessor.
    Phi {
        args: Vec<(BlockId, VOp)>,
    },
    /// Value of a register read before any write (reads zero, see module
    /// docs).
    Undef,
    /// The `For` counter's write into the loop variable at the top of each
    /// iteration.
    ForIndex,
    /// Anchor pinning an `If` condition value at the end of its head block.
    IfCond {
        cond: VOp,
    },
    /// Anchor pinning a `For`'s `(start, end, step)` values in the
    /// preheader — evaluated once at loop entry, exactly like the engines.
    LoopBounds {
        start: VOp,
        end: VOp,
        step: VOp,
    },
}

#[derive(Clone, Debug)]
pub(crate) struct Inst {
    pub kind: InstKind,
    /// Result type; `None` for non-value-producing instructions.
    pub ty: Option<VType>,
    pub block: BlockId,
    /// Original register defined by this instruction (construction/rename
    /// bookkeeping; phis are created per original register).
    pub orig: Option<Reg>,
}

#[derive(Clone, Debug, Default)]
pub(crate) struct Block {
    pub insts: Vec<ValId>,
    pub preds: Vec<BlockId>,
    pub succs: Vec<BlockId>,
}

/// Structured-control-flow skeleton remembered from construction, used to
/// regenerate `For`/`If` ops at lowering.
#[derive(Clone, Debug)]
pub(crate) enum Shape {
    /// Straight-line code of one basic block.
    Seq(BlockId),
    If {
        cond: ValId,
        then_s: Vec<Shape>,
        then_exit: BlockId,
        els_s: Vec<Shape>,
        els_exit: BlockId,
        join: BlockId,
    },
    For {
        bounds: ValId,
        header: BlockId,
        var: ValId,
        body_s: Vec<Shape>,
        latch: BlockId,
    },
}

/// A kernel program in SSA form.
pub(crate) struct Ssa {
    pub name: String,
    pub args: Vec<ArgDecl>,
    pub hints: crate::instr::Hints,
    pub insts: Vec<Inst>,
    pub blocks: Vec<Block>,
    pub shapes: Vec<Shape>,
    /// Reverse postorder over the CFG (entry first).
    pub rpo: Vec<BlockId>,
    /// Immediate dominator per block (entry maps to itself).
    pub idom: Vec<BlockId>,
}

impl Ssa {
    /// Copies of an instruction kind's operands, including phi arguments.
    pub fn operands(kind: &InstKind) -> Vec<VOp> {
        let mut out = Vec::new();
        Self::visit_operands(kind, &mut |o| out.push(*o));
        out
    }

    fn visit_operands(kind: &InstKind, f: &mut dyn FnMut(&VOp)) {
        match kind {
            InstKind::Bin { a, b, .. } => {
                f(a);
                f(b);
            }
            InstKind::Un { a, .. }
            | InstKind::Mov { a }
            | InstKind::Cast { a }
            | InstKind::Horiz { a, .. }
            | InstKind::Extract { a, .. } => f(a),
            InstKind::Mad { a, b, c } => {
                f(a);
                f(b);
                f(c);
            }
            InstKind::Select { cond, a, b } => {
                f(cond);
                f(a);
                f(b);
            }
            InstKind::Insert { vec, v, .. } => {
                f(vec);
                f(v);
            }
            InstKind::Load { idx, .. } => f(idx),
            InstKind::VLoad { base, .. } => f(base),
            InstKind::Store { idx, val, .. } => {
                f(idx);
                f(val);
            }
            InstKind::VStore { base, val, .. } => {
                f(base);
                f(val);
            }
            InstKind::Atomic { idx, val, .. } => {
                f(idx);
                f(val);
            }
            InstKind::Phi { args } => {
                for (_, a) in args {
                    f(a);
                }
            }
            InstKind::IfCond { cond } => f(cond),
            InstKind::LoopBounds { start, end, step } => {
                f(start);
                f(end);
                f(step);
            }
            InstKind::Query { .. }
            | InstKind::ScalarArg { .. }
            | InstKind::Barrier
            | InstKind::Undef
            | InstKind::ForIndex => {}
        }
    }

    /// Mutable references to an instruction kind's operands, including phi
    /// arguments.
    pub fn operands_mut(kind: &mut InstKind) -> Vec<&mut VOp> {
        match kind {
            InstKind::Bin { a, b, .. } => vec![a, b],
            InstKind::Un { a, .. }
            | InstKind::Mov { a }
            | InstKind::Cast { a }
            | InstKind::Horiz { a, .. }
            | InstKind::Extract { a, .. } => vec![a],
            InstKind::Mad { a, b, c } => vec![a, b, c],
            InstKind::Select { cond, a, b } => vec![cond, a, b],
            InstKind::Insert { vec, v, .. } => vec![vec, v],
            InstKind::Load { idx, .. } => vec![idx],
            InstKind::VLoad { base, .. } => vec![base],
            InstKind::Store { idx, val, .. } => vec![idx, val],
            InstKind::VStore { base, val, .. } => vec![base, val],
            InstKind::Atomic { idx, val, .. } => vec![idx, val],
            InstKind::Phi { args } => args.iter_mut().map(|(_, a)| a).collect(),
            InstKind::IfCond { cond } => vec![cond],
            InstKind::LoopBounds { start, end, step } => vec![start, end, step],
            InstKind::Query { .. }
            | InstKind::ScalarArg { .. }
            | InstKind::Barrier
            | InstKind::Undef
            | InstKind::ForIndex => vec![],
        }
    }

    /// Whether `kind` has an observable effect (memory write, barrier) or
    /// is structural machinery the lowering needs — the roots dead-code
    /// elimination must keep.
    pub fn is_root(kind: &InstKind) -> bool {
        matches!(
            kind,
            InstKind::Store { .. }
                | InstKind::VStore { .. }
                | InstKind::Atomic { .. }
                | InstKind::Barrier
                | InstKind::IfCond { .. }
                | InstKind::LoopBounds { .. }
                | InstKind::ForIndex
        )
    }

    /// Dominator-tree children per block, in block-id order.
    pub fn dom_children(&self) -> Vec<Vec<BlockId>> {
        let mut ch = vec![Vec::new(); self.blocks.len()];
        for b in 1..self.blocks.len() {
            ch[self.idom[b]].push(b);
        }
        ch
    }

    /// Build SSA form for `p` (which must validate).
    pub fn build(p: &Program) -> Ssa {
        let mut cx = BuildCtx {
            prog: p,
            insts: Vec::new(),
            blocks: vec![Block::default()],
            cur: 0,
            defs: BTreeMap::new(),
        };
        let mut shapes = Vec::new();
        cx.level(&p.body, &mut shapes);
        shapes.push(Shape::Seq(cx.cur));

        let rpo = reverse_postorder(&cx.blocks);
        let idom = idoms(&cx.blocks, &rpo);
        let df = dominance_frontiers(&cx.blocks, &idom);

        let mut ssa = Ssa {
            name: p.name.clone(),
            args: p.args.clone(),
            hints: p.hints,
            insts: cx.insts,
            blocks: cx.blocks,
            shapes,
            rpo,
            idom,
        };
        ssa.place_phis(p, &cx.defs, &df);
        ssa.rename(&cx.defs, &p.regs);
        ssa
    }

    /// Insert phis for every multiply-defined register at the iterated
    /// dominance frontier of its definition blocks.
    fn place_phis(&mut self, p: &Program, defs: &BTreeMap<Reg, Vec<BlockId>>, df: &[Vec<BlockId>]) {
        for (&reg, def_blocks) in defs {
            let mut has_phi = vec![false; self.blocks.len()];
            let mut in_work = vec![false; self.blocks.len()];
            let mut work: Vec<BlockId> = Vec::new();
            for &b in def_blocks {
                if !in_work[b] {
                    in_work[b] = true;
                    work.push(b);
                }
            }
            while let Some(b) = work.pop() {
                for &d in &df[b] {
                    if !has_phi[d] {
                        has_phi[d] = true;
                        let v = self.insts.len();
                        self.insts.push(Inst {
                            kind: InstKind::Phi { args: Vec::new() },
                            ty: Some(p.reg_ty(reg)),
                            block: d,
                            orig: Some(reg),
                        });
                        self.blocks[d].insts.insert(0, v);
                        if !in_work[d] {
                            in_work[d] = true;
                            work.push(d);
                        }
                    }
                }
            }
        }
    }

    /// Dominator-tree renaming with per-register value stacks.
    fn rename(&mut self, defs: &BTreeMap<Reg, Vec<BlockId>>, reg_tys: &[VType]) {
        let children = self.dom_children();
        let mut stacks: BTreeMap<Reg, Vec<ValId>> = BTreeMap::new();
        for &r in defs.keys() {
            stacks.insert(r, Vec::new());
        }
        let mut undefs: BTreeMap<Reg, ValId> = BTreeMap::new();
        self.rename_block(0, &children, reg_tys, &mut stacks, &mut undefs);
        #[cfg(debug_assertions)]
        for inst in &self.insts {
            for o in Self::operands(&inst.kind) {
                debug_assert!(
                    !matches!(o, VOp::Reg(_)),
                    "unrenamed register operand in {:?}",
                    inst.kind
                );
            }
        }
    }

    fn lookup(
        &mut self,
        r: Reg,
        ty: VType,
        stacks: &BTreeMap<Reg, Vec<ValId>>,
        undefs: &mut BTreeMap<Reg, ValId>,
    ) -> ValId {
        if let Some(&v) = stacks.get(&r).and_then(|s| s.last()) {
            return v;
        }
        *undefs.entry(r).or_insert_with(|| {
            let v = self.insts.len();
            self.insts.push(Inst {
                kind: InstKind::Undef,
                ty: Some(ty),
                block: 0,
                orig: None,
            });
            self.blocks[0].insts.push(v);
            v
        })
    }

    fn rename_block(
        &mut self,
        b: BlockId,
        children: &[Vec<BlockId>],
        reg_tys: &[VType],
        stacks: &mut BTreeMap<Reg, Vec<ValId>>,
        undefs: &mut BTreeMap<Reg, ValId>,
    ) {
        let mut pushed: Vec<Reg> = Vec::new();
        for i in 0..self.blocks[b].insts.len() {
            let v = self.blocks[b].insts[i];
            if matches!(self.insts[v].kind, InstKind::Phi { .. }) {
                let r = self.insts[v].orig.expect("phi has a register");
                stacks.entry(r).or_default().push(v);
                pushed.push(r);
                continue;
            }
            let mut kind = std::mem::replace(&mut self.insts[v].kind, InstKind::Barrier);
            for o in Self::operands_mut(&mut kind) {
                if let VOp::Reg(r) = *o {
                    let val = self.lookup(r, reg_tys[r.0 as usize], stacks, undefs);
                    *o = VOp::Val(val);
                }
            }
            self.insts[v].kind = kind;
            if let Some(r) = self.insts[v].orig {
                stacks.entry(r).or_default().push(v);
                pushed.push(r);
            }
        }
        for si in 0..self.blocks[b].succs.len() {
            let s = self.blocks[b].succs[si];
            for i in 0..self.blocks[s].insts.len() {
                let v = self.blocks[s].insts[i];
                let (r, ty) = match (&self.insts[v].kind, self.insts[v].orig, self.insts[v].ty) {
                    (InstKind::Phi { .. }, Some(r), Some(ty)) => (r, ty),
                    (InstKind::Phi { .. }, _, _) => unreachable!("phi without reg/ty"),
                    _ => break,
                };
                let val = self.lookup(r, ty, stacks, undefs);
                if let InstKind::Phi { args } = &mut self.insts[v].kind {
                    args.push((b, VOp::Val(val)));
                }
            }
        }
        for &c in &children[b] {
            self.rename_block(c, children, reg_tys, stacks, undefs);
        }
        for r in pushed.into_iter().rev() {
            stacks.get_mut(&r).expect("stack exists").pop();
        }
    }
}

/// Reverse postorder over `blocks` from the entry (block 0).
fn reverse_postorder(blocks: &[Block]) -> Vec<BlockId> {
    let mut seen = vec![false; blocks.len()];
    let mut post = Vec::with_capacity(blocks.len());
    // Iterative DFS with an explicit successor cursor.
    let mut stack: Vec<(BlockId, usize)> = vec![(0, 0)];
    seen[0] = true;
    while let Some(&(b, next)) = stack.last() {
        if next < blocks[b].succs.len() {
            stack.last_mut().expect("nonempty").1 += 1;
            let s = blocks[b].succs[next];
            if !seen[s] {
                seen[s] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Cooper–Harvey–Kennedy iterative immediate dominators.
fn idoms(blocks: &[Block], rpo: &[BlockId]) -> Vec<BlockId> {
    let nb = blocks.len();
    let mut rpo_num = vec![usize::MAX; nb];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_num[b] = i;
    }
    let mut idom = vec![usize::MAX; nb];
    idom[0] = 0;
    let intersect = |idom: &[usize], rpo_num: &[usize], mut a: usize, mut b: usize| {
        while a != b {
            while rpo_num[a] > rpo_num[b] {
                a = idom[a];
            }
            while rpo_num[b] > rpo_num[a] {
                b = idom[b];
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom = usize::MAX;
            for &p in &blocks[b].preds {
                if idom[p] == usize::MAX {
                    continue;
                }
                new_idom = if new_idom == usize::MAX {
                    p
                } else {
                    intersect(&idom, &rpo_num, p, new_idom)
                };
            }
            debug_assert!(new_idom != usize::MAX, "unreachable block {b}");
            if idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

/// Cooper's dominance-frontier computation.
fn dominance_frontiers(blocks: &[Block], idom: &[BlockId]) -> Vec<Vec<BlockId>> {
    let mut df = vec![Vec::new(); blocks.len()];
    for (b, blk) in blocks.iter().enumerate() {
        if blk.preds.len() < 2 {
            continue;
        }
        for &p in &blk.preds {
            let mut runner = p;
            while runner != idom[b] {
                if !df[runner].contains(&b) {
                    df[runner].push(b);
                }
                runner = idom[runner];
            }
        }
    }
    df
}

struct BuildCtx<'p> {
    prog: &'p Program,
    insts: Vec<Inst>,
    blocks: Vec<Block>,
    cur: BlockId,
    defs: BTreeMap<Reg, Vec<BlockId>>,
}

impl BuildCtx<'_> {
    fn vop(o: &Operand) -> VOp {
        match o {
            Operand::Reg(r) => VOp::Reg(*r),
            Operand::ImmF(x) => VOp::ImmF(*x),
            Operand::ImmI(x) => VOp::ImmI(*x),
        }
    }

    fn push(&mut self, kind: InstKind, ty: Option<VType>, orig: Option<Reg>) -> ValId {
        let v = self.insts.len();
        self.insts.push(Inst {
            kind,
            ty,
            block: self.cur,
            orig,
        });
        self.blocks[self.cur].insts.push(v);
        if let Some(r) = orig {
            self.defs.entry(r).or_default().push(self.cur);
        }
        v
    }

    fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, a: BlockId, b: BlockId) {
        self.blocks[a].succs.push(b);
        self.blocks[b].preds.push(a);
    }

    fn level(&mut self, ops: &[Op], shapes: &mut Vec<Shape>) {
        for op in ops {
            match op {
                Op::If { cond, then, els } => {
                    let cond_v = self.push(
                        InstKind::IfCond {
                            cond: Self::vop(cond),
                        },
                        None,
                        None,
                    );
                    let head = self.cur;
                    shapes.push(Shape::Seq(head));
                    let then_entry = self.new_block();
                    self.edge(head, then_entry);
                    self.cur = then_entry;
                    let mut then_s = Vec::new();
                    self.level(then, &mut then_s);
                    then_s.push(Shape::Seq(self.cur));
                    let then_exit = self.cur;
                    let els_entry = self.new_block();
                    self.edge(head, els_entry);
                    self.cur = els_entry;
                    let mut els_s = Vec::new();
                    self.level(els, &mut els_s);
                    els_s.push(Shape::Seq(self.cur));
                    let els_exit = self.cur;
                    let join = self.new_block();
                    self.edge(then_exit, join);
                    self.edge(els_exit, join);
                    self.cur = join;
                    shapes.push(Shape::If {
                        cond: cond_v,
                        then_s,
                        then_exit,
                        els_s,
                        els_exit,
                        join,
                    });
                }
                Op::For {
                    var,
                    start,
                    end,
                    step,
                    body,
                } => {
                    let bounds = self.push(
                        InstKind::LoopBounds {
                            start: Self::vop(start),
                            end: Self::vop(end),
                            step: Self::vop(step),
                        },
                        None,
                        None,
                    );
                    let pre = self.cur;
                    shapes.push(Shape::Seq(pre));
                    let header = self.new_block();
                    self.edge(pre, header);
                    let body_entry = self.new_block();
                    self.edge(header, body_entry);
                    self.cur = body_entry;
                    let var_v =
                        self.push(InstKind::ForIndex, Some(self.prog.reg_ty(*var)), Some(*var));
                    let mut body_s = Vec::new();
                    self.level(body, &mut body_s);
                    body_s.push(Shape::Seq(self.cur));
                    let latch = self.cur;
                    self.edge(latch, header);
                    let exit = self.new_block();
                    self.edge(header, exit);
                    self.cur = exit;
                    shapes.push(Shape::For {
                        bounds,
                        header,
                        var: var_v,
                        body_s,
                        latch,
                    });
                }
                simple => self.lift(simple, shapes),
            }
        }
    }

    fn lift(&mut self, op: &Op, _shapes: &mut [Shape]) {
        let ty = |cx: &Self, r: &Reg| Some(cx.prog.reg_ty(*r));
        match op {
            Op::Bin { dst, op, a, b } => {
                self.push(
                    InstKind::Bin {
                        op: *op,
                        a: Self::vop(a),
                        b: Self::vop(b),
                    },
                    ty(self, dst),
                    Some(*dst),
                );
            }
            Op::Un { dst, op, a } => {
                self.push(
                    InstKind::Un {
                        op: *op,
                        a: Self::vop(a),
                    },
                    ty(self, dst),
                    Some(*dst),
                );
            }
            Op::Mad { dst, a, b, c } => {
                self.push(
                    InstKind::Mad {
                        a: Self::vop(a),
                        b: Self::vop(b),
                        c: Self::vop(c),
                    },
                    ty(self, dst),
                    Some(*dst),
                );
            }
            Op::Select { dst, cond, a, b } => {
                self.push(
                    InstKind::Select {
                        cond: Self::vop(cond),
                        a: Self::vop(a),
                        b: Self::vop(b),
                    },
                    ty(self, dst),
                    Some(*dst),
                );
            }
            Op::Mov { dst, a } => {
                self.push(InstKind::Mov { a: Self::vop(a) }, ty(self, dst), Some(*dst));
            }
            Op::Cast { dst, a } => {
                self.push(
                    InstKind::Cast { a: Self::vop(a) },
                    ty(self, dst),
                    Some(*dst),
                );
            }
            Op::Horiz { dst, op, a } => {
                self.push(
                    InstKind::Horiz {
                        op: *op,
                        a: Self::vop(a),
                    },
                    ty(self, dst),
                    Some(*dst),
                );
            }
            Op::Extract { dst, a, lane } => {
                self.push(
                    InstKind::Extract {
                        a: Self::vop(a),
                        lane: *lane,
                    },
                    ty(self, dst),
                    Some(*dst),
                );
            }
            Op::Insert { dst, v, lane } => {
                self.push(
                    InstKind::Insert {
                        vec: VOp::Reg(*dst),
                        v: Self::vop(v),
                        lane: *lane,
                    },
                    ty(self, dst),
                    Some(*dst),
                );
            }
            Op::Query { dst, q } => {
                self.push(InstKind::Query { q: *q }, ty(self, dst), Some(*dst));
            }
            Op::Load { dst, buf, idx } => {
                if matches!(
                    self.prog.args.get(buf.0 as usize),
                    Some(ArgDecl::Scalar { .. })
                ) {
                    self.push(InstKind::ScalarArg { arg: *buf }, ty(self, dst), Some(*dst));
                } else {
                    self.push(
                        InstKind::Load {
                            buf: *buf,
                            idx: Self::vop(idx),
                        },
                        ty(self, dst),
                        Some(*dst),
                    );
                }
            }
            Op::VLoad { dst, buf, base } => {
                self.push(
                    InstKind::VLoad {
                        buf: *buf,
                        base: Self::vop(base),
                    },
                    ty(self, dst),
                    Some(*dst),
                );
            }
            Op::Store { buf, idx, val } => {
                self.push(
                    InstKind::Store {
                        buf: *buf,
                        idx: Self::vop(idx),
                        val: Self::vop(val),
                    },
                    None,
                    None,
                );
            }
            Op::VStore { buf, base, val } => {
                self.push(
                    InstKind::VStore {
                        buf: *buf,
                        base: Self::vop(base),
                        val: Self::vop(val),
                    },
                    None,
                    None,
                );
            }
            Op::Atomic {
                op,
                buf,
                idx,
                val,
                old,
            } => {
                self.push(
                    InstKind::Atomic {
                        op: *op,
                        buf: *buf,
                        idx: Self::vop(idx),
                        val: Self::vop(val),
                        has_old: old.is_some(),
                    },
                    old.map(|o| self.prog.reg_ty(o)),
                    *old,
                );
            }
            Op::Barrier => {
                self.push(InstKind::Barrier, None, None);
            }
            Op::For { .. } | Op::If { .. } => unreachable!("handled in level()"),
        }
    }
}

// ---------------------------------------------------------------------------
// Rendering (the `kernel-ir::display` SSA form)
// ---------------------------------------------------------------------------

fn vop_text(o: &VOp) -> String {
    match o {
        VOp::Val(v) => format!("v{v}"),
        VOp::Reg(r) => format!("r{}", r.0),
        VOp::ImmF(x) => format!("{x:?}"),
        VOp::ImmI(x) => format!("{x}"),
    }
}

fn ty_text(ty: VType) -> String {
    if ty.width == 1 {
        ty.elem.name().to_string()
    } else {
        format!("{}{}", ty.elem.name(), ty.width)
    }
}

impl Ssa {
    fn inst_text(&self, v: ValId) -> String {
        let head = match self.insts[v].ty {
            Some(ty) => format!("v{v}:{} = ", ty_text(ty)),
            None => String::new(),
        };
        let body = match &self.insts[v].kind {
            InstKind::Bin { op, a, b } => {
                format!("{op:?} {}, {}", vop_text(a), vop_text(b))
            }
            InstKind::Un { op, a } => format!("{op:?} {}", vop_text(a)),
            InstKind::Mad { a, b, c } => {
                format!("mad {}, {}, {}", vop_text(a), vop_text(b), vop_text(c))
            }
            InstKind::Select { cond, a, b } => format!(
                "select {}, {}, {}",
                vop_text(cond),
                vop_text(a),
                vop_text(b)
            ),
            InstKind::Mov { a } => format!("mov {}", vop_text(a)),
            InstKind::Cast { a } => format!("cast {}", vop_text(a)),
            InstKind::Horiz { op, a } => format!("horiz.{op:?} {}", vop_text(a)),
            InstKind::Extract { a, lane } => format!("extract {}[{lane}]", vop_text(a)),
            InstKind::Insert { vec, v, lane } => {
                format!("insert {}[{lane}] <- {}", vop_text(vec), vop_text(v))
            }
            InstKind::Query { q } => format!("query {q:?}"),
            InstKind::ScalarArg { arg } => format!("scalar_arg a{}", arg.0),
            InstKind::Load { buf, idx } => format!("load a{}[{}]", buf.0, vop_text(idx)),
            InstKind::VLoad { buf, base } => format!("vload a{}[{}..]", buf.0, vop_text(base)),
            InstKind::Store { buf, idx, val } => {
                format!("store a{}[{}] <- {}", buf.0, vop_text(idx), vop_text(val))
            }
            InstKind::VStore { buf, base, val } => {
                format!(
                    "vstore a{}[{}..] <- {}",
                    buf.0,
                    vop_text(base),
                    vop_text(val)
                )
            }
            InstKind::Atomic {
                op,
                buf,
                idx,
                val,
                has_old,
            } => format!(
                "atomic.{op:?} a{}[{}], {}{}",
                buf.0,
                vop_text(idx),
                vop_text(val),
                if *has_old { " (old)" } else { "" }
            ),
            InstKind::Barrier => "barrier".to_string(),
            InstKind::Phi { args } => {
                let parts: Vec<String> = args
                    .iter()
                    .map(|(p, a)| format!("[bb{p}: {}]", vop_text(a)))
                    .collect();
                format!("phi {}", parts.join(", "))
            }
            InstKind::Undef => "undef".to_string(),
            InstKind::ForIndex => "for_index".to_string(),
            InstKind::IfCond { cond } => format!("if_cond {}", vop_text(cond)),
            InstKind::LoopBounds { start, end, step } => format!(
                "loop_bounds {}, {}, {}",
                vop_text(start),
                vop_text(end),
                vop_text(step)
            ),
        };
        format!("{head}{body}")
    }
}

impl std::fmt::Display for Ssa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "ssa kernel \"{}\" ({} blocks)",
            self.name,
            self.blocks.len()
        )?;
        for (b, blk) in self.blocks.iter().enumerate() {
            let preds = if blk.preds.is_empty() {
                "entry".to_string()
            } else {
                blk.preds
                    .iter()
                    .map(|p| format!("bb{p}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            writeln!(f, "bb{b}:  ; preds: {preds}")?;
            for &v in &blk.insts {
                writeln!(f, "  {}", self.inst_text(v))?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

impl Ssa {
    /// Lower back to the structured register IR. Dead phis are pruned;
    /// every surviving value gets a fresh register; single-use `Insert`
    /// sources coalesce back into in-place read-modify-write form.
    pub fn lower(&mut self) -> Program {
        self.prune_dead_phis();

        // Use counts over the surviving instructions (phi args included).
        let mut uses = vec![0usize; self.insts.len()];
        for blk in &self.blocks {
            for &v in &blk.insts {
                for o in Self::operands(&self.insts[v].kind) {
                    if let VOp::Val(u) = o {
                        uses[u] += 1;
                    }
                }
            }
        }

        // Register assignment: one fresh register per value, in block/inst
        // order (defs always precede uses in that order — dominators are
        // created before the blocks they dominate).
        let mut regs: Vec<VType> = Vec::new();
        let mut reg_of: Vec<Option<Reg>> = vec![None; self.insts.len()];
        for b in 0..self.blocks.len() {
            for i in 0..self.blocks[b].insts.len() {
                let v = self.blocks[b].insts[i];
                let Some(ty) = self.insts[v].ty else { continue };
                if let InstKind::Insert {
                    vec: VOp::Val(s), ..
                } = self.insts[v].kind
                {
                    // Re-fuse into RMW form when the copied vector dies
                    // here: write the source's register in place. Only
                    // within one block — a source defined outside a loop
                    // body would otherwise be clobbered on iteration 1 and
                    // re-read already-modified on iteration 2.
                    if uses[s] == 1
                        && self.insts[s].block == self.insts[v].block
                        && !matches!(self.insts[s].kind, InstKind::Undef)
                        && reg_of[s].is_some()
                    {
                        reg_of[v] = reg_of[s];
                        continue;
                    }
                }
                reg_of[v] = Some(Reg(regs.len() as u32));
                regs.push(ty);
            }
        }

        let mut lo = Lowering {
            ssa: self,
            reg_of,
            regs,
        };
        let mut body = Vec::new();
        lo.emit_shapes(&self.shapes, &mut body);
        Program {
            name: self.name.clone(),
            args: self.args.clone(),
            regs: lo.regs,
            body,
            hints: self.hints,
        }
    }

    /// Drop phis no surviving instruction (transitively) uses. Non-phi
    /// instructions are kept even when dead — removing those is `dce`'s
    /// job, so per-pass instruction counts stay honest.
    fn prune_dead_phis(&mut self) {
        let mut live = vec![false; self.insts.len()];
        let mut work: Vec<ValId> = Vec::new();
        for blk in &self.blocks {
            for &v in &blk.insts {
                if matches!(self.insts[v].kind, InstKind::Phi { .. }) {
                    continue;
                }
                for o in Self::operands(&self.insts[v].kind) {
                    if let VOp::Val(u) = o {
                        if matches!(self.insts[u].kind, InstKind::Phi { .. }) && !live[u] {
                            live[u] = true;
                            work.push(u);
                        }
                    }
                }
            }
        }
        while let Some(p) = work.pop() {
            for o in Self::operands(&self.insts[p].kind) {
                if let VOp::Val(u) = o {
                    if matches!(self.insts[u].kind, InstKind::Phi { .. }) && !live[u] {
                        live[u] = true;
                        work.push(u);
                    }
                }
            }
        }
        for blk in &mut self.blocks {
            blk.insts
                .retain(|&v| live[v] || !matches!(self.insts[v].kind, InstKind::Phi { .. }));
        }
    }
}

struct Lowering<'s> {
    ssa: &'s Ssa,
    reg_of: Vec<Option<Reg>>,
    regs: Vec<VType>,
}

impl Lowering<'_> {
    fn reg(&self, v: ValId) -> Reg {
        self.reg_of[v].expect("value has a register")
    }

    fn opnd(&self, o: &VOp) -> Operand {
        match o {
            VOp::Val(v) => Operand::Reg(self.reg(*v)),
            VOp::ImmF(x) => Operand::ImmF(*x),
            VOp::ImmI(x) => Operand::ImmI(*x),
            VOp::Reg(_) => unreachable!("register operand survived renaming"),
        }
    }

    fn emit_shapes(&mut self, shapes: &[Shape], out: &mut Vec<Op>) {
        for s in shapes {
            match s {
                Shape::Seq(b) => self.emit_block(*b, out),
                Shape::If {
                    cond,
                    then_s,
                    then_exit,
                    els_s,
                    els_exit,
                    join,
                } => {
                    let cond_vop = match &self.ssa.insts[*cond].kind {
                        InstKind::IfCond { cond } => *cond,
                        other => unreachable!("if shape anchored to {other:?}"),
                    };
                    let mut then = Vec::new();
                    self.emit_shapes(then_s, &mut then);
                    then.extend(self.phi_copies(*then_exit, *join));
                    let mut els = Vec::new();
                    self.emit_shapes(els_s, &mut els);
                    els.extend(self.phi_copies(*els_exit, *join));
                    out.push(Op::If {
                        cond: self.opnd(&cond_vop),
                        then,
                        els,
                    });
                }
                Shape::For {
                    bounds,
                    header,
                    var,
                    body_s,
                    latch,
                } => {
                    let (start, end, step) = match &self.ssa.insts[*bounds].kind {
                        InstKind::LoopBounds { start, end, step } => (*start, *end, *step),
                        other => unreachable!("for shape anchored to {other:?}"),
                    };
                    let pre = self.ssa.insts[*bounds].block;
                    out.extend(self.phi_copies(pre, *header));
                    let mut body = Vec::new();
                    self.emit_shapes(body_s, &mut body);
                    body.extend(self.phi_copies(*latch, *header));
                    out.push(Op::For {
                        var: self.reg(*var),
                        start: self.opnd(&start),
                        end: self.opnd(&end),
                        step: self.opnd(&step),
                        body,
                    });
                }
            }
        }
    }

    fn emit_block(&mut self, b: BlockId, out: &mut Vec<Op>) {
        for i in 0..self.ssa.blocks[b].insts.len() {
            let v = self.ssa.blocks[b].insts[i];
            self.emit_inst(v, out);
        }
    }

    fn emit_inst(&mut self, v: ValId, out: &mut Vec<Op>) {
        let dst = self.reg_of[v];
        match &self.ssa.insts[v].kind {
            InstKind::Phi { .. }
            | InstKind::Undef
            | InstKind::ForIndex
            | InstKind::IfCond { .. }
            | InstKind::LoopBounds { .. } => {}
            InstKind::Bin { op, a, b } => out.push(Op::Bin {
                dst: dst.unwrap(),
                op: *op,
                a: self.opnd(a),
                b: self.opnd(b),
            }),
            InstKind::Un { op, a } => out.push(Op::Un {
                dst: dst.unwrap(),
                op: *op,
                a: self.opnd(a),
            }),
            InstKind::Mad { a, b, c } => out.push(Op::Mad {
                dst: dst.unwrap(),
                a: self.opnd(a),
                b: self.opnd(b),
                c: self.opnd(c),
            }),
            InstKind::Select { cond, a, b } => out.push(Op::Select {
                dst: dst.unwrap(),
                cond: self.opnd(cond),
                a: self.opnd(a),
                b: self.opnd(b),
            }),
            InstKind::Mov { a } => out.push(Op::Mov {
                dst: dst.unwrap(),
                a: self.opnd(a),
            }),
            InstKind::Cast { a } => out.push(Op::Cast {
                dst: dst.unwrap(),
                a: self.opnd(a),
            }),
            InstKind::Horiz { op, a } => out.push(Op::Horiz {
                dst: dst.unwrap(),
                op: *op,
                a: self.opnd(a),
            }),
            InstKind::Extract { a, lane } => out.push(Op::Extract {
                dst: dst.unwrap(),
                a: self.opnd(a),
                lane: *lane,
            }),
            InstKind::Insert { vec, v: val, lane } => {
                let d = dst.unwrap();
                let coalesced = matches!(vec, VOp::Val(s) if self.reg_of[*s] == Some(d));
                if !coalesced {
                    out.push(Op::Mov {
                        dst: d,
                        a: self.opnd(vec),
                    });
                }
                out.push(Op::Insert {
                    dst: d,
                    v: self.opnd(val),
                    lane: *lane,
                });
            }
            InstKind::Query { q } => out.push(Op::Query {
                dst: dst.unwrap(),
                q: *q,
            }),
            InstKind::ScalarArg { arg } => out.push(Op::Load {
                dst: dst.unwrap(),
                buf: *arg,
                idx: Operand::ImmI(0),
            }),
            InstKind::Load { buf, idx } => out.push(Op::Load {
                dst: dst.unwrap(),
                buf: *buf,
                idx: self.opnd(idx),
            }),
            InstKind::VLoad { buf, base } => out.push(Op::VLoad {
                dst: dst.unwrap(),
                buf: *buf,
                base: self.opnd(base),
            }),
            InstKind::Store { buf, idx, val } => out.push(Op::Store {
                buf: *buf,
                idx: self.opnd(idx),
                val: self.opnd(val),
            }),
            InstKind::VStore { buf, base, val } => out.push(Op::VStore {
                buf: *buf,
                base: self.opnd(base),
                val: self.opnd(val),
            }),
            InstKind::Atomic {
                op,
                buf,
                idx,
                val,
                has_old,
            } => out.push(Op::Atomic {
                op: *op,
                buf: *buf,
                idx: self.opnd(idx),
                val: self.opnd(val),
                old: has_old.then(|| dst.unwrap()),
            }),
            InstKind::Barrier => out.push(Op::Barrier),
        }
    }

    /// Copies materializing `succ`'s phis along the `pred → succ` edge,
    /// sequentialized so parallel-copy semantics hold (self-copies are
    /// dropped; a cycle is broken with one temporary).
    fn phi_copies(&mut self, pred: BlockId, succ: BlockId) -> Vec<Op> {
        let mut pairs: Vec<(Reg, Operand, VType)> = Vec::new();
        for &v in &self.ssa.blocks[succ].insts {
            let InstKind::Phi { args } = &self.ssa.insts[v].kind else {
                break;
            };
            let arg = args
                .iter()
                .find(|(p, _)| *p == pred)
                .map(|(_, a)| *a)
                .unwrap_or_else(|| panic!("phi in block {succ} missing arg for pred {pred}"));
            let dst = self.reg(v);
            let src = self.opnd(&arg);
            if src == Operand::Reg(dst) {
                continue;
            }
            pairs.push((dst, src, self.ssa.insts[v].ty.expect("phi type")));
        }
        let mut out = Vec::new();
        while !pairs.is_empty() {
            let ready = pairs.iter().position(|(dst, _, _)| {
                !pairs
                    .iter()
                    .any(|(_, src, _)| matches!(src, Operand::Reg(r) if r == dst))
            });
            match ready {
                Some(i) => {
                    let (dst, src, _) = pairs.remove(i);
                    out.push(Op::Mov { dst, a: src });
                }
                None => {
                    // Permutation cycle: free one destination via a temp.
                    let (dst, _, ty) = pairs[0];
                    let temp = Reg(self.regs.len() as u32);
                    self.regs.push(ty);
                    out.push(Op::Mov {
                        dst: temp,
                        a: Operand::Reg(dst),
                    });
                    for (_, src, _) in pairs.iter_mut() {
                        if matches!(src, Operand::Reg(r) if *r == dst) {
                            *src = Operand::Reg(temp);
                        }
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Register compaction
// ---------------------------------------------------------------------------

/// Shrink a lowered program's register file by interval reuse: registers
/// with disjoint live ranges (over the same linearized walk
/// `Program::register_footprint` uses, with its loop back-edge extension)
/// and identical declared types share one register. Registers read before
/// any write keep a private register in both directions — their reads must
/// observe the engine's zero-initialization. Unreferenced registers are
/// dropped.
pub(crate) fn compact_registers(p: &Program) -> Program {
    let n = p.regs.len();
    if n == 0 {
        return p.clone();
    }
    struct W {
        first: Vec<usize>,
        last: Vec<usize>,
        read_first: Vec<bool>,
        pos: usize,
    }
    impl W {
        fn touch(&mut self, r: Reg, is_read: bool) {
            let i = r.0 as usize;
            if self.first[i] == usize::MAX {
                self.first[i] = self.pos;
                self.read_first[i] = is_read;
            }
            self.last[i] = self.pos;
        }
        fn read(&mut self, o: &Operand) {
            if let Operand::Reg(r) = o {
                self.touch(*r, true);
            }
        }
        fn walk(&mut self, ops: &[Op]) {
            for op in ops {
                self.pos += 1;
                match op {
                    Op::Bin { a, b, .. } => {
                        self.read(a);
                        self.read(b);
                    }
                    Op::Un { a, .. } | Op::Mov { a, .. } | Op::Cast { a, .. } => self.read(a),
                    Op::Mad { a, b, c, .. } => {
                        self.read(a);
                        self.read(b);
                        self.read(c);
                    }
                    Op::Select { cond, a, b, .. } => {
                        self.read(cond);
                        self.read(a);
                        self.read(b);
                    }
                    Op::Horiz { a, .. } | Op::Extract { a, .. } => self.read(a),
                    Op::Insert { dst, v, .. } => {
                        // RMW: the destination is read before it is written.
                        self.touch(*dst, true);
                        self.read(v);
                    }
                    Op::Load { idx, .. } => self.read(idx),
                    Op::VLoad { base, .. } => self.read(base),
                    Op::Store { idx, val, .. } => {
                        self.read(idx);
                        self.read(val);
                    }
                    Op::VStore { base, val, .. } => {
                        self.read(base);
                        self.read(val);
                    }
                    Op::Atomic { idx, val, .. } => {
                        self.read(idx);
                        self.read(val);
                    }
                    Op::If { cond, then, els } => {
                        self.read(cond);
                        self.walk(then);
                        self.walk(els);
                        continue;
                    }
                    Op::For {
                        var,
                        start,
                        end,
                        step,
                        body,
                    } => {
                        self.read(start);
                        self.read(end);
                        self.read(step);
                        self.touch(*var, false);
                        let loop_start = self.pos;
                        self.walk(body);
                        self.pos += 1;
                        self.touch(*var, false);
                        let loop_end = self.pos;
                        // Back-edge: values live across the loop entry stay
                        // live (and thus unshareable) to the loop's end.
                        for i in 0..self.first.len() {
                            if self.first[i] < loop_start
                                && self.last[i] > loop_start
                                && self.last[i] < loop_end
                            {
                                self.last[i] = loop_end;
                            }
                        }
                        continue;
                    }
                    Op::Query { .. } | Op::Barrier => {}
                }
                if let Some(d) = op.dst_reg() {
                    self.touch(d, false);
                }
            }
        }
    }
    let mut w = W {
        first: vec![usize::MAX; n],
        last: vec![0; n],
        read_first: vec![false; n],
        pos: 0,
    };
    w.walk(&p.body);

    // Assign compacted ids in order of first touch; reuse an id whose
    // current holder's interval ended before ours starts and whose type
    // matches exactly.
    let mut order: Vec<usize> = (0..n).filter(|&i| w.first[i] != usize::MAX).collect();
    order.sort_by_key(|&i| (w.first[i], i));
    struct Slot {
        ty: VType,
        busy_until: usize,
        sticky: bool,
    }
    let mut slots: Vec<Slot> = Vec::new();
    let mut map: Vec<u32> = vec![u32::MAX; n];
    for &i in &order {
        let ty = p.regs[i];
        if w.read_first[i] {
            map[i] = slots.len() as u32;
            slots.push(Slot {
                ty,
                busy_until: usize::MAX,
                sticky: true,
            });
            continue;
        }
        let cand = slots
            .iter()
            .position(|s| !s.sticky && s.ty == ty && s.busy_until < w.first[i]);
        match cand {
            Some(s) => {
                slots[s].busy_until = w.last[i];
                map[i] = s as u32;
            }
            None => {
                map[i] = slots.len() as u32;
                slots.push(Slot {
                    ty,
                    busy_until: w.last[i],
                    sticky: false,
                });
            }
        }
    }

    let remap = |r: Reg| -> Reg {
        let m = map[r.0 as usize];
        debug_assert!(m != u32::MAX, "remap of untouched register r{}", r.0);
        Reg(m)
    };
    let ro = |o: &Operand| -> Operand {
        match o {
            Operand::Reg(r) => Operand::Reg(remap(*r)),
            imm => *imm,
        }
    };
    fn remap_body(
        ops: &[Op],
        remap: &dyn Fn(Reg) -> Reg,
        ro: &dyn Fn(&Operand) -> Operand,
    ) -> Vec<Op> {
        ops.iter()
            .map(|op| match op {
                Op::Bin { dst, op, a, b } => Op::Bin {
                    dst: remap(*dst),
                    op: *op,
                    a: ro(a),
                    b: ro(b),
                },
                Op::Un { dst, op, a } => Op::Un {
                    dst: remap(*dst),
                    op: *op,
                    a: ro(a),
                },
                Op::Mad { dst, a, b, c } => Op::Mad {
                    dst: remap(*dst),
                    a: ro(a),
                    b: ro(b),
                    c: ro(c),
                },
                Op::Select { dst, cond, a, b } => Op::Select {
                    dst: remap(*dst),
                    cond: ro(cond),
                    a: ro(a),
                    b: ro(b),
                },
                Op::Mov { dst, a } => Op::Mov {
                    dst: remap(*dst),
                    a: ro(a),
                },
                Op::Cast { dst, a } => Op::Cast {
                    dst: remap(*dst),
                    a: ro(a),
                },
                Op::Horiz { dst, op, a } => Op::Horiz {
                    dst: remap(*dst),
                    op: *op,
                    a: ro(a),
                },
                Op::Extract { dst, a, lane } => Op::Extract {
                    dst: remap(*dst),
                    a: ro(a),
                    lane: *lane,
                },
                Op::Insert { dst, v, lane } => Op::Insert {
                    dst: remap(*dst),
                    v: ro(v),
                    lane: *lane,
                },
                Op::Query { dst, q } => Op::Query {
                    dst: remap(*dst),
                    q: *q,
                },
                Op::Load { dst, buf, idx } => Op::Load {
                    dst: remap(*dst),
                    buf: *buf,
                    idx: ro(idx),
                },
                Op::VLoad { dst, buf, base } => Op::VLoad {
                    dst: remap(*dst),
                    buf: *buf,
                    base: ro(base),
                },
                Op::Store { buf, idx, val } => Op::Store {
                    buf: *buf,
                    idx: ro(idx),
                    val: ro(val),
                },
                Op::VStore { buf, base, val } => Op::VStore {
                    buf: *buf,
                    base: ro(base),
                    val: ro(val),
                },
                Op::Atomic {
                    op,
                    buf,
                    idx,
                    val,
                    old,
                } => Op::Atomic {
                    op: *op,
                    buf: *buf,
                    idx: ro(idx),
                    val: ro(val),
                    old: old.map(remap),
                },
                Op::For {
                    var,
                    start,
                    end,
                    step,
                    body,
                } => Op::For {
                    var: remap(*var),
                    start: ro(start),
                    end: ro(end),
                    step: ro(step),
                    body: remap_body(body, remap, ro),
                },
                Op::If { cond, then, els } => Op::If {
                    cond: ro(cond),
                    then: remap_body(then, remap, ro),
                    els: remap_body(els, remap, ro),
                },
                Op::Barrier => Op::Barrier,
            })
            .collect()
    }

    Program {
        name: p.name.clone(),
        args: p.args.clone(),
        regs: slots.iter().map(|s| s.ty).collect(),
        body: remap_body(&p.body, &remap, &ro),
        hints: p.hints,
    }
}
