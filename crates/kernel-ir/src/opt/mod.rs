//! SSA optimizing pass pipeline over kernel programs.
//!
//! Programs are lifted into SSA form ([`ssa`]: CFG construction, dominator
//! tree, phi placement, rename), run through a configurable sequence of
//! scalar optimization passes ([`passes`]: constant folding/propagation,
//! algebraic simplification, strength reduction, global value numbering,
//! loop-invariant code motion, dead-store and dead-code elimination), and
//! lowered back to the flat structured instruction stream both execution
//! engines interpret.
//!
//! The hard invariant: an optimized program must produce **byte-identical
//! results** to the original under either `SIM_EXEC` engine at any
//! `SIM_THREADS` width. Every fold goes through the interpreter's own
//! `eval_*` helpers so constant arithmetic is bit-exact, float rewrites are
//! restricted to exact identities (`x*1.0`, `x/1.0`), integer rewrites rely
//! on the IR's wrapping semantics, and trapping ops (integer div/rem) are
//! never speculated or folded with an unproven divisor. Passes that legally
//! change the observable *memory-event stream* (dse, dce) are documented in
//! DESIGN.md §17; none change results.
//!
//! Selection is ambient, mirroring `SIM_EXEC`: the `SIM_PASSES` environment
//! variable (e.g. `SIM_PASSES=cf,cse,licm` or `SIM_PASSES=full`) resolves
//! lazily, [`set_passes`] overrides it process-wide, and [`with_passes`]
//! scopes an override to one closure (the serving layer runs each cell
//! under the pass list baked into its cell key).

pub(crate) mod passes;
pub(crate) mod ssa;

use crate::program::Program;
use std::cell::RefCell;
use std::fmt;
use std::sync::{Arc, Mutex, RwLock};

/// One optimization pass. Order of application is the pipeline's order;
/// [`Pass::ALL`] is the canonical "full" ordering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pass {
    /// `cf` — constant folding + propagation (bit-exact via `eval_*`).
    ConstFold,
    /// `alg` — algebraic identities and copy propagation.
    Algebraic,
    /// `sr` — strength reduction (mul/div/rem by powers of two, int mad
    /// fusion).
    StrengthReduce,
    /// `cse` — dominator-scoped global value numbering.
    Cse,
    /// `licm` — loop-invariant code motion to loop preheaders.
    Licm,
    /// `dse` — dead-store elimination (same-block exact overwrites).
    Dse,
    /// `dce` — dead-code elimination (mark/sweep from side effects).
    Dce,
}

impl Pass {
    /// Canonical full pipeline order, as run by `SIM_PASSES=full`.
    pub const ALL: [Pass; 7] = [
        Pass::ConstFold,
        Pass::Algebraic,
        Pass::StrengthReduce,
        Pass::Cse,
        Pass::Licm,
        Pass::Dse,
        Pass::Dce,
    ];

    /// Stable short name, as accepted by [`Pipeline::parse`] / `SIM_PASSES`.
    pub fn name(self) -> &'static str {
        match self {
            Pass::ConstFold => "cf",
            Pass::Algebraic => "alg",
            Pass::StrengthReduce => "sr",
            Pass::Cse => "cse",
            Pass::Licm => "licm",
            Pass::Dse => "dse",
            Pass::Dce => "dce",
        }
    }

    fn parse(name: &str) -> Option<Pass> {
        Pass::ALL.iter().copied().find(|p| p.name() == name)
    }
}

/// An ordered list of passes. Parsed from a comma-separated string; the
/// same string is folded into serving cell keys so pass orderings cache and
/// shard like any other experiment axis.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Pipeline {
    passes: Vec<Pass>,
}

impl Pipeline {
    /// Parse a comma-separated pass list (`"cf,cse,licm"`). The empty
    /// string parses to the empty (no-op) pipeline; `"full"` expands to the
    /// canonical [`Pass::ALL`] ordering. Unknown names are an error.
    pub fn parse(s: &str) -> Result<Pipeline, String> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Pipeline::default());
        }
        if s == "full" {
            return Ok(Pipeline::full());
        }
        let mut passes = Vec::new();
        for name in s.split(',') {
            let name = name.trim();
            match Pass::parse(name) {
                Some(p) => passes.push(p),
                None => {
                    return Err(format!(
                        "unknown pass '{name}' (known: {}, or 'full')",
                        Pass::ALL.map(|p| p.name()).join(",")
                    ))
                }
            }
        }
        Ok(Pipeline { passes })
    }

    /// The canonical full pipeline (`cf,alg,sr,cse,licm,dse,dce`).
    pub fn full() -> Pipeline {
        Pipeline {
            passes: Pass::ALL.to_vec(),
        }
    }

    /// Build from an explicit pass sequence.
    pub fn of(passes: &[Pass]) -> Pipeline {
        Pipeline {
            passes: passes.to_vec(),
        }
    }

    pub fn passes(&self) -> &[Pass] {
        &self.passes
    }

    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Optimize `p`: lift to SSA, run the passes in order, lower back and
    /// compact registers. The result is validated; an invalid lowering is a
    /// bug in this module and panics loudly rather than executing a
    /// miscompiled kernel.
    pub fn run(&self, p: &Program) -> Program {
        if self.passes.is_empty() {
            return p.clone();
        }
        let mut func = ssa::Ssa::build(p);
        let mut counters = PassCounters {
            programs: 1,
            ..Default::default()
        };
        for pass in &self.passes {
            match pass {
                Pass::ConstFold => passes::const_fold(&mut func, &mut counters),
                Pass::Algebraic => passes::algebraic(&mut func, &mut counters),
                Pass::StrengthReduce => passes::strength_reduce(&mut func, &mut counters),
                Pass::Cse => passes::cse(&mut func, &mut counters),
                Pass::Licm => passes::licm(&mut func, &mut counters),
                Pass::Dse => passes::dse(&mut func, &mut counters),
                Pass::Dce => passes::dce(&mut func, &mut counters),
            }
        }
        let out = func.lower();
        let out = ssa::compact_registers(&out);
        if let Err(errs) = out.validate() {
            panic!(
                "optimizer pipeline '{self}' produced an invalid program for '{}': {errs:?}\n\
                 --- optimized ---\n{out}",
                p.name
            );
        }
        let mut g = STATS.lock().unwrap();
        g.accumulate(&counters);
        out
    }
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.passes.iter().map(|p| p.name()).collect();
        f.write_str(&names.join(","))
    }
}

/// Per-pass optimization telemetry, accumulated process-wide across every
/// optimized launch. (Deliberately separate from `telemetry::Counters`,
/// whose wire codec is append-only per its own rules.)
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassCounters {
    /// Programs run through a non-empty pipeline.
    pub programs: u64,
    /// `cf`: instructions folded to constants.
    pub folded: u64,
    /// `cf`: operand uses rewritten to immediates.
    pub propagated: u64,
    /// `alg`: instructions simplified by algebraic identities.
    pub simplified: u64,
    /// `sr`: instructions strength-reduced.
    pub reduced: u64,
    /// `cse`: expressions numbered away to a dominating equal.
    pub numbered: u64,
    /// `licm`: instructions hoisted to a loop preheader.
    pub hoisted: u64,
    /// `dse`: dead stores eliminated.
    pub dead_stores: u64,
    /// `dce`: dead instructions eliminated.
    pub dead_code: u64,
}

impl PassCounters {
    fn accumulate(&mut self, o: &PassCounters) {
        self.programs += o.programs;
        self.folded += o.folded;
        self.propagated += o.propagated;
        self.simplified += o.simplified;
        self.reduced += o.reduced;
        self.numbered += o.numbered;
        self.hoisted += o.hoisted;
        self.dead_stores += o.dead_stores;
        self.dead_code += o.dead_code;
    }

    /// Total instructions eliminated or improved across all passes.
    pub fn total_rewrites(&self) -> u64 {
        self.folded
            + self.simplified
            + self.reduced
            + self.numbered
            + self.hoisted
            + self.dead_stores
            + self.dead_code
    }
}

static STATS: Mutex<PassCounters> = Mutex::new(PassCounters {
    programs: 0,
    folded: 0,
    propagated: 0,
    simplified: 0,
    reduced: 0,
    numbered: 0,
    hoisted: 0,
    dead_stores: 0,
    dead_code: 0,
});

/// Snapshot of the process-wide pass counters.
pub fn stats() -> PassCounters {
    *STATS.lock().unwrap()
}

/// Snapshot and reset the process-wide pass counters.
pub fn take_stats() -> PassCounters {
    std::mem::take(&mut *STATS.lock().unwrap())
}

/// `None` = unresolved (read `SIM_PASSES` lazily); `Some(None)` = resolved
/// to "no optimization"; `Some(Some(p))` = resolved to a pipeline.
static GLOBAL: RwLock<Option<Option<Arc<Pipeline>>>> = RwLock::new(None);

thread_local! {
    /// Stack of scoped overrides installed by [`with_passes`].
    static OVERRIDE: RefCell<Vec<Option<Arc<Pipeline>>>> = const { RefCell::new(Vec::new()) };
}

/// The pipeline ambient launches should apply, if any: the innermost
/// [`with_passes`] scope on this thread, else the process-wide selection
/// ([`set_passes`] or, resolved once, the `SIM_PASSES` environment
/// variable). Panics on an unparsable `SIM_PASSES`, like `SIM_EXEC`.
pub fn ambient() -> Option<Arc<Pipeline>> {
    if let Some(top) = OVERRIDE.with(|o| o.borrow().last().cloned()) {
        return top;
    }
    if let Some(resolved) = GLOBAL.read().unwrap().clone() {
        return resolved;
    }
    let from_env = match std::env::var("SIM_PASSES") {
        Ok(v) => match Pipeline::parse(&v) {
            Ok(p) if p.is_empty() => None,
            Ok(p) => Some(Arc::new(p)),
            Err(e) => panic!("SIM_PASSES: {e}"),
        },
        Err(_) => None,
    };
    let mut w = GLOBAL.write().unwrap();
    if w.is_none() {
        *w = Some(from_env);
    }
    w.clone().unwrap()
}

/// Comma-separated name list of the ambient pipeline ("" when none) — the
/// normalization used in checkpoint headers and cell specs.
pub fn ambient_names() -> String {
    ambient().map(|p| p.to_string()).unwrap_or_default()
}

/// Select the pass pipeline for subsequent launches process-wide,
/// overriding `SIM_PASSES` (`None` or an empty pipeline disables
/// optimization). Launches in flight keep what they resolved at start.
pub fn set_passes(p: Option<Pipeline>) {
    let normalized = p.filter(|p| !p.is_empty()).map(Arc::new);
    *GLOBAL.write().unwrap() = Some(normalized);
}

/// Run `f` with the ambient pipeline overridden on this thread only —
/// including `None`, which forces *no* optimization regardless of the
/// process-wide selection. This is how the serving layer pins each cell to
/// exactly the pass list in its cell key. Nests; panic-safe.
///
/// **This thread only**: pool workers resolve their own ambient and do not
/// inherit the caller's override. Code that fans work out (the harness
/// suite runner distributes cells across `sim_pool` workers) must carry
/// the pipeline to the executing thread and install it there — which is
/// what `SuiteConfig::passes` does — rather than wrapping the fan-out
/// call site in `with_passes`.
pub fn with_passes<R>(p: Option<Pipeline>, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            OVERRIDE.with(|o| {
                o.borrow_mut().pop();
            });
        }
    }
    OVERRIDE.with(|o| {
        o.borrow_mut()
            .push(p.filter(|p| !p.is_empty()).map(Arc::new))
    });
    let _g = Guard;
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_and_errors() {
        let p = Pipeline::parse("cf, cse ,licm").unwrap();
        assert_eq!(p.to_string(), "cf,cse,licm");
        assert_eq!(p.passes().len(), 3);
        assert_eq!(Pipeline::parse("").unwrap(), Pipeline::default());
        assert!(Pipeline::parse("").unwrap().is_empty());
        assert_eq!(Pipeline::parse("full").unwrap(), Pipeline::full());
        assert_eq!(Pipeline::full().to_string(), "cf,alg,sr,cse,licm,dse,dce");
        let err = Pipeline::parse("cf,bogus").unwrap_err();
        assert!(err.contains("bogus"), "{err}");
        // Repeats and arbitrary orderings are allowed — that is the point
        // of phase-ordering search.
        assert_eq!(Pipeline::parse("dce,dce,cf").unwrap().passes().len(), 3);
    }

    #[test]
    fn with_passes_scopes_and_nests() {
        let outer = Pipeline::parse("cf").unwrap();
        let inner = Pipeline::parse("dce").unwrap();
        with_passes(Some(outer.clone()), || {
            assert_eq!(ambient().unwrap().as_ref(), &outer);
            with_passes(Some(inner.clone()), || {
                assert_eq!(ambient().unwrap().as_ref(), &inner);
            });
            with_passes(None, || assert!(ambient().is_none()));
            assert_eq!(ambient().unwrap().as_ref(), &outer);
        });
    }

    #[test]
    fn empty_pipeline_normalizes_to_none() {
        with_passes(Some(Pipeline::default()), || assert!(ambient().is_none()));
    }
}

#[cfg(test)]
mod exec_tests {
    use super::*;
    use crate::exec::{run_ndrange, run_ndrange_with_engine, ArgBinding, Engine, NDRange};
    use crate::instr::{BinOp, HorizOp, Operand, UnOp};
    use crate::memory::{BufferData, MemoryPool};
    use crate::prelude::KernelBuilder;
    use crate::program::Program;
    use crate::trace::NullTracer;
    use crate::types::{Access, Scalar, VType};

    const N: usize = 64;
    const LOCAL: usize = 16;

    /// A deliberately redundancy-rich kernel touching every structured
    /// construct: loops (invariants + loop-carried state), an `If`, vector
    /// ops with insert/extract, common subexpressions, folds, identities,
    /// and power-of-two strength-reduction targets.
    fn gauntlet() -> Program {
        let mut kb = KernelBuilder::new("gauntlet");
        let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let b = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let out = kb.arg_global(Scalar::F32, Access::WriteOnly, false);
        let iout = kb.arg_global(Scalar::U32, Access::WriteOnly, false);
        let scale = kb.arg_scalar(Scalar::F32);

        let gid = kb.query_global_id(0);
        // Constant-foldable address math with pow2 strength reduction bait.
        let four = kb.bin(
            BinOp::Add,
            Operand::ImmI(1),
            Operand::ImmI(3),
            VType::scalar(Scalar::U32),
        );
        let idx = kb.bin(
            BinOp::Mul,
            gid.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        let q = kb.bin(
            BinOp::Div,
            idx.into(),
            four.into(),
            VType::scalar(Scalar::U32),
        );
        let r = kb.bin(
            BinOp::Rem,
            idx.into(),
            four.into(),
            VType::scalar(Scalar::U32),
        );
        let qr = kb.mad(q.into(), four.into(), r.into(), VType::scalar(Scalar::U32));
        kb.store(iout, gid.into(), qr.into());

        let x = kb.load(Scalar::F32, a, idx.into());
        let y = kb.load(Scalar::F32, b, idx.into());
        let sv = kb.load_scalar_arg(scale);
        // Common subexpression, twice.
        let s1 = kb.bin(BinOp::Add, x.into(), y.into(), VType::scalar(Scalar::F32));
        let s2 = kb.bin(BinOp::Add, x.into(), y.into(), VType::scalar(Scalar::F32));
        // Float identities (exact only).
        let t1 = kb.bin(
            BinOp::Mul,
            s1.into(),
            Operand::ImmF(1.0),
            VType::scalar(Scalar::F32),
        );
        let t2 = kb.bin(
            BinOp::Div,
            s2.into(),
            Operand::ImmF(1.0),
            VType::scalar(Scalar::F32),
        );
        let neg = kb.un(UnOp::Neg, t1.into(), VType::scalar(Scalar::F32));
        let pos = kb.un(UnOp::Neg, neg.into(), VType::scalar(Scalar::F32));

        // Loop with an invariant multiply and a loop-carried accumulator.
        let acc = kb.mov(Operand::ImmF(0.0), VType::scalar(Scalar::F32));
        kb.for_loop(
            Operand::ImmI(0),
            Operand::ImmI(8),
            Operand::ImmI(2),
            |kb, i| {
                let inv = kb.bin(
                    BinOp::Mul,
                    sv.into(),
                    Operand::ImmF(0.25),
                    VType::scalar(Scalar::F32),
                );
                let fi = kb.cast(i.into(), VType::scalar(Scalar::F32));
                let term = kb.mad(fi.into(), inv.into(), t2.into(), VType::scalar(Scalar::F32));
                kb.bin_into(acc, BinOp::Add, acc.into(), term.into());
            },
        );

        // Vector segment: vload, insert/extract, horizontal reduce.
        let base = kb.bin(
            BinOp::Mul,
            gid.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        let capped = kb.bin(
            BinOp::Min,
            base.into(),
            Operand::ImmI((N - 4) as i64),
            VType::scalar(Scalar::U32),
        );
        let vv = kb.vload(Scalar::F32, 4, a, capped.into());
        let lane2 = kb.extract(vv, 2);
        kb.insert_into(vv, lane2.into(), 0);
        let hsum = kb.horiz(HorizOp::Add, vv);

        // Divergent tail.
        let cold = kb.bin(
            BinOp::Lt,
            pos.into(),
            Operand::ImmF(4.0),
            VType::scalar(Scalar::F32),
        );
        kb.if_then_else(
            cold.into(),
            |kb| {
                kb.bin_into(acc, BinOp::Add, acc.into(), hsum.into());
            },
            |kb| {
                kb.bin_into(acc, BinOp::Mul, acc.into(), Operand::ImmF(1.0));
                kb.bin_into(acc, BinOp::Sub, acc.into(), pos.into());
            },
        );
        // Dead store (overwritten below, no read between).
        kb.store(out, gid.into(), Operand::ImmF(-1.0));
        kb.store(out, gid.into(), acc.into());
        let p = kb.finish();
        p.validate().unwrap();
        p
    }

    fn run(p: &Program, engine: Option<Engine>) -> (Vec<u32>, Vec<u32>) {
        let mut pool = MemoryPool::new();
        let a = pool.add(BufferData::from(
            (0..N).map(|i| (i as f32 * 0.37).sin()).collect::<Vec<_>>(),
        ));
        let b = pool.add(BufferData::from(
            (0..N).map(|i| 1.0 - i as f32 * 0.11).collect::<Vec<_>>(),
        ));
        let out = pool.add(BufferData::zeroed(Scalar::F32, N));
        let iout = pool.add(BufferData::zeroed(Scalar::U32, N));
        let bindings = [
            ArgBinding::Global(a),
            ArgBinding::Global(b),
            ArgBinding::Global(out),
            ArgBinding::Global(iout),
            ArgBinding::Scalar(crate::value::Value::f32(2.5)),
        ];
        let nd = NDRange::d1(N, LOCAL);
        match engine {
            Some(e) => {
                run_ndrange_with_engine(p, &bindings, &mut pool, nd, &mut NullTracer, e).unwrap()
            }
            None => run_ndrange(p, &bindings, &mut pool, nd, &mut NullTracer).unwrap(),
        };
        let fbits = pool.get(out).as_f32().iter().map(|x| x.to_bits()).collect();
        let ibits = pool.get(iout).as_u32().to_vec();
        (fbits, ibits)
    }

    #[test]
    fn every_single_pass_and_orderings_preserve_results() {
        let p = gauntlet();
        let baseline_s = run(&p, Some(Engine::Scalar));
        let baseline_c = run(&p, Some(Engine::Columnar));
        assert_eq!(baseline_s, baseline_c, "engines disagree before optimizing");

        let mut pipelines: Vec<Pipeline> =
            Pass::ALL.iter().map(|&pa| Pipeline::of(&[pa])).collect();
        pipelines.push(Pipeline::full());
        pipelines.push(Pipeline::parse("dce,licm,cse,sr,alg,cf").unwrap());
        pipelines.push(Pipeline::parse("cf,cf,cse,cse,dce,dce").unwrap());
        for pl in &pipelines {
            let opt = pl.run(&p);
            opt.validate()
                .unwrap_or_else(|e| panic!("pipeline '{pl}' produced invalid IR: {e:?}"));
            assert_eq!(
                run(&opt, Some(Engine::Scalar)),
                baseline_s,
                "pipeline '{pl}' changed results (scalar)\n--- optimized ---\n{opt}"
            );
            assert_eq!(
                run(&opt, Some(Engine::Columnar)),
                baseline_s,
                "pipeline '{pl}' changed results (columnar)\n--- optimized ---\n{opt}"
            );
        }
    }

    #[test]
    fn full_pipeline_shrinks_the_gauntlet_and_counts_it() {
        let p = gauntlet();
        // Executed-instruction count is the metric that matters: phi copies
        // at structured joins can grow the *static* stream while hoisting and
        // folding shrink the per-iteration *dynamic* one.
        fn executed_ops(p: &Program) -> u64 {
            let mut pool = MemoryPool::new();
            let a = pool.add(BufferData::from(vec![0.5f32; N]));
            let b = pool.add(BufferData::from(vec![0.25f32; N]));
            let out = pool.add(BufferData::zeroed(Scalar::F32, N));
            let iout = pool.add(BufferData::zeroed(Scalar::U32, N));
            let bindings = [
                ArgBinding::Global(a),
                ArgBinding::Global(b),
                ArgBinding::Global(out),
                ArgBinding::Global(iout),
                ArgBinding::Scalar(crate::value::Value::f32(2.5)),
            ];
            let mut t = crate::trace::CountingTracer::default();
            run_ndrange(p, &bindings, &mut pool, NDRange::d1(N, LOCAL), &mut t).unwrap();
            t.ops
        }
        let before_stats = stats();
        let opt = Pipeline::full().run(&p);
        let after_stats = stats();
        let (base_ops, opt_ops) = (executed_ops(&p), executed_ops(&opt));
        assert!(
            opt_ops < base_ops,
            "full pipeline failed to shrink the gauntlet: {base_ops} -> {opt_ops} executed ops\n{opt}"
        );
        assert!(
            after_stats.total_rewrites() > before_stats.total_rewrites(),
            "pass counters did not move"
        );
        assert!(after_stats.programs > before_stats.programs);
    }

    #[test]
    fn ambient_passes_apply_at_launch() {
        let p = gauntlet();
        let plain = run(&p, None);
        let optimized = with_passes(Some(Pipeline::full()), || run(&p, None));
        assert_eq!(plain, optimized, "SIM_PASSES-style ambient launch diverged");
    }

    #[test]
    fn pipeline_output_is_deterministic() {
        let p = gauntlet();
        let o1 = Pipeline::full().run(&p);
        let o2 = Pipeline::full().run(&p);
        assert_eq!(o1, o2, "same pipeline, same input, different output");
    }
}
