//! Execution-event tracing.
//!
//! The interpreter is *functional* (it computes real results) and *observable*
//! (it reports every issued operation and memory access to an [`ExecTracer`]).
//! Device models implement `ExecTracer` to turn the event stream into cycles,
//! cache traffic and power activity.

use crate::types::{MemSpace, Scalar, VType};

/// Classification of an issued arithmetic/move operation, used by device
/// cost tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Add/sub/min/max/compare/logic — single-slot ALU ops.
    Simple,
    /// Multiply.
    Mul,
    /// Fused multiply-add (two flops in one slot).
    Mad,
    /// Division — iterative on both devices.
    Div,
    /// sqrt — special function unit.
    Special,
    /// rsqrt — native single op on the Mali SFU; sqrt+divide on scalar VFP.
    Rsqrt,
    /// exp / log — long-latency transcendental (libm on the CPU, SFU
    /// iteration on the GPU).
    Transcendental,
    /// Register moves, casts, lane insert/extract, select.
    Move,
    /// Cross-lane horizontal reduction.
    Horizontal,
}

/// Whether a memory access reads, writes, or atomically updates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    Read,
    Write,
    /// Atomic read-modify-write (serializes in the L2 on Mali).
    Atomic,
}

/// Spatial pattern of a (possibly multi-lane) memory access. Devices use
/// this to model the bandwidth efficiency of scalar vs vector vs gather
/// accesses — the core of the paper's vectorized-load guideline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// One scalar element.
    Scalar,
    /// `width` contiguous elements via vload/vstore — one wide transaction.
    Contiguous,
    /// Lane addresses are arbitrary (indirect indexing, e.g. spmv's
    /// `x[col[j]]`).
    Gather,
}

/// One memory access event emitted by the interpreter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemAccess {
    pub space: MemSpace,
    pub kind: AccessKind,
    /// Stream identity: the kernel-argument index of the buffer. Lets
    /// prefetcher-style models track interleaved walks of different
    /// buffers as independent streams.
    pub stream: u32,
    /// Simulated physical byte address of the first lane.
    pub addr: u64,
    /// Total bytes moved by the access.
    pub bytes: u32,
    /// Element type accessed.
    pub elem: Scalar,
    /// Number of lanes.
    pub width: u8,
    pub pattern: Pattern,
}

/// Observer of interpreter events. All methods have empty defaults so cost
/// models only override what they meter.
pub trait ExecTracer {
    /// An arithmetic-pipe operation of class `class` on type `ty` was issued.
    fn op(&mut self, class: OpClass, ty: VType) {
        let _ = (class, ty);
    }
    /// A memory access was issued. `lanes` carries the per-lane addresses
    /// for [`Pattern::Gather`] accesses (exactly `access.width` entries, in
    /// lane order) and is empty for scalar/contiguous accesses, where
    /// `addr`+`bytes` describe the span. Keeping the rare gather addresses
    /// out of [`MemAccess`] keeps the struct small enough to copy through
    /// record/replay logs cheaply.
    fn mem(&mut self, access: &MemAccess, lanes: &[u64]) {
        let _ = (access, lanes);
    }
    /// A work-group barrier completed for `items` work-items.
    fn barrier(&mut self, items: u32) {
        let _ = items;
    }
    /// One loop back-edge executed (models branch/index overhead).
    fn loop_iter(&mut self) {}
    /// A work-item began executing.
    fn thread_start(&mut self) {}
    /// A work-group was dispatched.
    fn group_start(&mut self) {}
}

/// A tracer whose work-group cost accounting can be decomposed for the
/// parallel engine while staying **bit-identical** to serial execution.
///
/// The decomposition exploits the two kinds of state a device model keeps:
///
/// * *op-side* accounting (arithmetic slots, op counters, barrier costs) is
///   independent per group — it accumulates into a per-group [`Self::Shard`]
///   on whichever worker executes the group;
/// * *mem-side* accounting (cache hierarchy, stride classifiers, atomic
///   contention maps) is stateful **across** groups — memory accesses are
///   recorded during execution and replayed through the main tracer.
///
/// The engine calls [`Self::absorb_group`] once per group **in ascending
/// linear group order**, in both the serial and the parallel engine, so
/// every floating-point accumulation happens in one canonical order and the
/// resulting report is identical bit for bit regardless of thread count.
pub trait ShardTracer {
    /// Per-group op-side accumulator; executed on a worker thread.
    type Shard: ExecTracer + Send;

    /// A fresh, empty shard for one work-group.
    fn make_shard(&self) -> Self::Shard;

    /// Merge one group's op-side shard and replay its recorded memory
    /// accesses. Called in ascending group order. `lanes` is the group's
    /// gather-address side log: each [`Pattern::Gather`] access in `mem`
    /// consumes the next `width` entries of `lanes`, in access order.
    fn absorb_group(&mut self, shard: Self::Shard, mem: &[MemAccess], lanes: &[u64]);
}

/// Wraps a [`ShardTracer::Shard`] for one group's execution: op-side events
/// flow into the shard, memory accesses are captured for ordered replay.
pub struct RecordingTracer<S: ExecTracer> {
    pub shard: S,
    pub mem_log: Vec<MemAccess>,
    /// Gather-address side log, in the convention of
    /// [`ShardTracer::absorb_group`]: each gather access in `mem_log` owns
    /// the next `width` entries.
    pub lane_log: Vec<u64>,
}

impl<S: ExecTracer> RecordingTracer<S> {
    pub fn new(shard: S) -> Self {
        RecordingTracer {
            shard,
            mem_log: Vec::new(),
            lane_log: Vec::new(),
        }
    }
}

impl<S: ExecTracer> ExecTracer for RecordingTracer<S> {
    fn op(&mut self, class: OpClass, ty: VType) {
        self.shard.op(class, ty);
    }
    fn mem(&mut self, access: &MemAccess, lanes: &[u64]) {
        self.mem_log.push(*access);
        self.lane_log.extend_from_slice(lanes);
    }
    fn barrier(&mut self, items: u32) {
        self.shard.barrier(items);
    }
    fn loop_iter(&mut self) {
        self.shard.loop_iter();
    }
    fn thread_start(&mut self) {
        self.shard.thread_start();
    }
    fn group_start(&mut self) {
        self.shard.group_start();
    }
}

/// Tracer that discards everything — used for pure-functional runs
/// (validation against reference implementations).
#[derive(Default, Clone, Copy)]
pub struct NullTracer;

impl ExecTracer for NullTracer {}

/// Simple counting tracer used by tests and the ablation harness.
#[derive(Default, Clone, Debug, PartialEq, Eq)]
pub struct CountingTracer {
    pub ops: u64,
    pub special_ops: u64,
    pub mad_ops: u64,
    pub loads: u64,
    pub stores: u64,
    pub atomics: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub local_accesses: u64,
    pub gathers: u64,
    pub contiguous: u64,
    pub barriers: u64,
    pub loop_iters: u64,
    pub threads: u64,
    pub groups: u64,
    /// Sum over vector ops of lane counts — measures SIMD utilization.
    pub lanes_issued: u64,
}

impl ExecTracer for CountingTracer {
    fn op(&mut self, class: OpClass, ty: VType) {
        self.ops += 1;
        self.lanes_issued += ty.width as u64;
        match class {
            OpClass::Special | OpClass::Rsqrt | OpClass::Transcendental => self.special_ops += 1,
            OpClass::Mad => self.mad_ops += 1,
            _ => {}
        }
    }

    fn mem(&mut self, a: &MemAccess, _lanes: &[u64]) {
        match a.kind {
            AccessKind::Read => {
                self.loads += 1;
                self.bytes_read += a.bytes as u64;
            }
            AccessKind::Write => {
                self.stores += 1;
                self.bytes_written += a.bytes as u64;
            }
            AccessKind::Atomic => self.atomics += 1,
        }
        if a.space == MemSpace::Local {
            self.local_accesses += 1;
        }
        match a.pattern {
            Pattern::Gather => self.gathers += 1,
            Pattern::Contiguous => self.contiguous += 1,
            Pattern::Scalar => {}
        }
    }

    fn barrier(&mut self, items: u32) {
        self.barriers += items as u64;
    }

    fn loop_iter(&mut self) {
        self.loop_iters += 1;
    }

    fn thread_start(&mut self) {
        self.threads += 1;
    }

    fn group_start(&mut self) {
        self.groups += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_tracer_accumulates() {
        let mut t = CountingTracer::default();
        t.op(OpClass::Mad, VType::new(Scalar::F32, 4));
        t.op(OpClass::Special, VType::scalar(Scalar::F32));
        t.mem(
            &MemAccess {
                stream: 0,
                space: MemSpace::Global,
                kind: AccessKind::Read,
                addr: 0,
                bytes: 16,
                elem: Scalar::F32,
                width: 4,
                pattern: Pattern::Contiguous,
            },
            &[],
        );
        t.mem(
            &MemAccess {
                stream: 1,
                space: MemSpace::Local,
                kind: AccessKind::Atomic,
                addr: 64,
                bytes: 4,
                elem: Scalar::U32,
                width: 1,
                pattern: Pattern::Scalar,
            },
            &[],
        );
        assert_eq!(t.ops, 2);
        assert_eq!(t.mad_ops, 1);
        assert_eq!(t.special_ops, 1);
        assert_eq!(t.lanes_issued, 5);
        assert_eq!(t.bytes_read, 16);
        assert_eq!(t.contiguous, 1);
        assert_eq!(t.atomics, 1);
        assert_eq!(t.local_accesses, 1);
    }

    #[test]
    fn null_tracer_is_noop() {
        let mut t = NullTracer;
        t.op(OpClass::Simple, VType::scalar(Scalar::I32));
        t.barrier(32);
        t.loop_iter();
    }
}
