//! Pretty-printing of kernels in an OpenCL-C-flavoured syntax.
//!
//! Used for debugging, documentation and the harness's `--dump-kernels`
//! mode; the output is *not* meant to be compilable OpenCL, just readable.

use crate::instr::{ArgDecl, AtomicOp, BinOp, Builtin, HorizOp, Op, Operand, UnOp};
use crate::program::Program;
use std::fmt::Write;

fn operand(o: &Operand) -> String {
    match o {
        Operand::Reg(r) => format!("r{}", r.0),
        Operand::ImmF(x) => format!("{x:?}f"),
        Operand::ImmI(x) => format!("{x}"),
    }
}

fn bin_symbol(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Min => "min",
        BinOp::Max => "max",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
    }
}

fn un_name(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "-",
        UnOp::Abs => "fabs",
        UnOp::Sqrt => "sqrt",
        UnOp::Rsqrt => "rsqrt",
        UnOp::Exp => "exp",
        UnOp::Log => "log",
        UnOp::Not => "~",
    }
}

fn builtin_name(q: &Builtin) -> String {
    match q {
        Builtin::GlobalId(d) => format!("get_global_id({d})"),
        Builtin::LocalId(d) => format!("get_local_id({d})"),
        Builtin::GroupId(d) => format!("get_group_id({d})"),
        Builtin::GlobalSize(d) => format!("get_global_size({d})"),
        Builtin::LocalSize(d) => format!("get_local_size({d})"),
        Builtin::NumGroups(d) => format!("get_num_groups({d})"),
    }
}

fn write_block(out: &mut String, ops: &[Op], indent: usize) {
    let pad = "  ".repeat(indent);
    for op in ops {
        match op {
            Op::Bin {
                dst,
                op: b,
                a,
                b: rhs,
            } => {
                if matches!(b, BinOp::Min | BinOp::Max) {
                    let _ = writeln!(
                        out,
                        "{pad}r{} = {}({}, {});",
                        dst.0,
                        bin_symbol(*b),
                        operand(a),
                        operand(rhs)
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "{pad}r{} = {} {} {};",
                        dst.0,
                        operand(a),
                        bin_symbol(*b),
                        operand(rhs)
                    );
                }
            }
            Op::Un { dst, op: u, a } => {
                let _ = writeln!(out, "{pad}r{} = {}({});", dst.0, un_name(*u), operand(a));
            }
            Op::Mad { dst, a, b, c } => {
                let _ = writeln!(
                    out,
                    "{pad}r{} = mad({}, {}, {});",
                    dst.0,
                    operand(a),
                    operand(b),
                    operand(c)
                );
            }
            Op::Select { dst, cond, a, b } => {
                let _ = writeln!(
                    out,
                    "{pad}r{} = select({}, {}, {});",
                    dst.0,
                    operand(b),
                    operand(a),
                    operand(cond)
                );
            }
            Op::Mov { dst, a } => {
                let _ = writeln!(out, "{pad}r{} = {};", dst.0, operand(a));
            }
            Op::Cast { dst, a } => {
                let _ = writeln!(out, "{pad}r{} = convert({});", dst.0, operand(a));
            }
            Op::Horiz { dst, op: h, a } => {
                let name = match h {
                    HorizOp::Add => "hadd",
                    HorizOp::Min => "hmin",
                    HorizOp::Max => "hmax",
                };
                let _ = writeln!(out, "{pad}r{} = {name}({});", dst.0, operand(a));
            }
            Op::Extract { dst, a, lane } => {
                let _ = writeln!(out, "{pad}r{} = {}.s{lane};", dst.0, operand(a));
            }
            Op::Insert { dst, v, lane } => {
                let _ = writeln!(out, "{pad}r{}.s{lane} = {};", dst.0, operand(v));
            }
            Op::Query { dst, q } => {
                let _ = writeln!(out, "{pad}r{} = {};", dst.0, builtin_name(q));
            }
            Op::Load { dst, buf, idx } => {
                let _ = writeln!(out, "{pad}r{} = arg{}[{}];", dst.0, buf.0, operand(idx));
            }
            Op::VLoad { dst, buf, base } => {
                let _ = writeln!(
                    out,
                    "{pad}r{} = vload(arg{}, {});",
                    dst.0,
                    buf.0,
                    operand(base)
                );
            }
            Op::Store { buf, idx, val } => {
                let _ = writeln!(
                    out,
                    "{pad}arg{}[{}] = {};",
                    buf.0,
                    operand(idx),
                    operand(val)
                );
            }
            Op::VStore { buf, base, val } => {
                let _ = writeln!(
                    out,
                    "{pad}vstore({}, arg{}, {});",
                    operand(val),
                    buf.0,
                    operand(base)
                );
            }
            Op::Atomic {
                op: a,
                buf,
                idx,
                val,
                old,
            } => {
                let name = match a {
                    AtomicOp::Add => "atomic_add",
                    AtomicOp::Inc => "atomic_inc",
                    AtomicOp::Min => "atomic_min",
                    AtomicOp::Max => "atomic_max",
                };
                let prefix = match old {
                    Some(r) => format!("r{} = ", r.0),
                    None => String::new(),
                };
                if matches!(a, AtomicOp::Inc) {
                    let _ = writeln!(out, "{pad}{prefix}{name}(&arg{}[{}]);", buf.0, operand(idx));
                } else {
                    let _ = writeln!(
                        out,
                        "{pad}{prefix}{name}(&arg{}[{}], {});",
                        buf.0,
                        operand(idx),
                        operand(val)
                    );
                }
            }
            Op::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}for (r{v} = {}; r{v} < {}; r{v} += {}) {{",
                    operand(start),
                    operand(end),
                    operand(step),
                    v = var.0
                );
                write_block(out, body, indent + 1);
                let _ = writeln!(out, "{pad}}}");
            }
            Op::If { cond, then, els } => {
                let _ = writeln!(out, "{pad}if ({}) {{", operand(cond));
                write_block(out, then, indent + 1);
                if !els.is_empty() {
                    let _ = writeln!(out, "{pad}}} else {{");
                    write_block(out, els, indent + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
            Op::Barrier => {
                let _ = writeln!(out, "{pad}barrier(CLK_LOCAL_MEM_FENCE);");
            }
        }
    }
}

impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut args = Vec::new();
        for (i, a) in self.args.iter().enumerate() {
            match a {
                ArgDecl::GlobalBuf {
                    elem,
                    access,
                    restrict,
                } => {
                    let c = if !access.writable() { "const " } else { "" };
                    let r = if *restrict { " restrict" } else { "" };
                    args.push(format!("__global {c}{elem}*{r} arg{i}"));
                }
                ArgDecl::LocalBuf { elem } => args.push(format!("__local {elem}* arg{i}")),
                ArgDecl::Scalar { ty } => args.push(format!("{ty} arg{i}")),
            }
        }
        writeln!(f, "__kernel void {}({}) {{", self.name, args.join(", "))?;
        for (i, t) in self.regs.iter().enumerate() {
            writeln!(f, "  {t} r{i};")?;
        }
        let mut body = String::new();
        write_block(&mut body, &self.body, 1);
        f.write_str(&body)?;
        writeln!(f, "}}")
    }
}

/// Render `p` in SSA form: versioned values (`v7:float = ...`), phi nodes
/// with per-predecessor arguments, and `bb<N>` block labels. This is the
/// dump `harness profile` and failing differential tests print for an
/// optimized kernel, next to the flat [`Program`] listing.
pub fn ssa_text(p: &Program) -> String {
    crate::opt::ssa::Ssa::build(p).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::types::{Access, Scalar, VType};

    #[test]
    fn every_op_kind_renders() {
        // One kernel exercising each printable construct; the dump must
        // mention every op's syntax so debugging sessions see real code.
        let mut kb = KernelBuilder::new("all_ops");
        let a = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
        let h = kb.arg_global(Scalar::U32, Access::ReadWrite, false);
        let l = kb.arg_local(Scalar::F32);
        let alpha = kb.arg_scalar(Scalar::F32);
        let gid = kb.query_global_id(0);
        let av = kb.load_scalar_arg(alpha);
        let v = kb.load(Scalar::F32, a, gid.into());
        let vv = kb.vload(Scalar::F32, 4, a, gid.into());
        let m = kb.mad(
            v.into(),
            av.into(),
            Operand::ImmF(1.0),
            VType::scalar(Scalar::F32),
        );
        let s = kb.un(UnOp::Rsqrt, m.into(), VType::scalar(Scalar::F32));
        let c = kb.bin(
            BinOp::Ge,
            s.into(),
            Operand::ImmF(0.5),
            VType::scalar(Scalar::F32),
        );
        let sel = kb.select(
            c.into(),
            s.into(),
            Operand::ImmF(0.0),
            VType::scalar(Scalar::F32),
        );
        let hsum = kb.horiz(HorizOp::Add, vv);
        let ex = kb.extract(vv, 2);
        kb.insert_into(vv, ex.into(), 0);
        let as_u = kb.cast(sel.into(), VType::scalar(Scalar::U32));
        kb.atomic(AtomicOp::Add, h, Operand::ImmI(0), as_u.into());
        let old = kb.atomic_old(
            AtomicOp::Inc,
            h,
            Operand::ImmI(1),
            Operand::ImmI(0),
            Scalar::U32,
        );
        kb.store(l, gid.into(), hsum.into());
        kb.barrier();
        kb.vstore(a, gid.into(), vv.into());
        kb.if_then_else(
            c.into(),
            |kb| {
                kb.store(a, gid.into(), sel.into());
            },
            |kb| {
                kb.store(a, gid.into(), Operand::ImmF(0.0));
            },
        );
        let _ = old;
        let p = kb.finish();
        let s = p.to_string();
        for needle in [
            "__kernel void all_ops",
            "__local float*",
            "float arg3",
            "vload(",
            "vstore(",
            "mad(",
            "rsqrt(",
            "select(",
            "hadd(",
            ".s2",
            ".s0 =",
            "atomic_add(",
            "atomic_inc(",
            "barrier(",
            "if (",
            "} else {",
            "convert(",
            ">=",
        ] {
            assert!(s.contains(needle), "missing `{needle}` in dump:\n{s}");
        }
    }

    #[test]
    fn loop_rendering_shows_bounds() {
        let mut kb = KernelBuilder::new("loops");
        let o = kb.arg_global(Scalar::I32, Access::ReadWrite, false);
        let acc = kb.mov(Operand::ImmI(0), VType::scalar(Scalar::I32));
        kb.for_loop_typed(
            Scalar::I32,
            Operand::ImmI(3),
            Operand::ImmI(99),
            Operand::ImmI(6),
            |kb, i| {
                kb.bin_into(acc, BinOp::Add, acc.into(), i.into());
            },
        );
        let gid = kb.query_global_id(0);
        kb.store(o, gid.into(), acc.into());
        let s = kb.finish().to_string();
        assert!(s.contains("= 3;"), "{s}");
        assert!(s.contains("< 99;"), "{s}");
        assert!(s.contains("+= 6"), "{s}");
    }

    #[test]
    fn dump_contains_structure() {
        let mut kb = KernelBuilder::new("demo");
        let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let out = kb.arg_global(Scalar::F32, Access::WriteOnly, false);
        let gid = kb.query_global_id(0);
        let v = kb.load(Scalar::F32, a, gid.into());
        kb.for_loop(
            Operand::ImmI(0),
            Operand::ImmI(3),
            Operand::ImmI(1),
            |kb, _i| {
                kb.bin_into(v, BinOp::Mul, v.into(), Operand::ImmF(2.0));
            },
        );
        kb.store(out, gid.into(), v.into());
        kb.barrier();
        let p = kb.finish();
        let s = p.to_string();
        assert!(s.contains("__kernel void demo"));
        assert!(s.contains("__global const float* restrict arg0"));
        assert!(s.contains("get_global_id(0)"));
        assert!(s.contains("for ("));
        assert!(s.contains("barrier(CLK_LOCAL_MEM_FENCE);"));
        // every declared register appears
        for i in 0..p.regs.len() {
            assert!(s.contains(&format!("r{i}")), "missing r{i} in:\n{s}");
        }
        let _ = VType::scalar(Scalar::F32); // silence unused import in some cfgs
    }

    #[test]
    fn ssa_text_renders_phis_blocks_and_versions() {
        // A loop-carried accumulator under an `If`: the SSA dump must show
        // block labels, predecessor lists, phi nodes with per-edge args,
        // versioned values with types, and loop machinery.
        let mut kb = KernelBuilder::new("ssa_demo");
        let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let out = kb.arg_global(Scalar::F32, Access::WriteOnly, false);
        let gid = kb.query_global_id(0);
        let acc = kb.mov(Operand::ImmF(0.0), VType::scalar(Scalar::F32));
        kb.for_loop(
            Operand::ImmI(0),
            Operand::ImmI(4),
            Operand::ImmI(1),
            |kb, i| {
                let v = kb.load(Scalar::F32, a, i.into());
                kb.bin_into(acc, BinOp::Add, acc.into(), v.into());
            },
        );
        let big = kb.bin(
            BinOp::Gt,
            acc.into(),
            Operand::ImmF(1.0),
            VType::scalar(Scalar::F32),
        );
        kb.if_then(big.into(), |kb| {
            kb.bin_into(acc, BinOp::Mul, acc.into(), Operand::ImmF(0.5));
        });
        kb.store(out, gid.into(), acc.into());
        let p = kb.finish();
        p.validate().unwrap();

        let s = ssa_text(&p);
        for needle in [
            "ssa kernel \"ssa_demo\"",
            "bb0:  ; preds: entry",
            "phi [bb",
            ":float = ",
            "for_index",
            "loop_bounds 0, 4, 1",
            "if_cond v",
            "store a1[",
            "; preds: bb",
        ] {
            assert!(s.contains(needle), "missing `{needle}` in SSA dump:\n{s}");
        }
        // Round trip: the SSA form lowers back to a valid program computing
        // the same thing (full equality is pinned by the opt tests; here we
        // pin validity plus stable re-rendering).
        let lowered = crate::opt::Pipeline::of(&[]).run(&p);
        assert_eq!(lowered, p, "empty pipeline must be the identity");
        let s2 = ssa_text(&p);
        assert_eq!(s, s2, "SSA rendering must be deterministic");
    }
}
