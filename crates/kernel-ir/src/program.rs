//! Kernel programs: argument/register declarations, body, validation and
//! static resource analysis.

use crate::instr::{ArgDecl, ArgIdx, Builtin, Hints, Op, Operand, Reg};
use crate::ops::bin_result_type;
use crate::types::{Scalar, VType};

/// A complete kernel: what `clCreateKernel` would hand back, before the
/// device compiler (in `ocl-runtime`) checks resource limits.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    pub name: String,
    pub args: Vec<ArgDecl>,
    /// Declared virtual registers; index = `Reg(i)`.
    pub regs: Vec<VType>,
    pub body: Vec<Op>,
    pub hints: Hints,
}

/// A validation diagnostic.
#[derive(Clone, Debug, PartialEq)]
pub struct ValidationError(pub String);

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValidationError {}

impl Program {
    /// Type of register `r`; panics if undeclared (IR construction bug).
    pub fn reg_ty(&self, r: Reg) -> VType {
        self.regs[r.0 as usize]
    }

    /// Whether the kernel body contains any barrier.
    pub fn has_barrier(&self) -> bool {
        self.body.iter().any(|op| {
            let mut found = false;
            op.visit(&mut |o| found |= matches!(o, Op::Barrier));
            found
        })
    }

    /// Whether any register or buffer uses 64-bit floating point — the
    /// property the emulated driver bug (amcd, §V-A) keys on.
    pub fn uses_f64(&self) -> bool {
        self.regs.iter().any(|t| t.elem == Scalar::F64)
            || self.args.iter().any(|a| a.elem() == Scalar::F64)
    }

    /// Whether the kernel body contains `exp`/`log` special functions.
    pub fn uses_transcendental(&self) -> bool {
        let mut found = false;
        for op in &self.body {
            op.visit(&mut |o| {
                if let Op::Un { op: u, .. } = o {
                    found |= matches!(u, crate::instr::UnOp::Exp | crate::instr::UnOp::Log);
                }
            });
        }
        found
    }

    /// Per-work-item register footprint in 128-bit hardware registers.
    ///
    /// This is the quantity the Mali compiler reports and the occupancy /
    /// `CL_OUT_OF_RESOURCES` logic in `mali-gpu` consumes: wide vector types
    /// and unrolled bodies inflate it, narrowing the resident-thread count.
    ///
    /// Estimated by register-allocation-style liveness: the peak number of
    /// simultaneously-live *bits* over a linearized walk of the body
    /// (virtual registers with disjoint live ranges share hardware
    /// registers, and four live `float` scalars pack into one 128-bit
    /// register), rounded up to whole registers with a one-register
    /// scheduling margin.
    pub fn register_footprint(&self) -> u32 {
        let n = self.regs.len();
        if n == 0 {
            return 1;
        }
        struct Walker {
            first: Vec<usize>,
            last: Vec<usize>,
            pos: usize,
        }
        impl Walker {
            fn touch(&mut self, r: Reg) {
                let i = r.0 as usize;
                if self.first[i] == usize::MAX {
                    self.first[i] = self.pos;
                }
                self.last[i] = self.pos;
            }
            fn use_op(&mut self, o: &Operand) {
                if let Operand::Reg(r) = o {
                    self.touch(*r);
                }
            }
            fn walk(&mut self, ops: &[Op]) {
                for op in ops {
                    self.pos += 1;
                    if let Some(d) = op.dst_reg() {
                        self.touch(d);
                    }
                    match op {
                        Op::Bin { a, b, .. } => {
                            self.use_op(a);
                            self.use_op(b);
                        }
                        Op::Un { a, .. } | Op::Mov { a, .. } | Op::Cast { a, .. } => self.use_op(a),
                        Op::Mad { a, b, c, .. } => {
                            self.use_op(a);
                            self.use_op(b);
                            self.use_op(c);
                        }
                        Op::Select { cond, a, b, .. } => {
                            self.use_op(cond);
                            self.use_op(a);
                            self.use_op(b);
                        }
                        Op::Horiz { a, .. } | Op::Extract { a, .. } => self.use_op(a),
                        Op::Insert { v, .. } => self.use_op(v),
                        Op::Load { idx, .. } => self.use_op(idx),
                        Op::VLoad { base, .. } => self.use_op(base),
                        Op::Store { idx, val, .. } => {
                            self.use_op(idx);
                            self.use_op(val);
                        }
                        Op::VStore { base, val, .. } => {
                            self.use_op(base);
                            self.use_op(val);
                        }
                        Op::Atomic { idx, val, .. } => {
                            self.use_op(idx);
                            self.use_op(val);
                        }
                        Op::For {
                            var,
                            start,
                            end,
                            step,
                            body,
                        } => {
                            self.use_op(start);
                            self.use_op(end);
                            self.use_op(step);
                            let loop_start = self.pos;
                            self.walk(body);
                            // Back-edge: the counter, plus every value that
                            // was live before the loop and is used inside
                            // it, stays live to the loop's end.
                            self.pos += 1;
                            self.touch(*var);
                            let loop_end = self.pos;
                            for i in 0..self.first.len() {
                                if self.first[i] < loop_start
                                    && self.last[i] > loop_start
                                    && self.last[i] < loop_end
                                {
                                    self.last[i] = loop_end;
                                }
                            }
                        }
                        Op::If { cond, then, els } => {
                            self.use_op(cond);
                            self.walk(then);
                            self.walk(els);
                        }
                        Op::Query { .. } | Op::Barrier => {}
                    }
                }
            }
        }
        // Linearized pre-order walk; loop bodies count once (temporaries
        // recycle across iterations; loop-carried values are extended to
        // the loop end).
        let mut w = Walker {
            first: vec![usize::MAX; n],
            last: vec![0usize; n],
            pos: 0,
        };
        w.walk(&self.body);
        let (first, last) = (w.first, w.last);
        let mut events: Vec<(usize, i64)> = Vec::new();
        for (i, ty) in self.regs.iter().enumerate() {
            if first[i] == usize::MAX {
                continue;
            }
            let bits = (ty.elem.bytes() * 8 * ty.width as u32) as i64;
            events.push((first[i], bits));
            events.push((last[i] + 1, -bits));
        }
        events.sort();
        let (mut cur, mut peak) = (0i64, 0i64);
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        (peak as u32).div_ceil(128) + 1
    }

    /// Split the top-level body at barriers into phases. A kernel without
    /// barriers has exactly one phase. The interpreter runs each phase for
    /// every work-item in a group before moving to the next phase, which is
    /// exactly the synchronization a barrier guarantees.
    pub fn phases(&self) -> Vec<&[Op]> {
        let mut phases = Vec::new();
        let mut start = 0;
        for (i, op) in self.body.iter().enumerate() {
            if matches!(op, Op::Barrier) {
                phases.push(&self.body[start..i]);
                start = i + 1;
            }
        }
        phases.push(&self.body[start..]);
        phases
    }

    /// Count of dynamic-instruction-free metadata: number of top-level
    /// barriers.
    pub fn barrier_count(&self) -> usize {
        self.body
            .iter()
            .filter(|op| matches!(op, Op::Barrier))
            .count()
    }

    /// Full type/structure validation. Returns every diagnostic found.
    pub fn validate(&self) -> Result<(), Vec<ValidationError>> {
        let mut errs = Vec::new();
        let mut ctx = Validator {
            prog: self,
            errs: &mut errs,
        };
        ctx.block(&self.body, true);
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }
}

struct Validator<'a> {
    prog: &'a Program,
    errs: &'a mut Vec<ValidationError>,
}

impl<'a> Validator<'a> {
    fn err(&mut self, msg: String) {
        self.errs
            .push(ValidationError(format!("{}: {}", self.prog.name, msg)));
    }

    fn reg_ty(&mut self, r: Reg) -> Option<VType> {
        if (r.0 as usize) < self.prog.regs.len() {
            Some(self.prog.regs[r.0 as usize])
        } else {
            self.err(format!("register r{} not declared", r.0));
            None
        }
    }

    /// Check `o` can produce a value of type `want`. Width-1 registers of
    /// the right element type are accepted in vector contexts (OpenCL's
    /// scalar-vector broadcast, which the interpreter implements).
    fn operand(&mut self, o: &Operand, want: VType, what: &str) {
        match o {
            Operand::Reg(r) => {
                if let Some(t) = self.reg_ty(*r) {
                    let broadcast_ok = t.width == 1 && t.elem == want.elem;
                    if t != want && !broadcast_ok {
                        self.err(format!(
                            "{what}: register r{} has type {t}, expected {want}",
                            r.0
                        ));
                    }
                }
            }
            Operand::ImmF(_) => {
                if !want.elem.is_float() {
                    self.err(format!("{what}: float immediate in {want} context"));
                }
            }
            Operand::ImmI(_) => {
                if want.elem == Scalar::Bool {
                    self.err(format!("{what}: integer immediate in bool context"));
                }
            }
        }
    }

    /// Type of a register operand, or `None` for immediates.
    fn operand_reg_ty(&mut self, o: &Operand) -> Option<VType> {
        match o {
            Operand::Reg(r) => self.reg_ty(*r),
            _ => None,
        }
    }

    fn buf(&mut self, b: ArgIdx, what: &str) -> Option<&'a ArgDecl> {
        match self.prog.args.get(b.0 as usize) {
            Some(a @ (ArgDecl::GlobalBuf { .. } | ArgDecl::LocalBuf { .. })) => Some(a),
            Some(ArgDecl::Scalar { .. }) => {
                self.err(format!("{what}: arg {} is a scalar, not a buffer", b.0));
                None
            }
            None => {
                self.err(format!("{what}: arg {} not declared", b.0));
                None
            }
        }
    }

    fn check_readable(&mut self, b: ArgIdx, what: &str) {
        if let Some(ArgDecl::GlobalBuf { access, .. }) = self.prog.args.get(b.0 as usize) {
            if !access.readable() {
                self.err(format!("{what}: read from write-only buffer arg {}", b.0));
            }
        }
    }

    fn check_writable(&mut self, b: ArgIdx, what: &str) {
        if let Some(ArgDecl::GlobalBuf { access, .. }) = self.prog.args.get(b.0 as usize) {
            if !access.writable() {
                self.err(format!(
                    "{what}: write to read-only (const) buffer arg {}",
                    b.0
                ));
            }
        }
    }

    fn index_operand(&mut self, o: &Operand, want_width: u8, what: &str) {
        match o {
            Operand::Reg(r) => {
                if let Some(t) = self.reg_ty(*r) {
                    if !t.elem.is_int() {
                        self.err(format!("{what}: index register must be integer, got {t}"));
                    }
                    if t.width != want_width {
                        self.err(format!(
                            "{what}: index width {} != expected {want_width}",
                            t.width
                        ));
                    }
                }
            }
            Operand::ImmI(v) => {
                if *v < 0 {
                    self.err(format!("{what}: negative immediate index {v}"));
                }
            }
            Operand::ImmF(_) => self.err(format!("{what}: float immediate as index")),
        }
    }

    fn block(&mut self, ops: &[Op], top_level: bool) {
        for op in ops {
            self.op(op, top_level);
        }
    }

    fn op(&mut self, op: &Op, top_level: bool) {
        match op {
            Op::Bin {
                dst,
                op: b,
                a,
                b: rhs,
            } => {
                let Some(dt) = self.reg_ty(*dst) else { return };
                if b.is_compare() {
                    if dt.elem != Scalar::Bool {
                        self.err(format!("compare {b:?} destination must be bool, got {dt}"));
                        return;
                    }
                    // Operand type determined by whichever side is a register.
                    let src_ty = self.operand_reg_ty(a).or_else(|| self.operand_reg_ty(rhs));
                    match src_ty {
                        Some(st) => {
                            if st.width != dt.width {
                                self.err(format!(
                                    "compare width mismatch: operands {st}, dst {dt}"
                                ));
                            }
                            self.operand(a, st, "compare lhs");
                            self.operand(rhs, st, "compare rhs");
                        }
                        None => self.err("compare with two immediates".into()),
                    }
                } else {
                    if b.int_only() && !dt.elem.is_int() {
                        self.err(format!("integer-only op {b:?} on {dt}"));
                    }
                    if dt.elem == Scalar::Bool {
                        self.err(format!("arithmetic {b:?} on bool register"));
                    }
                    debug_assert!(bin_result_type(*b, dt) == dt);
                    self.operand(a, dt, "binop lhs");
                    self.operand(rhs, dt, "binop rhs");
                }
            }
            Op::Un { dst, op: u, a } => {
                let Some(dt) = self.reg_ty(*dst) else { return };
                if u.is_special() && !dt.elem.is_float() {
                    self.err(format!("special function {u:?} on non-float {dt}"));
                }
                self.operand(a, dt, "unop operand");
            }
            Op::Mad { dst, a, b, c } => {
                let Some(dt) = self.reg_ty(*dst) else { return };
                if dt.elem == Scalar::Bool {
                    self.err("mad on bool register".into());
                }
                self.operand(a, dt, "mad a");
                self.operand(b, dt, "mad b");
                self.operand(c, dt, "mad c");
            }
            Op::Select { dst, cond, a, b } => {
                let Some(dt) = self.reg_ty(*dst) else { return };
                self.operand(
                    cond,
                    VType {
                        elem: Scalar::Bool,
                        width: dt.width,
                    },
                    "select cond",
                );
                self.operand(a, dt, "select a");
                self.operand(b, dt, "select b");
            }
            Op::Mov { dst, a } => {
                let Some(dt) = self.reg_ty(*dst) else { return };
                self.operand(a, dt, "mov src");
            }
            Op::Cast { dst, a } => {
                let Some(_) = self.reg_ty(*dst) else { return };
                if let Operand::Reg(r) = a {
                    if let Some(st) = self.reg_ty(*r) {
                        let dt = self.prog.reg_ty(*dst);
                        if st.width != dt.width {
                            self.err(format!("cast width mismatch: {st} -> {dt}"));
                        }
                    }
                }
            }
            Op::Horiz { dst, a, .. } => {
                let Some(dt) = self.reg_ty(*dst) else { return };
                if !dt.is_scalar() {
                    self.err(format!("horizontal reduction dst must be scalar, got {dt}"));
                }
                if let Some(st) = self.operand_reg_ty(a) {
                    if st.elem != dt.elem {
                        self.err(format!("horizontal reduction elem mismatch {st} -> {dt}"));
                    }
                } else {
                    self.err("horizontal reduction of an immediate".into());
                }
            }
            Op::Extract { dst, a, lane } => {
                let Some(dt) = self.reg_ty(*dst) else { return };
                if !dt.is_scalar() {
                    self.err(format!("extract dst must be scalar, got {dt}"));
                }
                if let Some(st) = self.operand_reg_ty(a) {
                    if st.elem != dt.elem {
                        self.err(format!("extract elem mismatch {st} -> {dt}"));
                    }
                    if *lane as usize >= st.width as usize {
                        self.err(format!("extract lane {lane} out of range for {st}"));
                    }
                } else {
                    self.err("extract from an immediate".into());
                }
            }
            Op::Insert { dst, v, lane } => {
                let Some(dt) = self.reg_ty(*dst) else { return };
                if *lane as usize >= dt.width as usize {
                    self.err(format!("insert lane {lane} out of range for {dt}"));
                }
                self.operand(v, VType::scalar(dt.elem), "insert value");
            }
            Op::Query { dst, q } => {
                let Some(dt) = self.reg_ty(*dst) else { return };
                if dt != VType::scalar(Scalar::U32) {
                    self.err(format!(
                        "query {q:?} destination must be scalar uint, got {dt}"
                    ));
                }
                let dim = match q {
                    Builtin::GlobalId(d)
                    | Builtin::LocalId(d)
                    | Builtin::GroupId(d)
                    | Builtin::GlobalSize(d)
                    | Builtin::LocalSize(d)
                    | Builtin::NumGroups(d) => *d,
                };
                if dim > 2 {
                    self.err(format!("query dimension {dim} > 2"));
                }
            }
            Op::Load { dst, buf, idx } => {
                let Some(dt) = self.reg_ty(*dst) else { return };
                // A Load from a by-value scalar argument reads the argument
                // itself (see `KernelBuilder::load_scalar_arg`).
                if let Some(ArgDecl::Scalar { ty }) = self.prog.args.get(buf.0 as usize) {
                    if dt != VType::scalar(*ty) {
                        self.err(format!(
                            "scalar-arg load: register {dt} != argument type {ty}"
                        ));
                    }
                    if !matches!(idx, Operand::ImmI(0)) {
                        self.err("scalar-arg load must use index 0".into());
                    }
                    return;
                }
                if let Some(decl) = self.buf(*buf, "load") {
                    if decl.elem() != dt.elem {
                        self.err(format!(
                            "load elem mismatch: buffer {} vs register {}",
                            decl.elem(),
                            dt.elem
                        ));
                    }
                }
                self.check_readable(*buf, "load");
                self.index_operand(idx, dt.width, "load index");
            }
            Op::VLoad { dst, buf, base } => {
                let Some(dt) = self.reg_ty(*dst) else { return };
                if let Some(decl) = self.buf(*buf, "vload") {
                    if decl.elem() != dt.elem {
                        self.err(format!(
                            "vload elem mismatch: buffer {} vs register {}",
                            decl.elem(),
                            dt.elem
                        ));
                    }
                }
                self.check_readable(*buf, "vload");
                self.index_operand(base, 1, "vload base");
            }
            Op::Store { buf, idx, val } => {
                let decl_elem = self.buf(*buf, "store").map(|d| d.elem());
                self.check_writable(*buf, "store");
                let width = match self.operand_reg_ty(idx) {
                    Some(t) => t.width,
                    None => 1,
                };
                self.index_operand(idx, width, "store index");
                if let Some(e) = decl_elem {
                    self.operand(val, VType { elem: e, width }, "store value");
                }
            }
            Op::VStore { buf, base, val } => {
                let decl_elem = self.buf(*buf, "vstore").map(|d| d.elem());
                self.check_writable(*buf, "vstore");
                self.index_operand(base, 1, "vstore base");
                match (self.operand_reg_ty(val), decl_elem) {
                    (Some(t), Some(e)) if t.elem != e => {
                        self.err(format!("vstore elem mismatch: {t} into {e} buffer"));
                    }
                    (None, _) => self.err("vstore of an immediate".into()),
                    _ => {}
                }
            }
            Op::Atomic {
                buf, idx, val, old, ..
            } => {
                if let Some(decl) = self.buf(*buf, "atomic") {
                    let e = decl.elem();
                    if !e.is_int() {
                        self.err(format!("atomic on non-integer buffer ({e})"));
                    }
                    self.operand(val, VType::scalar(e), "atomic value");
                    if let Some(o) = old {
                        if let Some(ot) = self.reg_ty(*o) {
                            if ot != VType::scalar(e) {
                                self.err(format!(
                                    "atomic old-value register {ot} != buffer elem {e}"
                                ));
                            }
                        }
                    }
                }
                self.check_writable(*buf, "atomic");
                self.index_operand(idx, 1, "atomic index");
            }
            Op::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                if let Some(vt) = self.reg_ty(*var) {
                    if !vt.is_scalar() || !vt.elem.is_int() {
                        self.err(format!("loop variable must be scalar int, got {vt}"));
                    }
                    self.operand(start, vt, "loop start");
                    self.operand(end, vt, "loop end");
                    self.operand(step, vt, "loop step");
                    if let Operand::ImmI(0) = step {
                        self.err("loop step of zero".into());
                    }
                }
                self.block(body, false);
            }
            Op::If { cond, then, els } => {
                self.operand(cond, VType::scalar(Scalar::Bool), "if condition");
                self.block(then, false);
                self.block(els, false);
            }
            Op::Barrier => {
                if !top_level {
                    self.err(
                        "barrier inside control flow (OpenCL requires uniform execution)".into(),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::instr::{BinOp, UnOp};
    use crate::types::Access;

    fn trivial_valid() -> Program {
        let mut kb = KernelBuilder::new("t");
        let buf = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
        let gid = kb.query_global_id(0);
        let v = kb.load(Scalar::F32, buf, gid.into());
        let r = kb.bin(
            BinOp::Add,
            v.into(),
            Operand::ImmF(1.0),
            VType::scalar(Scalar::F32),
        );
        kb.store(buf, gid.into(), r.into());
        kb.finish()
    }

    #[test]
    fn valid_program_validates() {
        let p = trivial_valid();
        assert!(p.validate().is_ok(), "{:?}", p.validate());
    }

    #[test]
    fn detects_type_mismatch() {
        let mut p = trivial_valid();
        // Overwrite the add with a f64-context immediate misuse: make dst a
        // bool register.
        p.regs.push(VType::scalar(Scalar::Bool));
        let r = Reg((p.regs.len() - 1) as u32);
        p.body.push(Op::Bin {
            dst: r,
            op: BinOp::Add,
            a: Operand::ImmI(1),
            b: Operand::ImmI(2),
        });
        let errs = p.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("bool")));
    }

    #[test]
    fn detects_write_to_readonly() {
        let mut kb = KernelBuilder::new("ro");
        let buf = kb.arg_global(Scalar::F32, Access::ReadOnly, false);
        let gid = kb.query_global_id(0);
        kb.store(buf, gid.into(), Operand::ImmF(0.0));
        let p = kb.finish();
        let errs = p.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("read-only")));
    }

    #[test]
    fn detects_barrier_in_loop() {
        let mut kb = KernelBuilder::new("b");
        let i = kb.reg(VType::scalar(Scalar::U32));
        let p = {
            let mut p = kb.finish();
            p.body.push(Op::For {
                var: i,
                start: Operand::ImmI(0),
                end: Operand::ImmI(2),
                step: Operand::ImmI(1),
                body: vec![Op::Barrier],
            });
            p
        };
        let errs = p.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.0.contains("barrier inside control flow")));
    }

    #[test]
    fn detects_undeclared_register() {
        let p = Program {
            name: "u".into(),
            args: vec![],
            regs: vec![],
            body: vec![Op::Un {
                dst: Reg(7),
                op: UnOp::Neg,
                a: Operand::ImmI(1),
            }],
            hints: Hints::default(),
        };
        let errs = p.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("not declared")));
    }

    #[test]
    fn phases_split_on_barrier() {
        let mut kb = KernelBuilder::new("ph");
        let _ = kb.query_local_id(0);
        kb.barrier();
        let _ = kb.query_local_id(0);
        kb.barrier();
        let p = kb.finish();
        let phases = p.phases();
        assert_eq!(phases.len(), 3);
        assert_eq!(phases[0].len(), 1);
        assert_eq!(phases[2].len(), 0);
        assert_eq!(p.barrier_count(), 2);
        assert!(p.has_barrier());
    }

    #[test]
    fn footprint_counts_live_bits() {
        // Peak liveness is at the first consuming add, where a (512b),
        // b (256b), c (32b) and the new a2 (512b) overlap: 1312 bits ->
        // ceil(1312/128)+1 = 12 registers.
        let mut kb = KernelBuilder::new("fp");
        let a = kb.mov(Operand::ImmF(0.0), VType::new(Scalar::F32, 16));
        let b = kb.mov(Operand::ImmF(0.0), VType::new(Scalar::F64, 4));
        let c = kb.mov(Operand::ImmI(0), VType::scalar(Scalar::U32));
        // Keep all three live to the same point.
        let a2 = kb.bin(BinOp::Add, a.into(), a.into(), VType::new(Scalar::F32, 16));
        let b2 = kb.bin(BinOp::Add, b.into(), b.into(), VType::new(Scalar::F64, 4));
        let c2 = kb.bin(BinOp::Add, c.into(), c.into(), VType::scalar(Scalar::U32));
        let _ = (a2, b2, c2);
        let p = kb.finish();
        assert_eq!(p.register_footprint(), 12);

        // Disjoint live ranges coalesce: two sequential f32x16 temporaries
        // peak at roughly one vector's bits, not two.
        let mut kb2 = KernelBuilder::new("fp2");
        let x = kb2.mov(Operand::ImmF(0.0), VType::new(Scalar::F32, 16));
        let _x2 = kb2.bin(BinOp::Add, x.into(), x.into(), VType::new(Scalar::F32, 16));
        let y = kb2.mov(Operand::ImmF(1.0), VType::new(Scalar::F32, 16));
        let _y2 = kb2.bin(BinOp::Add, y.into(), y.into(), VType::new(Scalar::F32, 16));
        let p2 = kb2.finish();
        assert!(
            p2.register_footprint() <= 10,
            "got {}",
            p2.register_footprint()
        );
    }

    #[test]
    fn uses_f64_detection() {
        let mut kb = KernelBuilder::new("d");
        let _ = kb.reg(VType::scalar(Scalar::F64));
        assert!(kb.finish().uses_f64());
        let mut kb2 = KernelBuilder::new("s");
        let _ = kb2.reg(VType::scalar(Scalar::F32));
        assert!(!kb2.finish().uses_f64());
    }
}
