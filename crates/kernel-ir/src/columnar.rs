//! Columnar (SoA) work-group interpreter.
//!
//! The scalar engine in [`crate::exec`] walks one work-item at a time over
//! per-item register files of boxed-width [`Value`](crate::value::Value)s —
//! exactly the AOS layout the source paper tells kernel authors to avoid.
//! This module applies the paper's own lesson to the interpreter: every
//! virtual register becomes one contiguous typed column indexed by work-item
//! (item-major, `idx = item * width + lane`), and the dispatch loop inverts —
//! each decoded instruction is matched **once** and then applied across the
//! whole group as a tight monomorphic loop the host compiler can
//! auto-vectorize.
//!
//! ## Divergence
//!
//! Structured control flow (`If`/`For`) executes with per-item active masks:
//! a branch runs its then/else blocks once each under derived masks, a loop
//! keeps iterating while any item's per-item trip count remains, masking off
//! finished items. Inactive items' registers and memory are never touched.
//!
//! ## Bit-identical event replay
//!
//! Tracers observe a *per-item* event stream (`thread_start`, per-op
//! `op`/`mem`/`loop_iter`), and the sharded engine's determinism contract
//! (DESIGN §10) depends on reproducing the scalar engine's exact sequence.
//! Columnar execution records one [`Batch`] per executed instruction (op
//! class + type, or a run of per-item memory accesses in ascending item
//! order) together with its active mask. Because structured control flow is
//! lockstep — every item active at an instruction executes it at the same
//! batch position — filtering the batch list by one item's mask yields
//! precisely the dynamic event sequence the scalar engine would have emitted
//! for that item. [`replay_phase`] does that per item at each barrier
//! boundary, so `ShardTracer` replay, telemetry counters and
//! `run_ndrange_sharded` byte-identity all hold unchanged.
//!
//! ## Contract
//!
//! The columnar engine requires a validated program (element types of
//! loads/stores match their buffers — [`crate::program`] enforces this), and
//! is only selected when `DecodedProgram::columnar_ok` holds (integer
//! atomics without old-value capture, so batch-applying RMWs in item order
//! leaves the same final bits as the scalar schedule). Two documented
//! divergences from the scalar engine remain: a kernel that would panic at
//! several sites may report a different (item, instruction) first, because
//! execution is instruction-major rather than item-major; and a kernel where
//! one item plainly reads a location another item writes or atomically
//! updates *within the same barrier phase* is a data race under the OpenCL
//! contract both engines already assume — such kernels have no defined
//! output on either engine.

#![allow(clippy::too_many_arguments, clippy::needless_range_loop)]

use std::rc::Rc;

use crate::exec::{DLoc, DOp, DOperand, DecodedProgram, GroupState, NDRange};
use crate::instr::{AtomicOp, BinOp, Builtin, HorizOp, UnOp};
use crate::memory::{BufferData, MemoryPool};
use crate::trace::{AccessKind, ExecTracer, MemAccess, OpClass, Pattern};
use crate::types::{MemSpace, Scalar, VType};
use crate::value::Lanes;

// ---------------------------------------------------------------------------
// Columns
// ---------------------------------------------------------------------------

/// One register's storage across the whole work-group: a contiguous typed
/// vector of `n_items * width` lanes, item-major.
#[derive(Clone, Debug)]
enum Col {
    F32(Vec<f32>),
    F64(Vec<f64>),
    I32(Vec<i32>),
    I64(Vec<i64>),
    U32(Vec<u32>),
    U64(Vec<u64>),
    Bool(Vec<bool>),
}

impl Default for Col {
    fn default() -> Self {
        Col::F32(Vec::new())
    }
}

impl Col {
    fn new(ty: VType, n: usize) -> Col {
        let len = n * ty.width as usize;
        match ty.elem {
            Scalar::F32 => Col::F32(vec![0.0; len]),
            Scalar::F64 => Col::F64(vec![0.0; len]),
            Scalar::I32 => Col::I32(vec![0; len]),
            Scalar::I64 => Col::I64(vec![0; len]),
            Scalar::U32 => Col::U32(vec![0; len]),
            Scalar::U64 => Col::U64(vec![0; len]),
            Scalar::Bool => Col::Bool(vec![false; len]),
        }
    }

    fn matches(&self, ty: VType, n: usize) -> bool {
        let len = n * ty.width as usize;
        match (self, ty.elem) {
            (Col::F32(v), Scalar::F32) => v.len() == len,
            (Col::F64(v), Scalar::F64) => v.len() == len,
            (Col::I32(v), Scalar::I32) => v.len() == len,
            (Col::I64(v), Scalar::I64) => v.len() == len,
            (Col::U32(v), Scalar::U32) => v.len() == len,
            (Col::U64(v), Scalar::U64) => v.len() == len,
            (Col::Bool(v), Scalar::Bool) => v.len() == len,
            _ => false,
        }
    }

    /// Reset to the declared-type zero — the same per-group register init
    /// the scalar engine performs, so uninitialized reads are pinned to zero
    /// on both engines even when scratch is reused across groups.
    fn zero(&mut self) {
        match self {
            Col::F32(v) => v.fill(0.0),
            Col::F64(v) => v.fill(0.0),
            Col::I32(v) => v.fill(0),
            Col::I64(v) => v.fill(0),
            Col::U32(v) => v.fill(0),
            Col::U64(v) => v.fill(0),
            Col::Bool(v) => v.fill(false),
        }
    }
}

/// A read-only strided view of one operand's lanes: `at(item, lane) =
/// p[item * is + lane * ls]`. Register operands use `(is=width, ls=1)`,
/// scalar registers broadcast to wider consumers use `(is=1, ls=0)`, and
/// decode-time constants use `(is=0, ls=1)` over the splatted lane array.
#[derive(Clone, Copy)]
struct V2<'a, T> {
    p: &'a [T],
    is: usize,
    ls: usize,
}

impl<T: Copy> V2<'_, T> {
    #[inline(always)]
    fn at(&self, i: usize, l: usize) -> T {
        self.p[i * self.is + l * self.ls]
    }
}

macro_rules! def_view {
    ($name:ident, $t:ty, $var:ident) => {
        /// Build a typed view of `o`. `taken` is the register index whose
        /// column was `mem::take`n as the destination (or `u32::MAX`);
        /// reads of it are served from `tmp`, the pre-op copy.
        fn $name<'a>(
            o: &'a DOperand,
            cols: &'a [Col],
            tmp: &'a Col,
            taken: u32,
            tys: &[VType],
        ) -> V2<'a, $t> {
            match o {
                DOperand::Reg(r) => {
                    let w = tys[*r as usize].width as usize;
                    let c = if *r == taken { tmp } else { &cols[*r as usize] };
                    let Col::$var(p) = c else {
                        unreachable!("column type mismatch")
                    };
                    V2 { p, is: w, ls: 1 }
                }
                DOperand::RegBc(r, _) => {
                    let c = if *r == taken { tmp } else { &cols[*r as usize] };
                    let Col::$var(p) = c else {
                        unreachable!("column type mismatch")
                    };
                    V2 { p, is: 1, ls: 0 }
                }
                DOperand::Const(v) => {
                    let Lanes::$var(a) = v.lanes() else {
                        unreachable!("column type mismatch")
                    };
                    V2 { p: a, is: 0, ls: 1 }
                }
            }
        }
    };
}

def_view!(view_f32, f32, F32);
def_view!(view_f64, f64, F64);
def_view!(view_i32, i32, I32);
def_view!(view_i64, i64, I64);
def_view!(view_u32, u32, U32);
def_view!(view_u64, u64, U64);
def_view!(view_bool, bool, Bool);

/// Declared/decoded type of an operand.
fn operand_vtype(o: &DOperand, tys: &[VType]) -> VType {
    match o {
        DOperand::Reg(r) => tys[*r as usize],
        DOperand::RegBc(r, w) => VType {
            elem: tys[*r as usize].elem,
            width: *w,
        },
        DOperand::Const(v) => v.vtype(),
    }
}

fn src_is(o: &DOperand, r: u32) -> bool {
    matches!(o, DOperand::Reg(x) | DOperand::RegBc(x, _) if *x == r)
}

/// Take the destination column out of the register file so it can be
/// written while sources are viewed. If any source aliases the destination,
/// the pre-op lanes are first copied into `tmp` (reusing its allocation)
/// and the returned marker tells the views to read from there.
fn take_dst(cols: &mut [Col], tmp: &mut Col, dst: u32, srcs: &[&DOperand]) -> (Col, u32) {
    let taken = if srcs.iter().any(|o| src_is(o, dst)) {
        tmp.clone_from(&cols[dst as usize]);
        dst
    } else {
        u32::MAX
    };
    (std::mem::take(&mut cols[dst as usize]), taken)
}

/// [`take_dst`] for ops whose source is a bare register index.
fn take_dst_reg(cols: &mut [Col], tmp: &mut Col, dst: u32, src: u32) -> (Col, u32) {
    let taken = if src == dst {
        tmp.clone_from(&cols[dst as usize]);
        dst
    } else {
        u32::MAX
    };
    (std::mem::take(&mut cols[dst as usize]), taken)
}

// ---------------------------------------------------------------------------
// Active masks
// ---------------------------------------------------------------------------

/// Which work-items execute the current block.
#[derive(Clone)]
enum AMask {
    /// All items active (the whole-phase common case — no mask checks in
    /// the hot loops).
    Full,
    /// Per-item activity plus the active count.
    Part(Rc<[bool]>, usize),
}

impl AMask {
    #[inline(always)]
    fn active(&self, i: usize) -> bool {
        match self {
            AMask::Full => true,
            AMask::Part(m, _) => m[i],
        }
    }

    fn count(&self, n: usize) -> usize {
        match self {
            AMask::Full => n,
            AMask::Part(_, c) => *c,
        }
    }

    /// The mask as recorded into batches: `None` means every item.
    fn rc(&self) -> Option<Rc<[bool]>> {
        match self {
            AMask::Full => None,
            AMask::Part(m, _) => Some(m.clone()),
        }
    }
}

/// Restrict `parent` to the items where `pred` also holds. When every
/// parent-active item passes, the parent is reused (no allocation, and
/// `Full` stays `Full`).
fn derive_mask(parent: &AMask, n: usize, mut pred: impl FnMut(usize) -> bool) -> AMask {
    let mut v = vec![false; n];
    let mut c = 0usize;
    for (i, slot) in v.iter_mut().enumerate() {
        if parent.active(i) && pred(i) {
            *slot = true;
            c += 1;
        }
    }
    if c == parent.count(n) {
        parent.clone()
    } else {
        AMask::Part(Rc::from(v), c)
    }
}

// ---------------------------------------------------------------------------
// Event recording + per-item replay
// ---------------------------------------------------------------------------

enum BKind {
    /// One arithmetic-pipe op per active item.
    Op(OpClass, VType),
    /// One loop back-edge per active item.
    LoopIter,
    /// One memory access per active item, recorded in ascending item order
    /// starting at this offset into `EventBuf::mems`.
    Mem(u32),
}

struct Batch {
    mask: Option<Rc<[bool]>>,
    kind: BKind,
}

/// Per-phase event log: O(dynamic instructions) batches plus the flat
/// memory-access log, replayed per item at each barrier boundary.
#[derive(Default)]
struct EventBuf {
    batches: Vec<Batch>,
    mems: Vec<MemAccess>,
    /// Gather-address side log: access `k`'s lanes start at `lane_at[k]`
    /// (gathers own `width` entries, scalar/contiguous accesses own none).
    lanes: Vec<u64>,
    lane_at: Vec<u32>,
    cursors: Vec<u32>,
}

impl EventBuf {
    fn clear(&mut self) {
        self.batches.clear();
        self.mems.clear();
        self.lanes.clear();
        self.lane_at.clear();
    }

    fn push_op(&mut self, mask: &AMask, class: OpClass, ty: VType) {
        self.batches.push(Batch {
            mask: mask.rc(),
            kind: BKind::Op(class, ty),
        });
    }

    fn push_loop_iter(&mut self, mask: &AMask) {
        self.batches.push(Batch {
            mask: mask.rc(),
            kind: BKind::LoopIter,
        });
    }

    /// Open a memory batch; the executing op then pushes one access per
    /// active item, in ascending item order.
    fn begin_mem(&mut self, mask: &AMask) {
        let start = self.mems.len() as u32;
        self.batches.push(Batch {
            mask: mask.rc(),
            kind: BKind::Mem(start),
        });
    }

    fn push_mem(&mut self, m: MemAccess) {
        self.lane_at.push(self.lanes.len() as u32);
        self.mems.push(m);
    }
}

/// Replay one phase's batches as per-item event streams. For each item,
/// the batches it was active in — in batch order — are exactly the dynamic
/// instruction sequence the scalar engine would have executed for it, so
/// the tracer observes byte-identical events.
fn replay_phase<T: ExecTracer>(ev: &mut EventBuf, n: usize, first_phase: bool, tracer: &mut T) {
    let EventBuf {
        batches,
        mems,
        lanes,
        lane_at,
        cursors,
    } = ev;
    cursors.clear();
    cursors.resize(batches.len(), 0);
    for i in 0..n {
        if first_phase {
            tracer.thread_start();
        }
        for (bi, b) in batches.iter().enumerate() {
            if let Some(m) = &b.mask {
                if !m[i] {
                    continue;
                }
            }
            match b.kind {
                BKind::Op(class, ty) => tracer.op(class, ty),
                BKind::LoopIter => tracer.loop_iter(),
                BKind::Mem(start) => {
                    let k = (start + cursors[bi]) as usize;
                    let a = &mems[k];
                    let nl = if a.pattern == Pattern::Gather {
                        a.width as usize
                    } else {
                        0
                    };
                    let la = lane_at[k] as usize;
                    tracer.mem(a, &lanes[la..la + nl]);
                    cursors[bi] += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scratch + group driver
// ---------------------------------------------------------------------------

/// Reusable columnar execution state: register columns, id columns, the
/// event log and local buffers survive across groups (and, via the engine's
/// thread-local, across the tasks a pool worker executes).
#[derive(Default)]
pub(crate) struct ColScratch {
    cols: Vec<Col>,
    /// Pre-op destination copy for source/dest aliasing.
    tmp: Col,
    gid: [Vec<u32>; 3],
    lid: [Vec<u32>; 3],
    group_id: [u32; 3],
    /// Scratch for materialized buffer indices of the current memory op.
    idx: Vec<usize>,
    ev: EventBuf,
    grp: GroupState,
    n_items: usize,
}

impl ColScratch {
    /// Make the scratch shape match `dp`/`ndr` (no-op when it already does).
    fn prepare(&mut self, dp: &DecodedProgram, ndr: NDRange) {
        let n = ndr.group_size();
        let shape_ok = self.n_items == n
            && self.cols.len() == dp.reg_tys.len()
            && self
                .cols
                .iter()
                .zip(&dp.reg_tys)
                .all(|(c, t)| c.matches(*t, n));
        if !shape_ok {
            self.cols = dp.reg_tys.iter().map(|t| Col::new(*t, n)).collect();
            self.gid = [vec![0; n], vec![0; n], vec![0; n]];
            self.lid = [vec![0; n], vec![0; n], vec![0; n]];
            self.n_items = n;
        }
        self.grp.prepare(dp);
    }

    /// Zero the register columns, lay out item ids and local buffers for
    /// `group_linear`.
    fn begin_group(&mut self, dp: &DecodedProgram, ndr: NDRange, group_linear: usize) {
        for c in &mut self.cols {
            c.zero();
        }
        let g = ndr.group_coords(group_linear);
        self.group_id = [g[0] as u32, g[1] as u32, g[2] as u32];
        let lsz = ndr.local;
        for lin in 0..self.n_items {
            let l = [
                lin % lsz[0],
                (lin / lsz[0]) % lsz[1],
                lin / (lsz[0] * lsz[1]),
            ];
            for d in 0..3 {
                self.lid[d][lin] = l[d] as u32;
                self.gid[d][lin] = (g[d] * lsz[d] + l[d]) as u32;
            }
        }
        self.grp.begin_group(dp, group_linear);
    }
}

/// Execute one work-group on the columnar engine, emitting the same
/// per-item event stream as the scalar [`crate::exec`] path.
pub(crate) fn exec_group_columnar<T: ExecTracer>(
    dp: &DecodedProgram,
    ndr: NDRange,
    group_linear: usize,
    pool: &mut MemoryPool,
    st: &mut ColScratch,
    tracer: &mut T,
) {
    tracer.group_start();
    st.prepare(dp, ndr);
    st.begin_group(dp, ndr, group_linear);
    let n = ndr.group_size();
    let n_phases = dp.phases.len();
    for (pi, range) in dp.phases.iter().enumerate() {
        st.ev.clear();
        exec_block(dp, ndr, n, pool, st, *range, &AMask::Full);
        replay_phase(&mut st.ev, n, pi == 0, tracer);
        if pi + 1 < n_phases {
            tracer.barrier(n as u32);
        }
    }
}

fn exec_block(
    dp: &DecodedProgram,
    ndr: NDRange,
    n: usize,
    pool: &mut MemoryPool,
    st: &mut ColScratch,
    range: (u32, u32),
    mask: &AMask,
) {
    for i in range.0..range.1 {
        exec_dop(dp, ndr, n, pool, st, &dp.ops[i as usize], mask);
    }
}

// ---------------------------------------------------------------------------
// Monomorphic lane loops
// ---------------------------------------------------------------------------

#[inline]
fn map1<T: Copy, O: Copy>(
    d: &mut [O],
    a: V2<'_, T>,
    mask: &AMask,
    n: usize,
    w: usize,
    f: impl Fn(T) -> O,
) {
    let d = &mut d[..n * w];
    if matches!(mask, AMask::Full) && a.is == w && a.ls == 1 {
        let ap = &a.p[..n * w];
        for (dk, &ak) in d.iter_mut().zip(ap) {
            *dk = f(ak);
        }
        return;
    }
    for i in 0..n {
        if !mask.active(i) {
            continue;
        }
        for l in 0..w {
            d[i * w + l] = f(a.at(i, l));
        }
    }
}

#[inline]
fn map2<T: Copy, O: Copy>(
    d: &mut [O],
    a: V2<'_, T>,
    b: V2<'_, T>,
    mask: &AMask,
    n: usize,
    w: usize,
    f: impl Fn(T, T) -> O,
) {
    let d = &mut d[..n * w];
    if matches!(mask, AMask::Full) && a.is == w && a.ls == 1 && b.is == w && b.ls == 1 {
        let (ap, bp) = (&a.p[..n * w], &b.p[..n * w]);
        for (k, dk) in d.iter_mut().enumerate() {
            *dk = f(ap[k], bp[k]);
        }
        return;
    }
    for i in 0..n {
        if !mask.active(i) {
            continue;
        }
        for l in 0..w {
            d[i * w + l] = f(a.at(i, l), b.at(i, l));
        }
    }
}

#[inline]
fn map3<T: Copy, O: Copy>(
    d: &mut [O],
    a: V2<'_, T>,
    b: V2<'_, T>,
    c: V2<'_, T>,
    mask: &AMask,
    n: usize,
    w: usize,
    f: impl Fn(T, T, T) -> O,
) {
    let d = &mut d[..n * w];
    if matches!(mask, AMask::Full)
        && a.is == w
        && a.ls == 1
        && b.is == w
        && b.ls == 1
        && c.is == w
        && c.ls == 1
    {
        let (ap, bp, cp) = (&a.p[..n * w], &b.p[..n * w], &c.p[..n * w]);
        for (k, dk) in d.iter_mut().enumerate() {
            *dk = f(ap[k], bp[k], cp[k]);
        }
        return;
    }
    for i in 0..n {
        if !mask.active(i) {
            continue;
        }
        for l in 0..w {
            d[i * w + l] = f(a.at(i, l), b.at(i, l), c.at(i, l));
        }
    }
}

/// Lane-wise select: `d = cond ? a : b` (same lane semantics as
/// [`crate::ops::eval_select`]).
#[inline]
fn map_sel<T: Copy>(
    d: &mut [T],
    cond: V2<'_, bool>,
    a: V2<'_, T>,
    b: V2<'_, T>,
    mask: &AMask,
    n: usize,
    w: usize,
) {
    let d = &mut d[..n * w];
    for i in 0..n {
        if !mask.active(i) {
            continue;
        }
        for l in 0..w {
            d[i * w + l] = if cond.at(i, l) {
                a.at(i, l)
            } else {
                b.at(i, l)
            };
        }
    }
}

// ---------------------------------------------------------------------------
// Per-type op kernels: the operator is matched ONCE, outside the lane loop
// ---------------------------------------------------------------------------

macro_rules! def_fbin {
    ($name:ident, $t:ty) => {
        fn $name(
            d: &mut [$t],
            a: V2<'_, $t>,
            b: V2<'_, $t>,
            op: BinOp,
            mask: &AMask,
            n: usize,
            w: usize,
        ) {
            match op {
                BinOp::Add => map2(d, a, b, mask, n, w, |x, y| x + y),
                BinOp::Sub => map2(d, a, b, mask, n, w, |x, y| x - y),
                BinOp::Mul => map2(d, a, b, mask, n, w, |x, y| x * y),
                BinOp::Div => map2(d, a, b, mask, n, w, |x, y| x / y),
                BinOp::Min => map2(d, a, b, mask, n, w, |x, y| x.min(y)),
                BinOp::Max => map2(d, a, b, mask, n, w, |x, y| x.max(y)),
                _ => unreachable!("non-arith float op handled elsewhere"),
            }
        }
    };
}

def_fbin!(fbin_f32, f32);
def_fbin!(fbin_f64, f64);

macro_rules! def_ibin {
    ($name:ident, $t:ty) => {
        fn $name(
            d: &mut [$t],
            a: V2<'_, $t>,
            b: V2<'_, $t>,
            op: BinOp,
            mask: &AMask,
            n: usize,
            w: usize,
        ) {
            let lb = (<$t>::BITS - 1) as $t;
            match op {
                BinOp::Add => map2(d, a, b, mask, n, w, |x, y| x.wrapping_add(y)),
                BinOp::Sub => map2(d, a, b, mask, n, w, |x, y| x.wrapping_sub(y)),
                BinOp::Mul => map2(d, a, b, mask, n, w, |x, y| x.wrapping_mul(y)),
                BinOp::Div => map2(d, a, b, mask, n, w, |x, y| {
                    assert!(y != 0, "integer division by zero in kernel");
                    x.wrapping_div(y)
                }),
                BinOp::Rem => map2(d, a, b, mask, n, w, |x, y| {
                    assert!(y != 0, "integer remainder by zero in kernel");
                    x.wrapping_rem(y)
                }),
                BinOp::Min => map2(d, a, b, mask, n, w, |x, y| x.min(y)),
                BinOp::Max => map2(d, a, b, mask, n, w, |x, y| x.max(y)),
                BinOp::And => map2(d, a, b, mask, n, w, |x, y| x & y),
                BinOp::Or => map2(d, a, b, mask, n, w, |x, y| x | y),
                BinOp::Xor => map2(d, a, b, mask, n, w, |x, y| x ^ y),
                BinOp::Shl => map2(d, a, b, mask, n, w, |x, y| x.wrapping_shl((y & lb) as u32)),
                BinOp::Shr => map2(d, a, b, mask, n, w, |x, y| x.wrapping_shr((y & lb) as u32)),
                _ => unreachable!("comparison handled elsewhere"),
            }
        }
    };
}

def_ibin!(ibin_i32, i32);
def_ibin!(ibin_i64, i64);
def_ibin!(ibin_u32, u32);
def_ibin!(ibin_u64, u64);

macro_rules! def_cmp {
    ($name:ident, $t:ty) => {
        fn $name(
            d: &mut [bool],
            a: V2<'_, $t>,
            b: V2<'_, $t>,
            op: BinOp,
            mask: &AMask,
            n: usize,
            w: usize,
        ) {
            match op {
                BinOp::Lt => map2(d, a, b, mask, n, w, |x, y| x < y),
                BinOp::Le => map2(d, a, b, mask, n, w, |x, y| x <= y),
                BinOp::Gt => map2(d, a, b, mask, n, w, |x, y| x > y),
                BinOp::Ge => map2(d, a, b, mask, n, w, |x, y| x >= y),
                BinOp::Eq => map2(d, a, b, mask, n, w, |x, y| x == y),
                BinOp::Ne => map2(d, a, b, mask, n, w, |x, y| x != y),
                _ => unreachable!("non-compare op in compare dispatch"),
            }
        }
    };
}

def_cmp!(cmp_f32, f32);
def_cmp!(cmp_f64, f64);
def_cmp!(cmp_i32, i32);
def_cmp!(cmp_i64, i64);
def_cmp!(cmp_u32, u32);
def_cmp!(cmp_u64, u64);
def_cmp!(cmp_bool, bool);

macro_rules! def_fun {
    ($name:ident, $t:ty) => {
        fn $name(d: &mut [$t], a: V2<'_, $t>, op: UnOp, mask: &AMask, n: usize, w: usize) {
            match op {
                UnOp::Neg => map1(d, a, mask, n, w, |x| -x),
                UnOp::Abs => map1(d, a, mask, n, w, |x| x.abs()),
                UnOp::Sqrt => map1(d, a, mask, n, w, |x| x.sqrt()),
                UnOp::Rsqrt => map1(d, a, mask, n, w, |x| 1.0 / x.sqrt()),
                UnOp::Exp => map1(d, a, mask, n, w, |x| x.exp()),
                UnOp::Log => map1(d, a, mask, n, w, |x| x.ln()),
                UnOp::Not => panic!("bitwise not on float"),
            }
        }
    };
}

def_fun!(fun_f32, f32);
def_fun!(fun_f64, f64);

macro_rules! def_iun {
    ($name:ident, $t:ty, $msg:literal) => {
        fn $name(d: &mut [$t], a: V2<'_, $t>, op: UnOp, mask: &AMask, n: usize, w: usize) {
            match op {
                UnOp::Neg => map1(d, a, mask, n, w, |x| x.wrapping_neg()),
                UnOp::Abs => map1(d, a, mask, n, w, |x| x.wrapping_abs()),
                UnOp::Not => map1(d, a, mask, n, w, |x| !x),
                other => panic!(concat!("{:?} on ", $msg), other),
            }
        }
    };
}

def_iun!(iun_i32, i32, "int lanes");
def_iun!(iun_i64, i64, "long lanes");

macro_rules! def_uun {
    ($name:ident, $t:ty, $msg:literal) => {
        fn $name(d: &mut [$t], a: V2<'_, $t>, op: UnOp, mask: &AMask, n: usize, w: usize) {
            match op {
                UnOp::Neg => map1(d, a, mask, n, w, |x| x.wrapping_neg()),
                UnOp::Abs => map1(d, a, mask, n, w, |x| x),
                UnOp::Not => map1(d, a, mask, n, w, |x| !x),
                other => panic!(concat!("{:?} on ", $msg), other),
            }
        }
    };
}

def_uun!(uun_u32, u32, "uint lanes");
def_uun!(uun_u64, u64, "ulong lanes");

fn bun_bool(d: &mut [bool], a: V2<'_, bool>, op: UnOp, mask: &AMask, n: usize, w: usize) {
    match op {
        UnOp::Not => map1(d, a, mask, n, w, |x| !x),
        other => panic!("{other:?} on bool lanes"),
    }
}

// ---------------------------------------------------------------------------
// Compute ops
// ---------------------------------------------------------------------------

fn bin_col(
    cols: &mut [Col],
    tmp: &mut Col,
    tys: &[VType],
    mask: &AMask,
    n: usize,
    dst: u32,
    op: BinOp,
    a: &DOperand,
    b: &DOperand,
) {
    let sty = operand_vtype(a, tys);
    let w = sty.width as usize;
    let (mut d, taken) = take_dst(cols, tmp, dst, &[a, b]);
    if op.is_compare() {
        macro_rules! cmp_arm {
            ($view:ident, $cmp:ident) => {{
                let va = $view(a, cols, tmp, taken, tys);
                let vb = $view(b, cols, tmp, taken, tys);
                let Col::Bool(dv) = &mut d else {
                    unreachable!("compare destination must be a bool column")
                };
                $cmp(dv, va, vb, op, mask, n, w);
            }};
        }
        match sty.elem {
            Scalar::F32 => cmp_arm!(view_f32, cmp_f32),
            Scalar::F64 => cmp_arm!(view_f64, cmp_f64),
            Scalar::I32 => cmp_arm!(view_i32, cmp_i32),
            Scalar::I64 => cmp_arm!(view_i64, cmp_i64),
            Scalar::U32 => cmp_arm!(view_u32, cmp_u32),
            Scalar::U64 => cmp_arm!(view_u64, cmp_u64),
            Scalar::Bool => cmp_arm!(view_bool, cmp_bool),
        }
    } else {
        macro_rules! arith_arm {
            ($view:ident, $f:ident, $var:ident) => {{
                let va = $view(a, cols, tmp, taken, tys);
                let vb = $view(b, cols, tmp, taken, tys);
                let Col::$var(dv) = &mut d else {
                    unreachable!("column type mismatch")
                };
                $f(dv, va, vb, op, mask, n, w);
            }};
        }
        match sty.elem {
            Scalar::F32 => {
                assert!(!op.int_only(), "{op:?} is integer-only, applied to float");
                arith_arm!(view_f32, fbin_f32, F32)
            }
            Scalar::F64 => {
                assert!(!op.int_only(), "{op:?} is integer-only, applied to double");
                arith_arm!(view_f64, fbin_f64, F64)
            }
            Scalar::I32 => arith_arm!(view_i32, ibin_i32, I32),
            Scalar::I64 => arith_arm!(view_i64, ibin_i64, I64),
            Scalar::U32 => arith_arm!(view_u32, ibin_u32, U32),
            Scalar::U64 => arith_arm!(view_u64, ibin_u64, U64),
            Scalar::Bool => panic!("arithmetic binop {op:?} on bool vectors"),
        }
    }
    cols[dst as usize] = d;
}

fn un_col(
    cols: &mut [Col],
    tmp: &mut Col,
    tys: &[VType],
    mask: &AMask,
    n: usize,
    dst: u32,
    op: UnOp,
    a: &DOperand,
) {
    let sty = operand_vtype(a, tys);
    let w = sty.width as usize;
    let (mut d, taken) = take_dst(cols, tmp, dst, &[a]);
    macro_rules! un_arm {
        ($view:ident, $f:ident, $var:ident) => {{
            let va = $view(a, cols, tmp, taken, tys);
            let Col::$var(dv) = &mut d else {
                unreachable!("column type mismatch")
            };
            $f(dv, va, op, mask, n, w);
        }};
    }
    match sty.elem {
        Scalar::F32 => un_arm!(view_f32, fun_f32, F32),
        Scalar::F64 => un_arm!(view_f64, fun_f64, F64),
        Scalar::I32 => un_arm!(view_i32, iun_i32, I32),
        Scalar::I64 => un_arm!(view_i64, iun_i64, I64),
        Scalar::U32 => un_arm!(view_u32, uun_u32, U32),
        Scalar::U64 => un_arm!(view_u64, uun_u64, U64),
        Scalar::Bool => un_arm!(view_bool, bun_bool, Bool),
    }
    cols[dst as usize] = d;
}

fn mad_col(
    cols: &mut [Col],
    tmp: &mut Col,
    tys: &[VType],
    mask: &AMask,
    n: usize,
    dst: u32,
    a: &DOperand,
    b: &DOperand,
    c: &DOperand,
) {
    let sty = operand_vtype(a, tys);
    let w = sty.width as usize;
    let (mut d, taken) = take_dst(cols, tmp, dst, &[a, b, c]);
    macro_rules! mad_arm {
        ($view:ident, $var:ident, $f:expr) => {{
            let va = $view(a, cols, tmp, taken, tys);
            let vb = $view(b, cols, tmp, taken, tys);
            let vc = $view(c, cols, tmp, taken, tys);
            let Col::$var(dv) = &mut d else {
                unreachable!("column type mismatch")
            };
            map3(dv, va, vb, vc, mask, n, w, $f);
        }};
    }
    match sty.elem {
        // Fused multiply-add, single rounding — same as the scalar engine.
        Scalar::F32 => mad_arm!(view_f32, F32, |x: f32, y, z| x.mul_add(y, z)),
        Scalar::F64 => mad_arm!(view_f64, F64, |x: f64, y, z| x.mul_add(y, z)),
        // Integer mad: multiply then add, wrapping.
        Scalar::I32 => mad_arm!(view_i32, I32, |x: i32, y, z| x
            .wrapping_mul(y)
            .wrapping_add(z)),
        Scalar::I64 => mad_arm!(view_i64, I64, |x: i64, y, z| x
            .wrapping_mul(y)
            .wrapping_add(z)),
        Scalar::U32 => mad_arm!(view_u32, U32, |x: u32, y, z| x
            .wrapping_mul(y)
            .wrapping_add(z)),
        Scalar::U64 => mad_arm!(view_u64, U64, |x: u64, y, z| x
            .wrapping_mul(y)
            .wrapping_add(z)),
        Scalar::Bool => panic!("arithmetic binop Mul on bool vectors"),
    }
    cols[dst as usize] = d;
}

fn select_col(
    cols: &mut [Col],
    tmp: &mut Col,
    tys: &[VType],
    mask: &AMask,
    n: usize,
    dst: u32,
    cond: &DOperand,
    a: &DOperand,
    b: &DOperand,
) {
    let sty = operand_vtype(a, tys);
    let w = sty.width as usize;
    let (mut d, taken) = take_dst(cols, tmp, dst, &[cond, a, b]);
    let cv = view_bool(cond, cols, tmp, taken, tys);
    macro_rules! sel_arm {
        ($view:ident, $var:ident) => {{
            let va = $view(a, cols, tmp, taken, tys);
            let vb = $view(b, cols, tmp, taken, tys);
            let Col::$var(dv) = &mut d else {
                unreachable!("column type mismatch")
            };
            map_sel(dv, cv, va, vb, mask, n, w);
        }};
    }
    match sty.elem {
        Scalar::F32 => sel_arm!(view_f32, F32),
        Scalar::F64 => sel_arm!(view_f64, F64),
        Scalar::I32 => sel_arm!(view_i32, I32),
        Scalar::I64 => sel_arm!(view_i64, I64),
        Scalar::U32 => sel_arm!(view_u32, U32),
        Scalar::U64 => sel_arm!(view_u64, U64),
        Scalar::Bool => sel_arm!(view_bool, Bool),
    }
    cols[dst as usize] = d;
}

fn mov_col(
    cols: &mut [Col],
    tmp: &mut Col,
    tys: &[VType],
    mask: &AMask,
    n: usize,
    dst: u32,
    a: &DOperand,
) {
    let sty = operand_vtype(a, tys);
    let w = sty.width as usize;
    let (mut d, taken) = take_dst(cols, tmp, dst, &[a]);
    macro_rules! mov_arm {
        ($view:ident, $var:ident) => {{
            let va = $view(a, cols, tmp, taken, tys);
            let Col::$var(dv) = &mut d else {
                unreachable!("column type mismatch")
            };
            map1(dv, va, mask, n, w, |x| x);
        }};
    }
    match sty.elem {
        Scalar::F32 => mov_arm!(view_f32, F32),
        Scalar::F64 => mov_arm!(view_f64, F64),
        Scalar::I32 => mov_arm!(view_i32, I32),
        Scalar::I64 => mov_arm!(view_i64, I64),
        Scalar::U32 => mov_arm!(view_u32, U32),
        Scalar::U64 => mov_arm!(view_u64, U64),
        Scalar::Bool => mov_arm!(view_bool, Bool),
    }
    cols[dst as usize] = d;
}

/// Write an int-sourced cast through `i64`, exactly like `Value::cast`'s
/// integer path (int→int conversions must be exact, so they never touch
/// `f64`).
fn cast_int<S: Copy>(
    d: &mut Col,
    s: V2<'_, S>,
    cv: impl Fn(S) -> i64,
    mask: &AMask,
    n: usize,
    w: usize,
) {
    match d {
        Col::I32(dv) => map1(dv, s, mask, n, w, |x| cv(x) as i32),
        Col::I64(dv) => map1(dv, s, mask, n, w, &cv),
        Col::U32(dv) => map1(dv, s, mask, n, w, |x| cv(x) as u32),
        Col::U64(dv) => map1(dv, s, mask, n, w, |x| cv(x) as u64),
        Col::Bool(dv) => map1(dv, s, mask, n, w, |x| cv(x) != 0),
        _ => unreachable!("integer cast lands in an int or bool column"),
    }
}

/// Write a cast through `f64`, exactly like `Value::cast`'s `out_from_f64`
/// path (every lane conversion mirrors `lane_f64` + the destination `as`
/// cast).
fn cast_f64<S: Copy>(
    d: &mut Col,
    s: V2<'_, S>,
    cv: impl Fn(S) -> f64,
    mask: &AMask,
    n: usize,
    w: usize,
) {
    match d {
        Col::F32(dv) => map1(dv, s, mask, n, w, |x| cv(x) as f32),
        Col::F64(dv) => map1(dv, s, mask, n, w, &cv),
        Col::I32(dv) => map1(dv, s, mask, n, w, |x| cv(x) as i32),
        Col::I64(dv) => map1(dv, s, mask, n, w, |x| cv(x) as i64),
        Col::U32(dv) => map1(dv, s, mask, n, w, |x| cv(x) as u32),
        Col::U64(dv) => map1(dv, s, mask, n, w, |x| cv(x) as u64),
        Col::Bool(dv) => map1(dv, s, mask, n, w, |x| cv(x) != 0.0),
    }
}

fn vr<T>(p: &[T], w: usize) -> V2<'_, T> {
    V2 { p, is: w, ls: 1 }
}

fn cast_col(
    cols: &mut [Col],
    tmp: &mut Col,
    tys: &[VType],
    mask: &AMask,
    n: usize,
    dst: u32,
    src: u32,
    to: Scalar,
) {
    let sty = tys[src as usize];
    let w = sty.width as usize;
    let (mut d, taken) = take_dst_reg(cols, tmp, dst, src);
    let s = if taken == src {
        &*tmp
    } else {
        &cols[src as usize]
    };
    if sty.elem.is_int() && (to.is_int() || to == Scalar::Bool) {
        match s {
            Col::I32(v) => cast_int(&mut d, vr(v, w), |x| x as i64, mask, n, w),
            Col::I64(v) => cast_int(&mut d, vr(v, w), |x| x, mask, n, w),
            Col::U32(v) => cast_int(&mut d, vr(v, w), |x| x as u64 as i64, mask, n, w),
            Col::U64(v) => cast_int(&mut d, vr(v, w), |x| x as i64, mask, n, w),
            _ => unreachable!("column type mismatch"),
        }
    } else {
        match s {
            Col::F32(v) => cast_f64(&mut d, vr(v, w), |x| x as f64, mask, n, w),
            Col::F64(v) => cast_f64(&mut d, vr(v, w), |x| x, mask, n, w),
            Col::I32(v) => cast_f64(&mut d, vr(v, w), |x| x as f64, mask, n, w),
            Col::I64(v) => cast_f64(&mut d, vr(v, w), |x| x as f64, mask, n, w),
            Col::U32(v) => cast_f64(&mut d, vr(v, w), |x| x as f64, mask, n, w),
            Col::U64(v) => cast_f64(&mut d, vr(v, w), |x| x as f64, mask, n, w),
            Col::Bool(v) => cast_f64(&mut d, vr(v, w), |x| if x { 1.0 } else { 0.0 }, mask, n, w),
        }
    }
    cols[dst as usize] = d;
}

fn horiz_col(
    cols: &mut [Col],
    tmp: &mut Col,
    mask: &AMask,
    n: usize,
    dst: u32,
    op: HorizOp,
    src: u32,
    sw: usize,
) {
    let (mut d, taken) = take_dst_reg(cols, tmp, dst, src);
    let s = if taken == src {
        &*tmp
    } else {
        &cols[src as usize]
    };
    macro_rules! fhoriz {
        ($sv:expr, $dv:expr, $t:ident) => {{
            // Same left-to-right folds as Value::reduce_*.
            for i in 0..n {
                if !mask.active(i) {
                    continue;
                }
                let row = &$sv[i * sw..i * sw + sw];
                $dv[i] = match op {
                    HorizOp::Add => row.iter().sum(),
                    HorizOp::Min => row.iter().copied().fold($t::INFINITY, $t::min),
                    HorizOp::Max => row.iter().copied().fold($t::NEG_INFINITY, $t::max),
                };
            }
        }};
    }
    macro_rules! ihoriz {
        ($sv:expr, $dv:expr, $zero:expr) => {{
            for i in 0..n {
                if !mask.active(i) {
                    continue;
                }
                let row = &$sv[i * sw..i * sw + sw];
                $dv[i] = match op {
                    HorizOp::Add => row.iter().fold($zero, |acc, &x| acc.wrapping_add(x)),
                    HorizOp::Min => *row.iter().min().unwrap(),
                    HorizOp::Max => *row.iter().max().unwrap(),
                };
            }
        }};
    }
    match (s, &mut d) {
        (Col::F32(sv), Col::F32(dv)) => fhoriz!(sv, dv, f32),
        (Col::F64(sv), Col::F64(dv)) => fhoriz!(sv, dv, f64),
        (Col::I32(sv), Col::I32(dv)) => ihoriz!(sv, dv, 0i32),
        (Col::I64(sv), Col::I64(dv)) => ihoriz!(sv, dv, 0i64),
        (Col::U32(sv), Col::U32(dv)) => ihoriz!(sv, dv, 0u32),
        (Col::U64(sv), Col::U64(dv)) => ihoriz!(sv, dv, 0u64),
        (Col::Bool(_), _) => match op {
            HorizOp::Add => panic!("reduce_add on bool vector"),
            HorizOp::Min => panic!("reduce_min on bool vector"),
            HorizOp::Max => panic!("reduce_max on bool vector"),
        },
        _ => unreachable!("column type mismatch"),
    }
    cols[dst as usize] = d;
}

fn extract_col(
    cols: &mut [Col],
    tmp: &mut Col,
    tys: &[VType],
    mask: &AMask,
    n: usize,
    dst: u32,
    src: u32,
    lane: usize,
) {
    let sw = tys[src as usize].width as usize;
    assert!(lane < sw, "extract lane {lane} out of range");
    let (mut d, taken) = take_dst_reg(cols, tmp, dst, src);
    let s = if taken == src {
        &*tmp
    } else {
        &cols[src as usize]
    };
    macro_rules! ex_arm {
        ($sv:expr, $dv:expr) => {{
            for i in 0..n {
                if mask.active(i) {
                    $dv[i] = $sv[i * sw + lane];
                }
            }
        }};
    }
    match (s, &mut d) {
        (Col::F32(sv), Col::F32(dv)) => ex_arm!(sv, dv),
        (Col::F64(sv), Col::F64(dv)) => ex_arm!(sv, dv),
        (Col::I32(sv), Col::I32(dv)) => ex_arm!(sv, dv),
        (Col::I64(sv), Col::I64(dv)) => ex_arm!(sv, dv),
        (Col::U32(sv), Col::U32(dv)) => ex_arm!(sv, dv),
        (Col::U64(sv), Col::U64(dv)) => ex_arm!(sv, dv),
        (Col::Bool(sv), Col::Bool(dv)) => ex_arm!(sv, dv),
        _ => unreachable!("column type mismatch"),
    }
    cols[dst as usize] = d;
}

fn insert_col(
    cols: &mut [Col],
    tmp: &mut Col,
    tys: &[VType],
    mask: &AMask,
    n: usize,
    dst: u32,
    v: &DOperand,
    lane: usize,
) {
    let w = tys[dst as usize].width as usize;
    assert!(lane < w, "insert lane {lane} out of range");
    // `take_dst` hands back the live column, so inactive items and the
    // other lanes of active items keep their current values.
    let (mut d, taken) = take_dst(cols, tmp, dst, &[v]);
    macro_rules! ins_arm {
        ($view:ident, $var:ident) => {{
            let vv = $view(v, cols, tmp, taken, tys);
            let Col::$var(dv) = &mut d else {
                unreachable!("column type mismatch")
            };
            for i in 0..n {
                if mask.active(i) {
                    dv[i * w + lane] = vv.at(i, 0);
                }
            }
        }};
    }
    match tys[dst as usize].elem {
        Scalar::F32 => ins_arm!(view_f32, F32),
        Scalar::F64 => ins_arm!(view_f64, F64),
        Scalar::I32 => ins_arm!(view_i32, I32),
        Scalar::I64 => ins_arm!(view_i64, I64),
        Scalar::U32 => ins_arm!(view_u32, U32),
        Scalar::U64 => ins_arm!(view_u64, U64),
        Scalar::Bool => ins_arm!(view_bool, Bool),
    }
    cols[dst as usize] = d;
}

// ---------------------------------------------------------------------------
// Memory ops
// ---------------------------------------------------------------------------

/// Materialize `lanes` buffer indices per active item into `out`, ascending
/// item order then ascending lane order — the same order the scalar engine
/// evaluates (and panics on) them. Conversions mirror `Value::lane_index`.
fn fill_indices(
    out: &mut Vec<usize>,
    o: &DOperand,
    cols: &[Col],
    tmp: &Col,
    taken: u32,
    tys: &[VType],
    lanes: usize,
    mask: &AMask,
    n: usize,
) {
    out.clear();
    macro_rules! go {
        ($view:ident, $cv:expr) => {{
            let v = $view(o, cols, tmp, taken, tys);
            for i in 0..n {
                if !mask.active(i) {
                    continue;
                }
                for l in 0..lanes {
                    let x: i64 = ($cv)(v.at(i, l));
                    assert!(x >= 0, "negative buffer index {x}");
                    out.push(x as usize);
                }
            }
        }};
    }
    match operand_vtype(o, tys).elem {
        Scalar::F32 => go!(view_f32, |x: f32| x as i64),
        Scalar::F64 => go!(view_f64, |x: f64| x as i64),
        Scalar::I32 => go!(view_i32, |x: i32| x as i64),
        Scalar::I64 => go!(view_i64, |x: i64| x),
        Scalar::U32 => go!(view_u32, |x: u32| x as i64),
        Scalar::U64 => go!(view_u64, |x: u64| x as i64),
        Scalar::Bool => go!(view_bool, |x: bool| x as i64),
    }
}

/// Read lane 0 of `o` as `i64` for each active item (loop bounds).
/// Conversions mirror `Value::lane_i64`.
fn fill_lane0_i64(
    out: &mut [i64],
    o: &DOperand,
    cols: &[Col],
    tmp: &Col,
    tys: &[VType],
    mask: &AMask,
    n: usize,
) {
    macro_rules! go {
        ($view:ident, $cv:expr) => {{
            let v = $view(o, cols, tmp, u32::MAX, tys);
            for i in 0..n {
                if mask.active(i) {
                    out[i] = ($cv)(v.at(i, 0));
                }
            }
        }};
    }
    match operand_vtype(o, tys).elem {
        Scalar::F32 => go!(view_f32, |x: f32| x as i64),
        Scalar::F64 => go!(view_f64, |x: f64| x as i64),
        Scalar::I32 => go!(view_i32, |x: i32| x as i64),
        Scalar::I64 => go!(view_i64, |x: i64| x),
        Scalar::U32 => go!(view_u32, |x: u32| x as i64),
        Scalar::U64 => go!(view_u64, |x: u64| x as i64),
        Scalar::Bool => go!(view_bool, |x: bool| x as i64),
    }
}

/// Push one indexed access event, shaped exactly like the scalar engine's
/// `emit_global_access`/`emit_local_access`: scalar for one lane, gather
/// with per-lane addresses (recorded in the event buffer's side log)
/// otherwise.
#[allow(clippy::too_many_arguments)]
fn push_indexed(
    ev: &mut EventBuf,
    space: MemSpace,
    kind: AccessKind,
    stream: u32,
    base: u64,
    elem: Scalar,
    w: usize,
    idxs: &[usize],
) {
    let eb = elem.bytes();
    if w == 1 {
        ev.push_mem(MemAccess {
            space,
            kind,
            stream,
            addr: base + idxs[0] as u64 * eb as u64,
            bytes: eb,
            elem,
            width: 1,
            pattern: Pattern::Scalar,
        });
    } else {
        let la = ev.lanes.len();
        ev.lanes
            .extend(idxs[..w].iter().map(|&ix| base + ix as u64 * eb as u64));
        ev.lane_at.push(la as u32);
        ev.mems.push(MemAccess {
            space,
            kind,
            stream,
            addr: ev.lanes[la],
            bytes: eb * w as u32,
            elem,
            width: w as u8,
            pattern: Pattern::Gather,
        });
    }
}

/// One contiguous vload/vstore event (scalar when width is 1).
fn mem_contig(space: MemSpace, kind: AccessKind, stream: u32, addr: u64, ty: VType) -> MemAccess {
    MemAccess {
        space,
        kind,
        stream,
        addr,
        bytes: ty.bytes(),
        elem: ty.elem,
        width: ty.width,
        pattern: if ty.width == 1 {
            Pattern::Scalar
        } else {
            Pattern::Contiguous
        },
    }
}

/// Set the loop-variable column from the per-item counters.
fn set_loop_var(c: &mut Col, elem: Scalar, cur: &[i64], im: &AMask, n: usize) {
    match (elem, c) {
        (Scalar::I32, Col::I32(v)) => {
            for i in 0..n {
                if im.active(i) {
                    v[i] = cur[i] as i32;
                }
            }
        }
        (Scalar::I64, Col::I64(v)) => {
            for i in 0..n {
                if im.active(i) {
                    v[i] = cur[i];
                }
            }
        }
        (Scalar::U32, Col::U32(v)) => {
            for i in 0..n {
                if im.active(i) {
                    v[i] = cur[i] as u32;
                }
            }
        }
        (Scalar::U64, Col::U64(v)) => {
            for i in 0..n {
                if im.active(i) {
                    v[i] = cur[i] as u64;
                }
            }
        }
        (other @ (Scalar::F32 | Scalar::F64 | Scalar::Bool), _) => {
            panic!("loop counter of type {other}")
        }
        _ => unreachable!("column type mismatch"),
    }
}

// ---------------------------------------------------------------------------
// The instruction dispatch: matched once, executed across the whole group
// ---------------------------------------------------------------------------

fn exec_dop(
    dp: &DecodedProgram,
    ndr: NDRange,
    n: usize,
    pool: &mut MemoryPool,
    st: &mut ColScratch,
    op: &DOp,
    mask: &AMask,
) {
    let tys = &dp.reg_tys;
    match op {
        DOp::Bin {
            dst,
            op,
            a,
            b,
            class,
            ty,
        } => {
            st.ev.push_op(mask, *class, *ty);
            bin_col(&mut st.cols, &mut st.tmp, tys, mask, n, *dst, *op, a, b);
        }
        DOp::Un {
            dst,
            op,
            a,
            class,
            ty,
        } => {
            st.ev.push_op(mask, *class, *ty);
            un_col(&mut st.cols, &mut st.tmp, tys, mask, n, *dst, *op, a);
        }
        DOp::Mad { dst, a, b, c, ty } => {
            st.ev.push_op(mask, OpClass::Mad, *ty);
            mad_col(&mut st.cols, &mut st.tmp, tys, mask, n, *dst, a, b, c);
        }
        DOp::Select {
            dst,
            cond,
            a,
            b,
            ty,
        } => {
            st.ev.push_op(mask, OpClass::Move, *ty);
            select_col(&mut st.cols, &mut st.tmp, tys, mask, n, *dst, cond, a, b);
        }
        DOp::Mov { dst, a, ty } => {
            st.ev.push_op(mask, OpClass::Move, *ty);
            mov_col(&mut st.cols, &mut st.tmp, tys, mask, n, *dst, a);
        }
        DOp::CastReg { dst, src, to, ty } => {
            st.ev.push_op(mask, OpClass::Move, *ty);
            cast_col(&mut st.cols, &mut st.tmp, tys, mask, n, *dst, *src, *to);
        }
        DOp::Horiz { dst, op, src, ty } => {
            st.ev.push_op(mask, OpClass::Horizontal, *ty);
            let sw = tys[*src as usize].width as usize;
            horiz_col(&mut st.cols, &mut st.tmp, mask, n, *dst, *op, *src, sw);
        }
        DOp::Extract { dst, src, lane, ty } => {
            st.ev.push_op(mask, OpClass::Move, *ty);
            extract_col(
                &mut st.cols,
                &mut st.tmp,
                tys,
                mask,
                n,
                *dst,
                *src,
                *lane as usize,
            );
        }
        DOp::Insert { dst, v, lane, ty } => {
            st.ev.push_op(mask, OpClass::Move, *ty);
            insert_col(
                &mut st.cols,
                &mut st.tmp,
                tys,
                mask,
                n,
                *dst,
                v,
                *lane as usize,
            );
        }
        DOp::Query { dst, q } => {
            st.ev
                .push_op(mask, OpClass::Move, VType::scalar(Scalar::U32));
            let Col::U32(dv) = &mut st.cols[*dst as usize] else {
                unreachable!("query destination must be a u32 column")
            };
            match q {
                Builtin::GlobalId(dm) => {
                    let g = &st.gid[*dm as usize];
                    for i in 0..n {
                        if mask.active(i) {
                            dv[i] = g[i];
                        }
                    }
                }
                Builtin::LocalId(dm) => {
                    let l = &st.lid[*dm as usize];
                    for i in 0..n {
                        if mask.active(i) {
                            dv[i] = l[i];
                        }
                    }
                }
                Builtin::GroupId(dm)
                | Builtin::GlobalSize(dm)
                | Builtin::LocalSize(dm)
                | Builtin::NumGroups(dm) => {
                    let c = match q {
                        Builtin::GroupId(_) => st.group_id[*dm as usize],
                        Builtin::GlobalSize(_) => ndr.global[*dm as usize] as u32,
                        Builtin::LocalSize(_) => ndr.local[*dm as usize] as u32,
                        _ => ndr.num_groups()[*dm as usize] as u32,
                    };
                    for i in 0..n {
                        if mask.active(i) {
                            dv[i] = c;
                        }
                    }
                }
            }
        }
        DOp::LoadScalarArg { dst, v } => {
            // Free register write: no event, like the scalar engine.
            let d = &mut st.cols[*dst as usize];
            macro_rules! sc_arm {
                ($var:ident, $dv:ident, $a:ident) => {{
                    let x = $a[0];
                    for i in 0..n {
                        if mask.active(i) {
                            $dv[i] = x;
                        }
                    }
                }};
            }
            match (d, v.lanes()) {
                (Col::F32(dv), Lanes::F32(a)) => sc_arm!(F32, dv, a),
                (Col::F64(dv), Lanes::F64(a)) => sc_arm!(F64, dv, a),
                (Col::I32(dv), Lanes::I32(a)) => sc_arm!(I32, dv, a),
                (Col::I64(dv), Lanes::I64(a)) => sc_arm!(I64, dv, a),
                (Col::U32(dv), Lanes::U32(a)) => sc_arm!(U32, dv, a),
                (Col::U64(dv), Lanes::U64(a)) => sc_arm!(U64, dv, a),
                (Col::Bool(dv), Lanes::Bool(a)) => sc_arm!(Bool, dv, a),
                _ => unreachable!("column type mismatch"),
            }
        }
        DOp::Load {
            dst,
            loc,
            idx,
            ty,
            stream,
        } => {
            let w = ty.width as usize;
            // The traced width is the *index* operand's width (the scalar
            // engine emits whatever the index register carries).
            let we = operand_vtype(idx, tys).width as usize;
            let (mut d, taken) = take_dst(&mut st.cols, &mut st.tmp, *dst, &[idx]);
            fill_indices(&mut st.idx, idx, &st.cols, &st.tmp, taken, tys, we, mask, n);
            let (space, base, data) = match loc {
                DLoc::Global(pi) => (MemSpace::Global, pool.base_addr(*pi), pool.get(*pi)),
                DLoc::Local(ai) => (
                    MemSpace::Local,
                    st.grp.local_addrs[*ai],
                    st.grp.locals[*ai].as_ref().expect("local buffer"),
                ),
            };
            st.ev.begin_mem(mask);
            let idxs = &st.idx;
            let ev = &mut st.ev;
            macro_rules! ld_arm {
                ($dv:ident, $sv:ident) => {{
                    let mut k = 0usize;
                    for i in 0..n {
                        if !mask.active(i) {
                            continue;
                        }
                        if w == 1 {
                            $dv[i] = $sv[idxs[k]];
                        } else {
                            for l in 0..w {
                                $dv[i * w + l] = $sv[idxs[k + l]];
                            }
                        }
                        push_indexed(
                            ev,
                            space,
                            AccessKind::Read,
                            *stream,
                            base,
                            ty.elem,
                            we,
                            &idxs[k..k + we],
                        );
                        k += we;
                    }
                }};
            }
            match (&mut d, data) {
                (Col::F32(dv), BufferData::F32(sv)) => ld_arm!(dv, sv),
                (Col::F64(dv), BufferData::F64(sv)) => ld_arm!(dv, sv),
                (Col::I32(dv), BufferData::I32(sv)) => ld_arm!(dv, sv),
                (Col::I64(dv), BufferData::I64(sv)) => ld_arm!(dv, sv),
                (Col::U32(dv), BufferData::U32(sv)) => ld_arm!(dv, sv),
                (Col::U64(dv), BufferData::U64(sv)) => ld_arm!(dv, sv),
                _ => unreachable!("validated: load register elem matches buffer elem"),
            }
            st.cols[*dst as usize] = d;
        }
        DOp::VLoad {
            dst,
            loc,
            base,
            ty,
            stream,
        } => {
            let w = ty.width as usize;
            let (mut d, taken) = take_dst(&mut st.cols, &mut st.tmp, *dst, &[base]);
            fill_indices(&mut st.idx, base, &st.cols, &st.tmp, taken, tys, 1, mask, n);
            let (space, bufbase, data) = match loc {
                DLoc::Global(pi) => (MemSpace::Global, pool.base_addr(*pi), pool.get(*pi)),
                DLoc::Local(ai) => (
                    MemSpace::Local,
                    st.grp.local_addrs[*ai],
                    st.grp.locals[*ai].as_ref().expect("local buffer"),
                ),
            };
            let eb = ty.elem.bytes() as u64;
            st.ev.begin_mem(mask);
            let idxs = &st.idx;
            let ev = &mut st.ev;
            macro_rules! vld_arm {
                ($dv:ident, $sv:ident) => {{
                    let mut k = 0usize;
                    for i in 0..n {
                        if !mask.active(i) {
                            continue;
                        }
                        let b = idxs[k];
                        for l in 0..w {
                            $dv[i * w + l] = $sv[b + l];
                        }
                        ev.push_mem(mem_contig(
                            space,
                            AccessKind::Read,
                            *stream,
                            bufbase + b as u64 * eb,
                            *ty,
                        ));
                        k += 1;
                    }
                }};
            }
            match (&mut d, data) {
                (Col::F32(dv), BufferData::F32(sv)) => vld_arm!(dv, sv),
                (Col::F64(dv), BufferData::F64(sv)) => vld_arm!(dv, sv),
                (Col::I32(dv), BufferData::I32(sv)) => vld_arm!(dv, sv),
                (Col::I64(dv), BufferData::I64(sv)) => vld_arm!(dv, sv),
                (Col::U32(dv), BufferData::U32(sv)) => vld_arm!(dv, sv),
                (Col::U64(dv), BufferData::U64(sv)) => vld_arm!(dv, sv),
                _ => unreachable!("validated: vload register elem matches buffer elem"),
            }
            st.cols[*dst as usize] = d;
        }
        DOp::Store {
            loc,
            idx,
            val,
            vt,
            stream,
        } => {
            let w = vt.width as usize;
            fill_indices(
                &mut st.idx,
                idx,
                &st.cols,
                &st.tmp,
                u32::MAX,
                tys,
                w,
                mask,
                n,
            );
            let (space, base) = match loc {
                DLoc::Global(pi) => (MemSpace::Global, pool.base_addr(*pi)),
                DLoc::Local(ai) => (MemSpace::Local, st.grp.local_addrs[*ai]),
            };
            st.ev.begin_mem(mask);
            let data: &mut BufferData = match loc {
                DLoc::Global(pi) => pool.get_mut(*pi),
                DLoc::Local(ai) => st.grp.locals[*ai].as_mut().expect("local buffer"),
            };
            let idxs = &st.idx;
            let ev = &mut st.ev;
            macro_rules! stv_arm {
                ($view:ident, $var:ident) => {{
                    let vv = $view(val, &st.cols, &st.tmp, u32::MAX, tys);
                    let BufferData::$var(sv) = data else {
                        unreachable!("validated: store value elem matches buffer elem")
                    };
                    let mut k = 0usize;
                    for i in 0..n {
                        if !mask.active(i) {
                            continue;
                        }
                        // Event first, then the writes — scalar order.
                        push_indexed(
                            ev,
                            space,
                            AccessKind::Write,
                            *stream,
                            base,
                            vt.elem,
                            w,
                            &idxs[k..k + w],
                        );
                        for l in 0..w {
                            sv[idxs[k + l]] = vv.at(i, l);
                        }
                        k += w;
                    }
                }};
            }
            match vt.elem {
                Scalar::F32 => stv_arm!(view_f32, F32),
                Scalar::F64 => stv_arm!(view_f64, F64),
                Scalar::I32 => stv_arm!(view_i32, I32),
                Scalar::I64 => stv_arm!(view_i64, I64),
                Scalar::U32 => stv_arm!(view_u32, U32),
                Scalar::U64 => stv_arm!(view_u64, U64),
                Scalar::Bool => unreachable!("bool buffers are not storable"),
            }
        }
        DOp::VStore {
            loc,
            base,
            val,
            stream,
        } => {
            let vt = tys[*val as usize];
            let w = vt.width as usize;
            fill_indices(
                &mut st.idx,
                base,
                &st.cols,
                &st.tmp,
                u32::MAX,
                tys,
                1,
                mask,
                n,
            );
            let (space, bufbase) = match loc {
                DLoc::Global(pi) => (MemSpace::Global, pool.base_addr(*pi)),
                DLoc::Local(ai) => (MemSpace::Local, st.grp.local_addrs[*ai]),
            };
            let eb = vt.elem.bytes() as u64;
            st.ev.begin_mem(mask);
            let data: &mut BufferData = match loc {
                DLoc::Global(pi) => pool.get_mut(*pi),
                DLoc::Local(ai) => st.grp.locals[*ai].as_mut().expect("local buffer"),
            };
            let idxs = &st.idx;
            let ev = &mut st.ev;
            macro_rules! vst_arm {
                ($var:ident) => {{
                    let (Col::$var(vv), BufferData::$var(sv)) = (&st.cols[*val as usize], data)
                    else {
                        unreachable!("validated: vstore register elem matches buffer elem")
                    };
                    let mut k = 0usize;
                    for i in 0..n {
                        if !mask.active(i) {
                            continue;
                        }
                        let b = idxs[k];
                        ev.push_mem(mem_contig(
                            space,
                            AccessKind::Write,
                            *stream,
                            bufbase + b as u64 * eb,
                            vt,
                        ));
                        for l in 0..w {
                            sv[b + l] = vv[i * w + l];
                        }
                        k += 1;
                    }
                }};
            }
            match vt.elem {
                Scalar::F32 => vst_arm!(F32),
                Scalar::F64 => vst_arm!(F64),
                Scalar::I32 => vst_arm!(I32),
                Scalar::I64 => vst_arm!(I64),
                Scalar::U32 => vst_arm!(U32),
                Scalar::U64 => vst_arm!(U64),
                Scalar::Bool => unreachable!("bool buffers are not storable"),
            }
        }
        DOp::Atomic {
            op,
            loc,
            idx,
            val,
            one: _,
            old,
            elem,
            stream,
        } => {
            debug_assert!(
                old.is_none(),
                "columnar atomic with old capture (gated by columnar_ok)"
            );
            fill_indices(
                &mut st.idx,
                idx,
                &st.cols,
                &st.tmp,
                u32::MAX,
                tys,
                1,
                mask,
                n,
            );
            let (space, base) = match loc {
                DLoc::Global(pi) => (MemSpace::Global, pool.base_addr(*pi)),
                DLoc::Local(ai) => (MemSpace::Local, st.grp.local_addrs[*ai]),
            };
            let eb = elem.bytes() as u64;
            st.ev.begin_mem(mask);
            let data: &mut BufferData = match loc {
                DLoc::Global(pi) => pool.get_mut(*pi),
                DLoc::Local(ai) => st.grp.locals[*ai].as_mut().expect("local buffer"),
            };
            let idxs = &st.idx;
            let ev = &mut st.ev;
            macro_rules! at_arm {
                ($view:ident, $var:ident) => {{
                    let vv = $view(val, &st.cols, &st.tmp, u32::MAX, tys);
                    let BufferData::$var(sv) = data else {
                        unreachable!("validated: atomic elem matches buffer elem")
                    };
                    let mut k = 0usize;
                    for i in 0..n {
                        if !mask.active(i) {
                            continue;
                        }
                        let j = idxs[k];
                        ev.push_mem(MemAccess {
                            space,
                            kind: AccessKind::Atomic,
                            stream: *stream,
                            addr: base + j as u64 * eb,
                            bytes: elem.bytes(),
                            elem: *elem,
                            width: 1,
                            pattern: Pattern::Scalar,
                        });
                        // Integer RMWs are commutative+associative, so
                        // applying them in item order leaves the same final
                        // bits as the scalar item-major schedule.
                        sv[j] = match op {
                            AtomicOp::Add => sv[j].wrapping_add(vv.at(i, 0)),
                            AtomicOp::Inc => sv[j].wrapping_add(1),
                            AtomicOp::Min => sv[j].min(vv.at(i, 0)),
                            AtomicOp::Max => sv[j].max(vv.at(i, 0)),
                        };
                        k += 1;
                    }
                }};
            }
            match elem {
                Scalar::I32 => at_arm!(view_i32, I32),
                Scalar::I64 => at_arm!(view_i64, I64),
                Scalar::U32 => at_arm!(view_u32, U32),
                Scalar::U64 => at_arm!(view_u64, U64),
                _ => unreachable!("columnar atomics are integer-only (columnar_ok)"),
            }
        }
        DOp::For {
            var,
            elem,
            start,
            end,
            step,
            body,
        } => {
            let mut cur = vec![0i64; n];
            let mut endv = vec![0i64; n];
            let mut stepv = vec![0i64; n];
            fill_lane0_i64(&mut cur, start, &st.cols, &st.tmp, tys, mask, n);
            fill_lane0_i64(&mut endv, end, &st.cols, &st.tmp, tys, mask, n);
            fill_lane0_i64(&mut stepv, step, &st.cols, &st.tmp, tys, mask, n);
            for i in 0..n {
                if mask.active(i) {
                    assert!(stepv[i] != 0, "zero loop step");
                }
            }
            loop {
                let im = derive_mask(mask, n, |i| {
                    (stepv[i] > 0 && cur[i] < endv[i]) || (stepv[i] < 0 && cur[i] > endv[i])
                });
                if im.count(n) == 0 {
                    break;
                }
                set_loop_var(&mut st.cols[*var as usize], *elem, &cur, &im, n);
                st.ev.push_loop_iter(&im);
                exec_block(dp, ndr, n, pool, st, *body, &im);
                for i in 0..n {
                    if im.active(i) {
                        cur[i] += stepv[i];
                    }
                }
            }
        }
        DOp::If { cond, then, els } => {
            st.ev
                .push_op(mask, OpClass::Simple, VType::scalar(Scalar::Bool));
            let (tm, em) = {
                let cv = view_bool(cond, &st.cols, &st.tmp, u32::MAX, tys);
                (
                    derive_mask(mask, n, |i| cv.at(i, 0)),
                    derive_mask(mask, n, |i| !cv.at(i, 0)),
                )
            };
            if tm.count(n) > 0 {
                exec_block(dp, ndr, n, pool, st, *then, &tm);
            }
            if em.count(n) > 0 {
                exec_block(dp, ndr, n, pool, st, *els, &em);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_mask_reuses_parent_when_all_pass() {
        let full = AMask::Full;
        let m = derive_mask(&full, 4, |_| true);
        assert!(matches!(m, AMask::Full));
        let part = derive_mask(&full, 4, |i| i % 2 == 0);
        assert_eq!(part.count(4), 2);
        // Subset with equal cardinality is the same set → parent reused.
        let same = derive_mask(&part, 4, |i| i % 2 == 0);
        assert_eq!(same.count(4), 2);
        let AMask::Part(a, _) = &part else { panic!() };
        let AMask::Part(b, _) = &same else { panic!() };
        assert!(Rc::ptr_eq(a, b));
    }

    #[test]
    fn col_shape_checks() {
        let ty = VType {
            elem: Scalar::F32,
            width: 4,
        };
        let mut c = Col::new(ty, 8);
        assert!(c.matches(ty, 8));
        assert!(!c.matches(ty, 4));
        assert!(!c.matches(VType::scalar(Scalar::F32), 16));
        if let Col::F32(v) = &mut c {
            v[3] = 7.0;
        }
        c.zero();
        let Col::F32(v) = &c else { panic!() };
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn replay_filters_batches_per_item() {
        use crate::trace::CountingTracer;
        let mut ev = EventBuf::default();
        let full = AMask::Full;
        let half = AMask::Part(Rc::from(vec![true, false].into_boxed_slice()), 1);
        ev.push_op(&full, OpClass::Simple, VType::scalar(Scalar::F32));
        ev.push_op(&half, OpClass::Mul, VType::scalar(Scalar::F32));
        ev.push_loop_iter(&full);
        let mut t = CountingTracer::default();
        replay_phase(&mut ev, 2, true, &mut t);
        assert_eq!(t.threads, 2);
        assert_eq!(t.ops, 3); // 2 full + 1 masked
        assert_eq!(t.loop_iters, 2);
    }
}
