//! Lane-wise evaluation of arithmetic operations on [`Value`]s.
//!
//! Semantics follow OpenCL C: integer arithmetic wraps, shifts mask the
//! shift amount by the lane width (as ARM hardware does), float math is
//! IEEE-754 (`f32`/`f64` native Rust semantics — both full-profile
//! compliant, matching the Mali-T604's IEEE-754-2008 support).

use crate::instr::{BinOp, UnOp};
use crate::types::{Scalar, VType, MAX_LANES};
use crate::value::{Lanes, Value};

/// Result type of a binary op on operands of type `ty`.
pub fn bin_result_type(op: BinOp, ty: VType) -> VType {
    if op.is_compare() {
        VType {
            elem: Scalar::Bool,
            width: ty.width,
        }
    } else {
        ty
    }
}

// The op dispatch in these macros is hoisted *out* of the lane loop: each
// match arm selects a monomorphic lane kernel once, and the loop that
// follows is branch-free so the compiler can vectorize it.

macro_rules! float_bin {
    ($op:expr, $a:expr, $b:expr, $w:expr, $t:ty, $ctor:ident) => {{
        let f: fn($t, $t) -> $t = match $op {
            BinOp::Add => |x, y| x + y,
            BinOp::Sub => |x, y| x - y,
            BinOp::Mul => |x, y| x * y,
            BinOp::Div => |x, y| x / y,
            BinOp::Rem => |x, y| x % y,
            BinOp::Min => |x, y| x.min(y),
            BinOp::Max => |x, y| x.max(y),
            _ => unreachable!("non-arith float op handled elsewhere"),
        };
        let mut out = [<$t>::default(); MAX_LANES];
        for i in 0..$w {
            out[i] = f($a[i], $b[i]);
        }
        Value::$ctor(&out[..$w])
    }};
}

macro_rules! int_bin {
    ($op:expr, $a:expr, $b:expr, $w:expr, $t:ty, $ctor:ident) => {{
        const LANE_BITS: $t = (<$t>::BITS - 1) as $t;
        let f: fn($t, $t) -> $t = match $op {
            BinOp::Add => |x, y| x.wrapping_add(y),
            BinOp::Sub => |x, y| x.wrapping_sub(y),
            BinOp::Mul => |x, y| x.wrapping_mul(y),
            BinOp::Div => |x, y| {
                assert!(y != 0, "integer division by zero in kernel");
                x.wrapping_div(y)
            },
            BinOp::Rem => |x, y| {
                assert!(y != 0, "integer remainder by zero in kernel");
                x.wrapping_rem(y)
            },
            BinOp::Min => |x, y| x.min(y),
            BinOp::Max => |x, y| x.max(y),
            BinOp::And => |x, y| x & y,
            BinOp::Or => |x, y| x | y,
            BinOp::Xor => |x, y| x ^ y,
            BinOp::Shl => |x, y| x.wrapping_shl((y & LANE_BITS) as u32),
            BinOp::Shr => |x, y| x.wrapping_shr((y & LANE_BITS) as u32),
            _ => unreachable!("comparison handled elsewhere"),
        };
        let mut out = [<$t>::default(); MAX_LANES];
        for i in 0..$w {
            out[i] = f($a[i], $b[i]);
        }
        Value::$ctor(&out[..$w])
    }};
}

macro_rules! cmp_bin {
    ($op:expr, $a:expr, $b:expr, $w:expr) => {{
        let f: fn(_, _) -> bool = match $op {
            BinOp::Lt => |x, y| x < y,
            BinOp::Le => |x, y| x <= y,
            BinOp::Gt => |x, y| x > y,
            BinOp::Ge => |x, y| x >= y,
            BinOp::Eq => |x, y| x == y,
            BinOp::Ne => |x, y| x != y,
            _ => unreachable!(),
        };
        let mut out = [false; MAX_LANES];
        for i in 0..$w {
            out[i] = f($a[i], $b[i]);
        }
        Value::bools(&out[..$w])
    }};
}

/// Apply a binary op to two values of identical type/width.
pub fn eval_bin(op: BinOp, a: &Value, b: &Value) -> Value {
    assert_eq!(a.vtype(), b.vtype(), "binop operand type mismatch: {op:?}");
    let w = a.width() as usize;
    if op.is_compare() {
        return match (a.lanes(), b.lanes()) {
            (Lanes::F32(x), Lanes::F32(y)) => cmp_bin!(op, x, y, w),
            (Lanes::F64(x), Lanes::F64(y)) => cmp_bin!(op, x, y, w),
            (Lanes::I32(x), Lanes::I32(y)) => cmp_bin!(op, x, y, w),
            (Lanes::I64(x), Lanes::I64(y)) => cmp_bin!(op, x, y, w),
            (Lanes::U32(x), Lanes::U32(y)) => cmp_bin!(op, x, y, w),
            (Lanes::U64(x), Lanes::U64(y)) => cmp_bin!(op, x, y, w),
            (Lanes::Bool(x), Lanes::Bool(y)) => cmp_bin!(op, x, y, w),
            _ => unreachable!("types already checked equal"),
        };
    }
    match (a.lanes(), b.lanes()) {
        (Lanes::F32(x), Lanes::F32(y)) => {
            assert!(!op.int_only(), "{op:?} is integer-only, applied to float");
            float_bin!(op, x, y, w, f32, f32s)
        }
        (Lanes::F64(x), Lanes::F64(y)) => {
            assert!(!op.int_only(), "{op:?} is integer-only, applied to double");
            float_bin!(op, x, y, w, f64, f64s)
        }
        (Lanes::I32(x), Lanes::I32(y)) => int_bin!(op, x, y, w, i32, i32s),
        (Lanes::I64(x), Lanes::I64(y)) => int_bin!(op, x, y, w, i64, i64s),
        (Lanes::U32(x), Lanes::U32(y)) => int_bin!(op, x, y, w, u32, u32s),
        (Lanes::U64(x), Lanes::U64(y)) => int_bin!(op, x, y, w, u64, u64s),
        (Lanes::Bool(_), Lanes::Bool(_)) => {
            panic!("arithmetic binop {op:?} on bool vectors")
        }
        _ => unreachable!("types already checked equal"),
    }
}

macro_rules! float_un {
    ($op:expr, $a:expr, $w:expr, $t:ty, $ctor:ident) => {{
        let f: fn($t) -> $t = match $op {
            UnOp::Neg => |x| -x,
            UnOp::Abs => |x| x.abs(),
            UnOp::Sqrt => |x| x.sqrt(),
            UnOp::Rsqrt => |x| 1.0 / x.sqrt(),
            UnOp::Exp => |x| x.exp(),
            UnOp::Log => |x| x.ln(),
            UnOp::Not => panic!("bitwise not on float"),
        };
        let mut out = [<$t>::default(); MAX_LANES];
        for i in 0..$w {
            out[i] = f($a[i]);
        }
        Value::$ctor(&out[..$w])
    }};
}

macro_rules! int_un {
    ($op:expr, $a:expr, $w:expr, $t:ty, $ctor:ident, $abs:expr, $msg:literal) => {{
        let f: fn($t) -> $t = match $op {
            UnOp::Neg => |x| x.wrapping_neg(),
            UnOp::Abs => $abs,
            UnOp::Not => |x| !x,
            other => panic!(concat!("{:?} on ", $msg), other),
        };
        let mut out = [<$t>::default(); MAX_LANES];
        for i in 0..$w {
            out[i] = f($a[i]);
        }
        Value::$ctor(&out[..$w])
    }};
}

/// Apply a unary op lane-wise.
pub fn eval_un(op: UnOp, a: &Value) -> Value {
    let w = a.width() as usize;
    match a.lanes() {
        Lanes::F32(x) => float_un!(op, x, w, f32, f32s),
        Lanes::F64(x) => float_un!(op, x, w, f64, f64s),
        Lanes::I32(x) => int_un!(op, x, w, i32, i32s, |x| x.wrapping_abs(), "int lanes"),
        Lanes::I64(x) => int_un!(op, x, w, i64, i64s, |x| x.wrapping_abs(), "long lanes"),
        Lanes::U32(x) => int_un!(op, x, w, u32, u32s, |x| x, "uint lanes"),
        Lanes::U64(x) => int_un!(op, x, w, u64, u64s, |x| x, "ulong lanes"),
        Lanes::Bool(x) => {
            let f: fn(bool) -> bool = match op {
                UnOp::Not => |x| !x,
                other => panic!("{other:?} on bool lanes"),
            };
            let mut out = [false; MAX_LANES];
            for i in 0..w {
                out[i] = f(x[i]);
            }
            Value::bools(&out[..w])
        }
    }
}

/// Lane-wise select: `cond ? a : b`.
pub fn eval_select(cond: &Value, a: &Value, b: &Value) -> Value {
    assert_eq!(cond.elem(), Scalar::Bool, "select condition must be bool");
    assert_eq!(a.vtype(), b.vtype(), "select arm type mismatch");
    assert_eq!(cond.width(), a.width(), "select width mismatch");
    let mut out = *b;
    for i in 0..a.width() as usize {
        if cond.lane_bool(i) {
            out = out.insert(i, &a.extract(i));
        }
    }
    out
}

/// Fused multiply-add `a*b + c` (single rounding, like hardware FMA).
pub fn eval_mad(a: &Value, b: &Value, c: &Value) -> Value {
    assert_eq!(a.vtype(), b.vtype(), "mad operand type mismatch");
    assert_eq!(a.vtype(), c.vtype(), "mad operand type mismatch");
    let w = a.width() as usize;
    match (a.lanes(), b.lanes(), c.lanes()) {
        (Lanes::F32(x), Lanes::F32(y), Lanes::F32(z)) => {
            let mut out = [0f32; MAX_LANES];
            for i in 0..w {
                out[i] = x[i].mul_add(y[i], z[i]);
            }
            Value::f32s(&out[..w])
        }
        (Lanes::F64(x), Lanes::F64(y), Lanes::F64(z)) => {
            let mut out = [0f64; MAX_LANES];
            for i in 0..w {
                out[i] = x[i].mul_add(y[i], z[i]);
            }
            Value::f64s(&out[..w])
        }
        _ => {
            // Integer mad: multiply then add, wrapping.
            let p = eval_bin(BinOp::Mul, a, b);
            eval_bin(BinOp::Add, &p, c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_arith() {
        let a = Value::f32s(&[1.0, 2.0, 3.0, 4.0]);
        let b = Value::f32s(&[4.0, 3.0, 2.0, 1.0]);
        let s = eval_bin(BinOp::Add, &a, &b);
        for i in 0..4 {
            assert_eq!(s.lane_f64(i), 5.0);
        }
        let m = eval_bin(BinOp::Max, &a, &b);
        assert_eq!(m.lane_f64(0), 4.0);
        assert_eq!(m.lane_f64(3), 4.0);
    }

    #[test]
    fn int_wrapping() {
        let a = Value::u32s(&[u32::MAX]);
        let b = Value::u32s(&[1]);
        assert_eq!(eval_bin(BinOp::Add, &a, &b).lane_i64(0), 0);
        let c = Value::i32s(&[i32::MIN]);
        assert_eq!(eval_un(UnOp::Neg, &c).lane_i64(0), i32::MIN as i64);
    }

    #[test]
    fn shift_masks_amount() {
        // OpenCL/ARM semantics: shift amount taken modulo lane bits.
        let a = Value::u32s(&[1]);
        let b = Value::u32s(&[33]);
        assert_eq!(eval_bin(BinOp::Shl, &a, &b).lane_i64(0), 2);
    }

    #[test]
    fn compare_yields_bools() {
        let a = Value::f64s(&[1.0, 5.0]);
        let b = Value::f64s(&[2.0, 2.0]);
        let c = eval_bin(BinOp::Lt, &a, &b);
        assert_eq!(c.elem(), Scalar::Bool);
        assert!(c.lane_bool(0));
        assert!(!c.lane_bool(1));
    }

    #[test]
    fn select_lanewise() {
        let c = Value::bools(&[true, false, true, false]);
        let a = Value::i32s(&[1, 1, 1, 1]);
        let b = Value::i32s(&[9, 9, 9, 9]);
        let s = eval_select(&c, &a, &b);
        assert_eq!(
            (0..4).map(|i| s.lane_i64(i)).collect::<Vec<_>>(),
            vec![1, 9, 1, 9]
        );
    }

    #[test]
    fn mad_is_fused_f32() {
        // FMA has a single rounding: (a*b + c) where a*b would round in f32.
        let a = Value::f32(1.0 + f32::EPSILON);
        let s = eval_mad(&a, &a, &Value::f32(-1.0));
        let expected = (1.0f32 + f32::EPSILON).mul_add(1.0 + f32::EPSILON, -1.0);
        assert_eq!(s.lane_f64(0), expected as f64);
    }

    #[test]
    fn rsqrt() {
        let a = Value::f32(4.0);
        assert_eq!(eval_un(UnOp::Rsqrt, &a).lane_f64(0), 0.5);
    }

    #[test]
    #[should_panic(expected = "integer division by zero")]
    fn int_div_zero_faults() {
        let a = Value::i32(1);
        let b = Value::i32(0);
        let _ = eval_bin(BinOp::Div, &a, &b);
    }

    #[test]
    #[should_panic(expected = "integer-only")]
    fn xor_on_float_rejected() {
        let a = Value::f32(1.0);
        let _ = eval_bin(BinOp::Xor, &a, &a);
    }

    #[test]
    fn bin_result_type_compare() {
        let t = VType::new(Scalar::F32, 4);
        assert_eq!(bin_result_type(BinOp::Lt, t), VType::new(Scalar::Bool, 4));
        assert_eq!(bin_result_type(BinOp::Add, t), t);
    }
}
