//! # kernel-ir — a structured OpenCL-like kernel IR
//!
//! This crate is the substrate beneath the whole Mali-T604 reproduction: a
//! compact intermediate representation for OpenCL-C-style compute kernels,
//! together with an interpreter that
//!
//! 1. **computes real results** (so every simulated benchmark can be
//!    validated against a plain-Rust reference implementation), and
//! 2. **emits a complete event stream** (arithmetic issues, classified
//!    memory accesses, atomics, barriers) to an [`ExecTracer`], from which
//!    the device models in `cpu-sim` and `mali-gpu` derive cycles, cache
//!    traffic and power activity.
//!
//! The IR is deliberately *structured* (counted loops, scalar conditionals,
//! top-level barriers): that is the shape of the paper's nine kernels, it
//! keeps the interpreter trivially correct, and it makes the optimization
//! passes of the `mali-hpc` crate (vectorization, unrolling) analyzable.
//!
//! ## Quick example
//!
//! ```
//! use kernel_ir::prelude::*;
//!
//! // c[i] = a[i] + b[i]
//! let mut kb = KernelBuilder::new("vecadd");
//! let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
//! let b = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
//! let c = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
//! let gid = kb.query_global_id(0);
//! let va = kb.load(Scalar::F32, a, gid.into());
//! let vb = kb.load(Scalar::F32, b, gid.into());
//! let s = kb.bin(BinOp::Add, va.into(), vb.into(), VType::scalar(Scalar::F32));
//! kb.store(c, gid.into(), s.into());
//! let program = kb.finish();
//! program.validate().unwrap();
//!
//! let mut pool = MemoryPool::new();
//! let ab = pool.add(vec![1.0f32; 16].into());
//! let bb = pool.add(vec![2.0f32; 16].into());
//! let cb = pool.add(BufferData::zeroed(Scalar::F32, 16));
//! let bindings = [ArgBinding::Global(ab), ArgBinding::Global(bb), ArgBinding::Global(cb)];
//! run_ndrange(&program, &bindings, &mut pool, NDRange::d1(16, 4), &mut NullTracer).unwrap();
//! assert_eq!(pool.get(cb).as_f32(), &[3.0f32; 16]);
//! ```

pub mod builder;
pub(crate) mod columnar;
pub mod display;
pub mod exec;
pub mod instr;
pub mod memory;
pub mod ops;
pub mod opt;
pub mod program;
pub mod stats;
pub mod trace;
pub mod types;
pub mod value;

pub use builder::KernelBuilder;
pub use exec::{
    check_bindings, engine, run_ndrange, run_ndrange_sharded, run_ndrange_with_engine, set_engine,
    ArgBinding, DecodedProgram, Engine, ExecError, GroupExecutor, LaunchStats, NDRange,
    LOCAL_MEM_BASE, LOCAL_MEM_STRIDE,
};
pub use instr::{
    widen, ArgDecl, ArgIdx, AtomicOp, BinOp, Builtin, Hints, HorizOp, Op, Operand, Reg, UnOp,
};
pub use memory::{BufferData, MemoryPool, BUFFER_ALIGN};
pub use ops::{bin_result_type, eval_bin, eval_mad, eval_select, eval_un};
pub use opt::{Pass, PassCounters, Pipeline};
pub use program::{Program, ValidationError};
pub use stats::{analyze, StaticMix};
pub use trace::{
    AccessKind, CountingTracer, ExecTracer, MemAccess, NullTracer, OpClass, Pattern,
    RecordingTracer, ShardTracer,
};
pub use types::{Access, MemSpace, Scalar, VType, MAX_LANES};
pub use value::{Lanes, Value};

/// Everything needed to build and run kernels.
pub mod prelude {
    pub use crate::builder::KernelBuilder;
    pub use crate::exec::{run_ndrange, ArgBinding, GroupExecutor, NDRange};
    pub use crate::instr::{
        ArgDecl, ArgIdx, AtomicOp, BinOp, Builtin, Hints, HorizOp, Op, Operand, Reg, UnOp,
    };
    pub use crate::memory::{BufferData, MemoryPool};
    pub use crate::program::Program;
    pub use crate::trace::{CountingTracer, ExecTracer, NullTracer};
    pub use crate::types::{Access, MemSpace, Scalar, VType};
    pub use crate::value::Value;
}
