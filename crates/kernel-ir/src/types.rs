//! Element and vector types of the kernel IR.
//!
//! The IR mirrors the OpenCL C type system that the paper's kernels use:
//! scalar `float`/`double`/integer types plus the short-vector forms
//! (`float4`, `double2`, ...) that map onto the Mali-T604's 128-bit vector
//! registers.

use std::fmt;

/// Element (lane) type of a register, buffer or immediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scalar {
    /// 32-bit IEEE-754 float (`float`).
    F32,
    /// 64-bit IEEE-754 float (`double`). Full-profile requirement.
    F64,
    /// 32-bit signed integer (`int`).
    I32,
    /// 64-bit signed integer (`long`). Natively supported by Mali-T604.
    I64,
    /// 32-bit unsigned integer (`uint`).
    U32,
    /// 64-bit unsigned integer (`ulong`).
    U64,
    /// Boolean lane, result of comparisons. Not storable in buffers.
    Bool,
}

impl Scalar {
    /// Size of one lane in bytes as stored in memory.
    ///
    /// `Bool` is register-only; it reports 1 byte but [`Scalar::storable`]
    /// is `false` for it.
    pub const fn bytes(self) -> u32 {
        match self {
            Scalar::F32 | Scalar::I32 | Scalar::U32 => 4,
            Scalar::F64 | Scalar::I64 | Scalar::U64 => 8,
            Scalar::Bool => 1,
        }
    }

    /// Whether the type can live in a memory buffer.
    pub const fn storable(self) -> bool {
        !matches!(self, Scalar::Bool)
    }

    /// Whether the type is a floating-point type.
    pub const fn is_float(self) -> bool {
        matches!(self, Scalar::F32 | Scalar::F64)
    }

    /// Whether the type is an integer type (signed or unsigned).
    pub const fn is_int(self) -> bool {
        matches!(self, Scalar::I32 | Scalar::I64 | Scalar::U32 | Scalar::U64)
    }

    /// OpenCL C spelling of the type, used by the pretty printer.
    pub const fn name(self) -> &'static str {
        match self {
            Scalar::F32 => "float",
            Scalar::F64 => "double",
            Scalar::I32 => "int",
            Scalar::I64 => "long",
            Scalar::U32 => "uint",
            Scalar::U64 => "ulong",
            Scalar::Bool => "bool",
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Maximum number of lanes in a vector value (OpenCL's widest short vector).
pub const MAX_LANES: usize = 16;

/// A (possibly vector) register type: element type plus lane count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VType {
    pub elem: Scalar,
    pub width: u8,
}

impl VType {
    /// Construct a vector type. Panics on invalid widths — IR construction
    /// bugs should fail fast.
    pub fn new(elem: Scalar, width: u8) -> Self {
        assert!(
            matches!(width, 1 | 2 | 4 | 8 | 16),
            "invalid vector width {width}; OpenCL allows 1/2/4/8/16"
        );
        VType { elem, width }
    }

    /// Scalar (single-lane) type.
    pub const fn scalar(elem: Scalar) -> Self {
        VType { elem, width: 1 }
    }

    pub const fn is_scalar(self) -> bool {
        self.width == 1
    }

    /// Total byte footprint of one value of this type.
    pub const fn bytes(self) -> u32 {
        self.elem.bytes() * self.width as u32
    }

    /// Number of 128-bit hardware registers a value of this type occupies
    /// on the Mali register file (minimum one).
    pub const fn hw_regs_128(self) -> u32 {
        let bits = self.elem.bytes() * 8 * self.width as u32;
        let regs = bits.div_ceil(128);
        if regs == 0 {
            1
        } else {
            regs
        }
    }

    /// Same element type, different width.
    pub fn with_width(self, width: u8) -> Self {
        VType::new(self.elem, width)
    }
}

impl fmt::Display for VType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width == 1 {
            write!(f, "{}", self.elem)
        } else {
            write!(f, "{}{}", self.elem, self.width)
        }
    }
}

/// OpenCL memory spaces relevant to the study. `Private` is implicit in
/// registers; images/constant memory are folded into `Global` with a
/// read-only access qualifier, matching how the Mali driver maps them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Device-visible global memory. On Mali this is the single unified
    /// memory system behind the shared L2.
    Global,
    /// Work-group local memory. On Mali this is *physically global memory* —
    /// the device models charge it accordingly (the paper's point that
    /// local-memory tiling buys nothing on this architecture).
    Local,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemSpace::Global => f.write_str("__global"),
            MemSpace::Local => f.write_str("__local"),
        }
    }
}

/// Buffer access qualifier; lets the validator reject writes through
/// `const` pointers and lets the cost model reward read-only metadata.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Access {
    ReadOnly,
    WriteOnly,
    ReadWrite,
}

impl Access {
    pub const fn readable(self) -> bool {
        !matches!(self, Access::WriteOnly)
    }
    pub const fn writable(self) -> bool {
        !matches!(self, Access::ReadOnly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes_match_opencl() {
        assert_eq!(Scalar::F32.bytes(), 4);
        assert_eq!(Scalar::F64.bytes(), 8);
        assert_eq!(Scalar::I32.bytes(), 4);
        assert_eq!(Scalar::I64.bytes(), 8);
        assert_eq!(Scalar::U32.bytes(), 4);
        assert_eq!(Scalar::U64.bytes(), 8);
    }

    #[test]
    fn bool_not_storable() {
        assert!(!Scalar::Bool.storable());
        assert!(Scalar::F32.storable());
    }

    #[test]
    fn vtype_display_matches_opencl_spelling() {
        assert_eq!(VType::new(Scalar::F32, 4).to_string(), "float4");
        assert_eq!(VType::scalar(Scalar::F64).to_string(), "double");
        assert_eq!(VType::new(Scalar::U32, 16).to_string(), "uint16");
    }

    #[test]
    #[should_panic(expected = "invalid vector width")]
    fn vtype_rejects_width_3() {
        let _ = VType::new(Scalar::F32, 3);
    }

    #[test]
    fn hw_register_footprint() {
        // float4 exactly fills one 128-bit register.
        assert_eq!(VType::new(Scalar::F32, 4).hw_regs_128(), 1);
        // double2 also fills one.
        assert_eq!(VType::new(Scalar::F64, 2).hw_regs_128(), 1);
        // double4 needs two.
        assert_eq!(VType::new(Scalar::F64, 4).hw_regs_128(), 2);
        // float16 needs four.
        assert_eq!(VType::new(Scalar::F32, 16).hw_regs_128(), 4);
        // a scalar still consumes a whole register.
        assert_eq!(VType::scalar(Scalar::F32).hw_regs_128(), 1);
        // double16 = 1024 bits = eight registers.
        assert_eq!(VType::new(Scalar::F64, 16).hw_regs_128(), 8);
    }

    #[test]
    fn access_qualifiers() {
        assert!(Access::ReadOnly.readable());
        assert!(!Access::ReadOnly.writable());
        assert!(Access::ReadWrite.readable() && Access::ReadWrite.writable());
        assert!(!Access::WriteOnly.readable());
    }
}
