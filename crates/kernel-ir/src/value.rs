//! Runtime values of the IR interpreter.
//!
//! A [`Value`] is a short vector of up to [`MAX_LANES`] lanes of one element
//! type. Lane storage is a fixed array so values never heap-allocate; the
//! interpreter copies them freely.

use crate::types::{Scalar, VType, MAX_LANES};

/// Lane storage for every supported element type.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Lanes {
    F32([f32; MAX_LANES]),
    F64([f64; MAX_LANES]),
    I32([i32; MAX_LANES]),
    I64([i64; MAX_LANES]),
    U32([u32; MAX_LANES]),
    U64([u64; MAX_LANES]),
    Bool([bool; MAX_LANES]),
}

/// A runtime vector value: element type, width and lane data.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Value {
    width: u8,
    lanes: Lanes,
}

macro_rules! ctor {
    ($fn_name:ident, $splat:ident, $t:ty, $variant:ident) => {
        /// Build a value from a lane slice (1..=16 lanes).
        pub fn $fn_name(vals: &[$t]) -> Value {
            assert!(
                !vals.is_empty() && vals.len() <= MAX_LANES,
                "value must have 1..=16 lanes, got {}",
                vals.len()
            );
            let mut arr = [<$t>::default(); MAX_LANES];
            arr[..vals.len()].copy_from_slice(vals);
            Value {
                width: vals.len() as u8,
                lanes: Lanes::$variant(arr),
            }
        }

        /// Build a value with all `width` lanes equal to `v`.
        pub fn $splat(v: $t, width: u8) -> Value {
            Value {
                width,
                lanes: Lanes::$variant([v; MAX_LANES]),
            }
        }
    };
}

impl Value {
    ctor!(f32s, splat_f32, f32, F32);
    ctor!(f64s, splat_f64, f64, F64);
    ctor!(i32s, splat_i32, i32, I32);
    ctor!(i64s, splat_i64, i64, I64);
    ctor!(u32s, splat_u32, u32, U32);
    ctor!(u64s, splat_u64, u64, U64);
    ctor!(bools, splat_bool, bool, Bool);

    /// Scalar constructors.
    pub fn f32(v: f32) -> Value {
        Value::f32s(&[v])
    }
    pub fn f64(v: f64) -> Value {
        Value::f64s(&[v])
    }
    pub fn i32(v: i32) -> Value {
        Value::i32s(&[v])
    }
    pub fn i64(v: i64) -> Value {
        Value::i64s(&[v])
    }
    pub fn u32(v: u32) -> Value {
        Value::u32s(&[v])
    }
    pub fn u64(v: u64) -> Value {
        Value::u64s(&[v])
    }
    pub fn bool(v: bool) -> Value {
        Value::bools(&[v])
    }

    /// Zero of a given type (false for Bool).
    pub fn zero(ty: VType) -> Value {
        let w = ty.width;
        match ty.elem {
            Scalar::F32 => Value::splat_f32(0.0, w),
            Scalar::F64 => Value::splat_f64(0.0, w),
            Scalar::I32 => Value::splat_i32(0, w),
            Scalar::I64 => Value::splat_i64(0, w),
            Scalar::U32 => Value::splat_u32(0, w),
            Scalar::U64 => Value::splat_u64(0, w),
            Scalar::Bool => Value::splat_bool(false, w),
        }
    }

    pub fn width(&self) -> u8 {
        self.width
    }

    pub fn elem(&self) -> Scalar {
        match self.lanes {
            Lanes::F32(_) => Scalar::F32,
            Lanes::F64(_) => Scalar::F64,
            Lanes::I32(_) => Scalar::I32,
            Lanes::I64(_) => Scalar::I64,
            Lanes::U32(_) => Scalar::U32,
            Lanes::U64(_) => Scalar::U64,
            Lanes::Bool(_) => Scalar::Bool,
        }
    }

    pub fn vtype(&self) -> VType {
        VType {
            elem: self.elem(),
            width: self.width,
        }
    }

    pub fn lanes(&self) -> &Lanes {
        &self.lanes
    }

    /// Lane `i` as f64 (lossless for floats and for integers < 2^53; only
    /// used for float contexts and diagnostics, never for exact int math).
    pub fn lane_f64(&self, i: usize) -> f64 {
        assert!(i < self.width as usize, "lane {i} out of range");
        match self.lanes {
            Lanes::F32(a) => a[i] as f64,
            Lanes::F64(a) => a[i],
            Lanes::I32(a) => a[i] as f64,
            Lanes::I64(a) => a[i] as f64,
            Lanes::U32(a) => a[i] as f64,
            Lanes::U64(a) => a[i] as f64,
            Lanes::Bool(a) => {
                if a[i] {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Lane `i` as i64 (exact for all integer lanes; truncates floats).
    pub fn lane_i64(&self, i: usize) -> i64 {
        assert!(i < self.width as usize, "lane {i} out of range");
        match self.lanes {
            Lanes::F32(a) => a[i] as i64,
            Lanes::F64(a) => a[i] as i64,
            Lanes::I32(a) => a[i] as i64,
            Lanes::I64(a) => a[i],
            Lanes::U32(a) => a[i] as i64,
            Lanes::U64(a) => a[i] as i64,
            Lanes::Bool(a) => a[i] as i64,
        }
    }

    /// Lane `i` as usize, for memory indexing. Panics on negative values —
    /// a kernel indexing with a negative value is a kernel bug the simulator
    /// must surface, like a real device fault.
    pub fn lane_index(&self, i: usize) -> usize {
        let v = self.lane_i64(i);
        assert!(v >= 0, "negative buffer index {v}");
        v as usize
    }

    /// Lane `i` as bool. Panics if the value is not a Bool vector.
    pub fn lane_bool(&self, i: usize) -> bool {
        match self.lanes {
            Lanes::Bool(a) => a[i],
            _ => panic!("lane_bool on non-bool value {:?}", self.elem()),
        }
    }

    /// Broadcast a scalar (width-1) value to `width` lanes; identity if the
    /// widths already match.
    pub fn broadcast(&self, width: u8) -> Value {
        if self.width == width {
            return *self;
        }
        assert_eq!(
            self.width, 1,
            "can only broadcast scalars (have width {})",
            self.width
        );
        macro_rules! bc {
            ($a:expr, $variant:ident) => {
                Value {
                    width,
                    lanes: Lanes::$variant([$a[0]; MAX_LANES]),
                }
            };
        }
        match self.lanes {
            Lanes::F32(a) => bc!(a, F32),
            Lanes::F64(a) => bc!(a, F64),
            Lanes::I32(a) => bc!(a, I32),
            Lanes::I64(a) => bc!(a, I64),
            Lanes::U32(a) => bc!(a, U32),
            Lanes::U64(a) => bc!(a, U64),
            Lanes::Bool(a) => bc!(a, Bool),
        }
    }

    /// Extract one lane as a scalar value.
    pub fn extract(&self, lane: usize) -> Value {
        assert!(
            lane < self.width as usize,
            "extract lane {lane} out of range"
        );
        macro_rules! ex {
            ($a:expr, $variant:ident, $d:expr) => {{
                let mut arr = [$d; MAX_LANES];
                arr[0] = $a[lane];
                Value {
                    width: 1,
                    lanes: Lanes::$variant(arr),
                }
            }};
        }
        match self.lanes {
            Lanes::F32(a) => ex!(a, F32, 0.0f32),
            Lanes::F64(a) => ex!(a, F64, 0.0f64),
            Lanes::I32(a) => ex!(a, I32, 0i32),
            Lanes::I64(a) => ex!(a, I64, 0i64),
            Lanes::U32(a) => ex!(a, U32, 0u32),
            Lanes::U64(a) => ex!(a, U64, 0u64),
            Lanes::Bool(a) => ex!(a, Bool, false),
        }
    }

    /// Replace one lane with the single lane of a scalar value of the same
    /// element type.
    pub fn insert(&self, lane: usize, v: &Value) -> Value {
        assert!(
            lane < self.width as usize,
            "insert lane {lane} out of range"
        );
        assert_eq!(v.width, 1, "insert source must be scalar");
        assert_eq!(v.elem(), self.elem(), "insert element type mismatch");
        let mut out = *self;
        macro_rules! ins {
            ($variant:ident) => {{
                if let (Lanes::$variant(dst), Lanes::$variant(src)) = (&mut out.lanes, &v.lanes) {
                    dst[lane] = src[0];
                }
            }};
        }
        match self.lanes {
            Lanes::F32(_) => ins!(F32),
            Lanes::F64(_) => ins!(F64),
            Lanes::I32(_) => ins!(I32),
            Lanes::I64(_) => ins!(I64),
            Lanes::U32(_) => ins!(U32),
            Lanes::U64(_) => ins!(U64),
            Lanes::Bool(_) => ins!(Bool),
        }
        out
    }

    /// Horizontal sum of all lanes, returned as a scalar of the same type.
    /// Lanes are added left-to-right (the deterministic order OpenCL's
    /// `dot`-style built-ins would use on this hardware).
    pub fn reduce_add(&self) -> Value {
        let w = self.width as usize;
        match self.lanes {
            Lanes::F32(a) => Value::f32(a[..w].iter().sum()),
            Lanes::F64(a) => Value::f64(a[..w].iter().sum()),
            Lanes::I32(a) => Value::i32(a[..w].iter().fold(0i32, |s, &x| s.wrapping_add(x))),
            Lanes::I64(a) => Value::i64(a[..w].iter().fold(0i64, |s, &x| s.wrapping_add(x))),
            Lanes::U32(a) => Value::u32(a[..w].iter().fold(0u32, |s, &x| s.wrapping_add(x))),
            Lanes::U64(a) => Value::u64(a[..w].iter().fold(0u64, |s, &x| s.wrapping_add(x))),
            Lanes::Bool(_) => panic!("reduce_add on bool vector"),
        }
    }

    /// Horizontal minimum of all lanes.
    pub fn reduce_min(&self) -> Value {
        let w = self.width as usize;
        match self.lanes {
            Lanes::F32(a) => Value::f32(a[..w].iter().copied().fold(f32::INFINITY, f32::min)),
            Lanes::F64(a) => Value::f64(a[..w].iter().copied().fold(f64::INFINITY, f64::min)),
            Lanes::I32(a) => Value::i32(*a[..w].iter().min().unwrap()),
            Lanes::I64(a) => Value::i64(*a[..w].iter().min().unwrap()),
            Lanes::U32(a) => Value::u32(*a[..w].iter().min().unwrap()),
            Lanes::U64(a) => Value::u64(*a[..w].iter().min().unwrap()),
            Lanes::Bool(_) => panic!("reduce_min on bool vector"),
        }
    }

    /// Horizontal maximum of all lanes.
    pub fn reduce_max(&self) -> Value {
        let w = self.width as usize;
        match self.lanes {
            Lanes::F32(a) => Value::f32(a[..w].iter().copied().fold(f32::NEG_INFINITY, f32::max)),
            Lanes::F64(a) => Value::f64(a[..w].iter().copied().fold(f64::NEG_INFINITY, f64::max)),
            Lanes::I32(a) => Value::i32(*a[..w].iter().max().unwrap()),
            Lanes::I64(a) => Value::i64(*a[..w].iter().max().unwrap()),
            Lanes::U32(a) => Value::u32(*a[..w].iter().max().unwrap()),
            Lanes::U64(a) => Value::u64(*a[..w].iter().max().unwrap()),
            Lanes::Bool(_) => panic!("reduce_max on bool vector"),
        }
    }

    /// Convert each lane to `to`, with C-style semantics (float→int
    /// truncates, int→float rounds to nearest).
    pub fn cast(&self, to: Scalar) -> Value {
        let w = self.width;
        macro_rules! out_from_f64 {
            ($get:expr) => {{
                let mut v = Value::zero(VType { elem: to, width: w });
                for i in 0..w as usize {
                    let x: f64 = $get(i);
                    v = v.insert(
                        i,
                        &match to {
                            Scalar::F32 => Value::f32(x as f32),
                            Scalar::F64 => Value::f64(x),
                            Scalar::I32 => Value::i32(x as i32),
                            Scalar::I64 => Value::i64(x as i64),
                            Scalar::U32 => Value::u32(x as u32),
                            Scalar::U64 => Value::u64(x as u64),
                            Scalar::Bool => Value::bool(x != 0.0),
                        },
                    );
                }
                v
            }};
        }
        // Integer-to-integer conversions must be exact, so route them through
        // i64/u64 rather than f64.
        if self.elem().is_int() && (to.is_int() || to == Scalar::Bool) {
            let mut v = Value::zero(VType { elem: to, width: w });
            for i in 0..w as usize {
                let x = match self.lanes {
                    Lanes::U32(a) => a[i] as u64 as i64,
                    Lanes::U64(a) => a[i] as i64,
                    _ => self.lane_i64(i),
                };
                v = v.insert(
                    i,
                    &match to {
                        Scalar::I32 => Value::i32(x as i32),
                        Scalar::I64 => Value::i64(x),
                        Scalar::U32 => Value::u32(x as u32),
                        Scalar::U64 => Value::u64(x as u64),
                        Scalar::Bool => Value::bool(x != 0),
                        _ => unreachable!(),
                    },
                );
            }
            return v;
        }
        out_from_f64!(|i| self.lane_f64(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_lanes() {
        let v = Value::splat_f32(2.5, 4);
        assert_eq!(v.width(), 4);
        assert_eq!(v.elem(), Scalar::F32);
        for i in 0..4 {
            assert_eq!(v.lane_f64(i), 2.5);
        }
    }

    #[test]
    fn broadcast_scalar() {
        let v = Value::f64(3.0).broadcast(8);
        assert_eq!(v.width(), 8);
        assert_eq!(v.lane_f64(7), 3.0);
    }

    #[test]
    #[should_panic(expected = "can only broadcast scalars")]
    fn broadcast_vector_panics() {
        let _ = Value::f32s(&[1.0, 2.0]).broadcast(4);
    }

    #[test]
    fn extract_insert_roundtrip() {
        let v = Value::f32s(&[1.0, 2.0, 3.0, 4.0]);
        let e = v.extract(2);
        assert_eq!(e.lane_f64(0), 3.0);
        let v2 = v.insert(0, &Value::f32(9.0));
        assert_eq!(v2.lane_f64(0), 9.0);
        assert_eq!(v2.lane_f64(3), 4.0);
    }

    #[test]
    fn reduce_add_f32_left_to_right() {
        let v = Value::f32s(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.reduce_add().lane_f64(0), 10.0);
    }

    #[test]
    fn reduce_add_wrapping_ints() {
        let v = Value::u32s(&[u32::MAX, 1]);
        assert_eq!(v.reduce_add().lane_i64(0), 0);
    }

    #[test]
    fn reduce_min_max() {
        let v = Value::i32s(&[3, -7, 12, 0]);
        assert_eq!(v.reduce_min().lane_i64(0), -7);
        assert_eq!(v.reduce_max().lane_i64(0), 12);
    }

    #[test]
    fn cast_float_to_int_truncates() {
        let v = Value::f32s(&[1.9, -1.9]);
        let c = v.cast(Scalar::I32);
        assert_eq!(c.lane_i64(0), 1);
        assert_eq!(c.lane_i64(1), -1);
    }

    #[test]
    fn cast_int_exact_u64() {
        // Values above 2^53 must survive u64 -> u32 truncation exactly.
        let v = Value::u64(0x1234_5678_9abc_def0);
        let c = v.cast(Scalar::U32);
        assert_eq!(c.lane_i64(0), 0x9abc_def0u32 as i64);
    }

    #[test]
    fn lane_index_rejects_negative() {
        let v = Value::i32(-1);
        let r = std::panic::catch_unwind(|| v.lane_index(0));
        assert!(r.is_err());
    }

    #[test]
    fn zero_has_right_type() {
        let z = Value::zero(VType::new(Scalar::U64, 2));
        assert_eq!(z.vtype(), VType::new(Scalar::U64, 2));
        assert_eq!(z.lane_i64(1), 0);
    }
}
