//! Data-organization helpers (§III-B "Data Organization").
//!
//! Array-of-Structures is the natural layout for particle data (nbody's
//! `{x, y, z, m}` records) but vector loads then straddle fields. The
//! Structure-of-Arrays layout puts each field in its own contiguous array,
//! so a `vload4` fetches four `x` coordinates at once. These helpers do the
//! host-side conversion; the nbody benchmark uses them to build its SOA
//! buffers, and the ablation bench measures the difference.

/// A 3-component particle record in AOS form.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Particle<T> {
    pub x: T,
    pub y: T,
    pub z: T,
    pub m: T,
}

/// SOA form of a particle set.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParticlesSoa<T> {
    pub x: Vec<T>,
    pub y: Vec<T>,
    pub z: Vec<T>,
    pub m: Vec<T>,
}

impl<T: Copy> ParticlesSoa<T> {
    pub fn len(&self) -> usize {
        self.x.len()
    }

    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    pub fn get(&self, i: usize) -> Particle<T> {
        Particle {
            x: self.x[i],
            y: self.y[i],
            z: self.z[i],
            m: self.m[i],
        }
    }
}

/// AOS → SOA.
pub fn aos_to_soa<T: Copy>(aos: &[Particle<T>]) -> ParticlesSoa<T> {
    ParticlesSoa {
        x: aos.iter().map(|p| p.x).collect(),
        y: aos.iter().map(|p| p.y).collect(),
        z: aos.iter().map(|p| p.z).collect(),
        m: aos.iter().map(|p| p.m).collect(),
    }
}

/// SOA → AOS.
pub fn soa_to_aos<T: Copy>(soa: &ParticlesSoa<T>) -> Vec<Particle<T>> {
    (0..soa.len()).map(|i| soa.get(i)).collect()
}

/// Flatten AOS records into one interleaved array (`x0 y0 z0 m0 x1 …`) —
/// the memory image an AOS OpenCL kernel indexes with `4*i + field`.
pub fn aos_flatten<T: Copy>(aos: &[Particle<T>]) -> Vec<T> {
    let mut out = Vec::with_capacity(aos.len() * 4);
    for p in aos {
        out.extend_from_slice(&[p.x, p.y, p.z, p.m]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Particle<f32>> {
        (0..5)
            .map(|i| Particle {
                x: i as f32,
                y: i as f32 + 0.25,
                z: i as f32 + 0.5,
                m: 1.0 + i as f32,
            })
            .collect()
    }

    #[test]
    fn roundtrip() {
        let aos = sample();
        let soa = aos_to_soa(&aos);
        assert_eq!(soa.len(), 5);
        assert_eq!(soa_to_aos(&soa), aos);
    }

    #[test]
    fn soa_fields_contiguous() {
        let soa = aos_to_soa(&sample());
        assert_eq!(soa.x, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(soa.m[4], 5.0);
    }

    #[test]
    fn flatten_interleaves() {
        let flat = aos_flatten(&sample());
        assert_eq!(flat.len(), 20);
        assert_eq!(&flat[..4], &[0.0, 0.25, 0.5, 1.0]);
        assert_eq!(flat[4], 1.0); // x1
    }

    #[test]
    fn empty_sets() {
        let soa = aos_to_soa::<f64>(&[]);
        assert!(soa.is_empty());
        assert!(soa_to_aos(&soa).is_empty());
    }
}
