//! Constant folding and dead-code elimination.
//!
//! The §III-B "Directives and Type Qualifiers" discussion is about giving
//! the compiler license to optimize (`const` → "the compiler can make more
//! assumptions and produce significant optimizations"). These two passes
//! are the concrete form of that license on our IR:
//!
//! * **fold**: a binary/unary/mad/select op whose operands are all
//!   immediates is computed at compile time and replaced by a `Mov` of the
//!   result; immediate-`Mov` registers that are never reassigned propagate
//!   into operand positions, cascading further folds.
//! * **dce**: pure ops whose destination register is never read anywhere
//!   (and which have no memory side effects) are deleted.
//!
//! Both passes are semantics-preserving for *all* kernels (verified by the
//! equivalence tests below). The [`autotune`](mod@crate::autotune) pipeline
//! runs [`optimize`] on every transformed candidate, cleaning up what
//! vectorization/unrolling exposed before the candidate is costed.

use kernel_ir::{
    eval_bin, eval_mad, eval_un, Lanes, Op, Operand, Program, Reg, Scalar, VType, Value,
};
use std::collections::HashMap;

/// Evaluate an immediate operand at type `ty` (width-1 evaluation is
/// enough: widened immediates splat).
fn imm_value(o: &Operand, ty: VType) -> Option<Value> {
    match o {
        Operand::ImmF(x) => Some(match ty.elem {
            Scalar::F32 => Value::splat_f32(*x as f32, ty.width),
            Scalar::F64 => Value::splat_f64(*x, ty.width),
            _ => return None,
        }),
        Operand::ImmI(x) => Some(match ty.elem {
            Scalar::F32 => Value::splat_f32(*x as f32, ty.width),
            Scalar::F64 => Value::splat_f64(*x as f64, ty.width),
            Scalar::I32 => Value::splat_i32(*x as i32, ty.width),
            Scalar::I64 => Value::splat_i64(*x, ty.width),
            Scalar::U32 => Value::splat_u32(*x as u32, ty.width),
            Scalar::U64 => Value::splat_u64(*x as u64, ty.width),
            Scalar::Bool => return None,
        }),
        Operand::Reg(_) => None,
    }
}

/// Turn a computed scalar-or-splat value back into an immediate operand, if
/// it is exactly representable (floats round-trip through f64; integers
/// through i64).
fn value_to_imm(v: &Value) -> Option<Operand> {
    // All lanes must agree (they do for splat computations).
    let w = v.width() as usize;
    match v.lanes() {
        Lanes::F32(a) => {
            if a[..w].iter().all(|x| *x == a[0]) {
                Some(Operand::ImmF(a[0] as f64))
            } else {
                None
            }
        }
        Lanes::F64(a) => {
            if a[..w].iter().all(|x| *x == a[0]) {
                Some(Operand::ImmF(a[0]))
            } else {
                None
            }
        }
        Lanes::I32(a) => a[..w]
            .iter()
            .all(|x| *x == a[0])
            .then(|| Operand::ImmI(a[0] as i64)),
        Lanes::I64(a) => a[..w]
            .iter()
            .all(|x| *x == a[0])
            .then(|| Operand::ImmI(a[0])),
        Lanes::U32(a) => a[..w]
            .iter()
            .all(|x| *x == a[0])
            .then(|| Operand::ImmI(a[0] as i64)),
        Lanes::U64(a) => {
            if a[..w].iter().all(|x| *x == a[0]) && a[0] <= i64::MAX as u64 {
                Some(Operand::ImmI(a[0] as i64))
            } else {
                None
            }
        }
        Lanes::Bool(_) => None,
    }
}

/// How many times each register is written anywhere in the program.
fn write_counts(p: &Program) -> HashMap<Reg, u32> {
    let mut counts = HashMap::new();
    for op in &p.body {
        op.visit(&mut |o| {
            if let Some(d) = o.dst_reg() {
                *counts.entry(d).or_insert(0) += 1;
            }
        });
    }
    counts
}

/// Constant-fold `p`. Single fixed pass over the (recursively visited)
/// body, applied repeatedly by [`optimize`] until it stops changing.
pub fn fold_constants(p: &Program) -> Program {
    let mut out = p.clone();
    let writes = write_counts(p);
    // Registers holding a program-wide constant: written exactly once, by a
    // top-level `Mov` of an immediate, and **not read before that `Mov`**
    // (registers zero-initialize, so a read preceding the write must keep
    // seeing zero). `read_set`-style linear scan tracks reads-so-far.
    let mut consts: HashMap<Reg, Operand> = HashMap::new();
    let mut read_before: std::collections::HashSet<Reg> = Default::default();
    for op in &out.body {
        if let Op::Mov {
            dst,
            a: a @ (Operand::ImmF(_) | Operand::ImmI(_)),
        } = op
        {
            if writes.get(dst) == Some(&1) && !read_before.contains(dst) {
                consts.insert(*dst, *a);
            }
        }
        // Record every register this op (or anything nested in it) reads.
        op.visit(&mut |o| {
            let mut use_op = |x: &Operand| {
                if let Operand::Reg(r) = x {
                    read_before.insert(*r);
                }
            };
            match o {
                Op::Bin { a, b, .. } => {
                    use_op(a);
                    use_op(b);
                }
                Op::Un { a, .. } | Op::Mov { a, .. } | Op::Cast { a, .. } => use_op(a),
                Op::Mad { a, b, c, .. } => {
                    use_op(a);
                    use_op(b);
                    use_op(c);
                }
                Op::Select { cond, a, b, .. } => {
                    use_op(cond);
                    use_op(a);
                    use_op(b);
                }
                Op::Horiz { a, .. } | Op::Extract { a, .. } => use_op(a),
                Op::Insert { v, .. } => use_op(v),
                Op::Load { idx, .. } => use_op(idx),
                Op::VLoad { base, .. } => use_op(base),
                Op::Store { idx, val, .. } => {
                    use_op(idx);
                    use_op(val);
                }
                Op::VStore { base, val, .. } => {
                    use_op(base);
                    use_op(val);
                }
                Op::Atomic { idx, val, .. } => {
                    use_op(idx);
                    use_op(val);
                }
                Op::For {
                    start, end, step, ..
                } => {
                    use_op(start);
                    use_op(end);
                    use_op(step);
                }
                Op::If { cond, .. } => use_op(cond),
                Op::Query { .. } | Op::Barrier => {}
            }
        });
    }
    let subst = |o: &mut Operand| {
        if let Operand::Reg(r) = o {
            if let Some(imm) = consts.get(r) {
                *o = *imm;
            }
        }
    };
    fn rewrite(
        ops: &mut [Op],
        regs: &[VType],
        writes: &HashMap<Reg, u32>,
        subst: &impl Fn(&mut Operand),
    ) {
        for op in ops {
            match op {
                Op::Bin {
                    dst,
                    op: b,
                    a,
                    b: rhs,
                } => {
                    subst(a);
                    subst(rhs);
                    let ty = regs[dst.0 as usize];
                    // Compare ops change the result type; skip folding them.
                    if !b.is_compare() && writes.get(dst) == Some(&1) {
                        if let (Some(va), Some(vb)) = (imm_value(a, ty), imm_value(rhs, ty)) {
                            // Division by a zero immediate must stay a
                            // runtime fault, not a compile-time panic.
                            let divides =
                                matches!(b, kernel_ir::BinOp::Div | kernel_ir::BinOp::Rem);
                            let zero_rhs = matches!(rhs, Operand::ImmI(0));
                            if !(divides && zero_rhs && ty.elem.is_int()) {
                                if let Some(imm) = value_to_imm(&eval_bin(*b, &va, &vb)) {
                                    *op = Op::Mov { dst: *dst, a: imm };
                                }
                            }
                        }
                    }
                }
                Op::Un { dst, op: u, a } => {
                    subst(a);
                    let ty = regs[dst.0 as usize];
                    if writes.get(dst) == Some(&1) && !matches!(u, kernel_ir::UnOp::Not) {
                        if let Some(va) = imm_value(a, ty) {
                            if ty.elem.is_float() {
                                if let Some(imm) = value_to_imm(&eval_un(*u, &va)) {
                                    *op = Op::Mov { dst: *dst, a: imm };
                                }
                            }
                        }
                    }
                }
                Op::Mad { dst, a, b, c } => {
                    subst(a);
                    subst(b);
                    subst(c);
                    let ty = regs[dst.0 as usize];
                    if writes.get(dst) == Some(&1) {
                        if let (Some(va), Some(vb), Some(vc)) =
                            (imm_value(a, ty), imm_value(b, ty), imm_value(c, ty))
                        {
                            if let Some(imm) = value_to_imm(&eval_mad(&va, &vb, &vc)) {
                                *op = Op::Mov { dst: *dst, a: imm };
                            }
                        }
                    }
                }
                Op::Select { cond, a, b, .. } => {
                    subst(cond);
                    subst(a);
                    subst(b);
                }
                Op::Mov { a, .. } | Op::Cast { a, .. } => subst(a),
                Op::Insert { v, .. } => subst(v),
                Op::Load { idx, .. } => subst(idx),
                Op::VLoad { base, .. } => subst(base),
                Op::Store { idx, val, .. } => {
                    subst(idx);
                    subst(val);
                }
                Op::VStore { base, val, .. } => {
                    subst(base);
                    subst(val);
                }
                Op::Atomic { idx, val, .. } => {
                    subst(idx);
                    subst(val);
                }
                Op::For {
                    start,
                    end,
                    step,
                    body,
                    ..
                } => {
                    subst(start);
                    subst(end);
                    subst(step);
                    rewrite(body, regs, writes, subst);
                }
                Op::If { cond, then, els } => {
                    subst(cond);
                    rewrite(then, regs, writes, subst);
                    rewrite(els, regs, writes, subst);
                }
                Op::Horiz { .. } | Op::Extract { .. } | Op::Query { .. } | Op::Barrier => {}
            }
        }
    }
    let regs = out.regs.clone();
    rewrite(&mut out.body, &regs, &writes, &subst);
    out
}

/// Registers read anywhere in the program (as operands).
fn read_set(p: &Program) -> std::collections::HashSet<Reg> {
    let mut reads = std::collections::HashSet::new();
    for op in &p.body {
        op.visit(&mut |o| {
            let mut use_op = |x: &Operand| {
                if let Operand::Reg(r) = x {
                    reads.insert(*r);
                }
            };
            match o {
                Op::Bin { a, b, .. } => {
                    use_op(a);
                    use_op(b);
                }
                Op::Un { a, .. } | Op::Mov { a, .. } | Op::Cast { a, .. } => use_op(a),
                Op::Mad { a, b, c, .. } => {
                    use_op(a);
                    use_op(b);
                    use_op(c);
                }
                Op::Select { cond, a, b, .. } => {
                    use_op(cond);
                    use_op(a);
                    use_op(b);
                }
                Op::Horiz { a, .. } | Op::Extract { a, .. } => use_op(a),
                Op::Insert { v, .. } => use_op(v),
                Op::Load { idx, .. } => use_op(idx),
                Op::VLoad { base, .. } => use_op(base),
                Op::Store { idx, val, .. } => {
                    use_op(idx);
                    use_op(val);
                }
                Op::VStore { base, val, .. } => {
                    use_op(base);
                    use_op(val);
                }
                Op::Atomic { idx, val, .. } => {
                    use_op(idx);
                    use_op(val);
                }
                Op::For {
                    start, end, step, ..
                } => {
                    use_op(start);
                    use_op(end);
                    use_op(step);
                }
                Op::If { cond, .. } => use_op(cond),
                Op::Query { .. } | Op::Barrier => {}
            }
        });
    }
    reads
}

/// Whether deleting this op is safe when its destination is dead: pure
/// register computations only (memory writes and atomics always stay, and
/// loads stay too — a real compiler may not remove a potentially-faulting
/// access, and our cost model counts them).
fn is_pure(op: &Op) -> bool {
    matches!(
        op,
        Op::Bin { .. }
            | Op::Un { .. }
            | Op::Mad { .. }
            | Op::Select { .. }
            | Op::Mov { .. }
            | Op::Cast { .. }
            | Op::Horiz { .. }
            | Op::Extract { .. }
            | Op::Insert { .. }
            | Op::Query { .. }
    )
}

/// Delete pure ops whose destination register is never read.
pub fn eliminate_dead_code(p: &Program) -> Program {
    let mut out = p.clone();
    let reads = read_set(p);
    fn sweep(ops: &mut Vec<Op>, reads: &std::collections::HashSet<Reg>) {
        ops.retain_mut(|op| match op {
            Op::For { body, .. } => {
                sweep(body, reads);
                true
            }
            Op::If { then, els, .. } => {
                sweep(then, reads);
                sweep(els, reads);
                true
            }
            other => {
                if let Some(d) = other.dst_reg() {
                    if is_pure(other) && !reads.contains(&d) {
                        return false;
                    }
                }
                true
            }
        });
    }
    sweep(&mut out.body, &reads);
    out
}

/// Fold + DCE to a fixed point (bounded — each iteration strictly shrinks
/// or stabilizes the op count).
pub fn optimize(p: &Program) -> Program {
    let mut cur = p.clone();
    for _ in 0..8 {
        let folded = fold_constants(&cur);
        let swept = eliminate_dead_code(&folded);
        let before = op_count(&cur);
        let after = op_count(&swept);
        cur = swept;
        if after == before {
            break;
        }
    }
    cur.validate()
        .expect("optimizer produced invalid IR — pass bug");
    cur
}

/// Total op count including nested bodies (pass-effect metric).
pub fn op_count(p: &Program) -> usize {
    let mut n = 0;
    for op in &p.body {
        op.visit(&mut |_| n += 1);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_ir::prelude::*;
    use kernel_ir::{Access, BufferData, NullTracer};

    /// Kernel with foldable constant arithmetic feeding a store.
    fn const_heavy() -> Program {
        let mut kb = KernelBuilder::new("ch");
        let o = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let a = kb.mov(Operand::ImmF(2.0), VType::scalar(Scalar::F32));
        let b = kb.bin(
            BinOp::Mul,
            a.into(),
            Operand::ImmF(3.0),
            VType::scalar(Scalar::F32),
        );
        let c = kb.bin(
            BinOp::Add,
            b.into(),
            Operand::ImmF(1.0),
            VType::scalar(Scalar::F32),
        );
        let dead = kb.bin(
            BinOp::Sub,
            c.into(),
            Operand::ImmF(5.0),
            VType::scalar(Scalar::F32),
        );
        let _ = dead; // never used
        kb.store(o, gid.into(), c.into());
        kb.finish()
    }

    fn run(p: &Program, n: usize) -> Vec<f32> {
        let mut pool = MemoryPool::new();
        let o = pool.add(BufferData::zeroed(Scalar::F32, n));
        run_ndrange(
            p,
            &[ArgBinding::Global(o)],
            &mut pool,
            NDRange::d1(n, n.min(4)),
            &mut NullTracer,
        )
        .unwrap();
        pool.get(o).as_f32().to_vec()
    }

    #[test]
    fn folds_and_sweeps_constant_chain() {
        let p = const_heavy();
        let o = optimize(&p);
        assert!(
            op_count(&o) < op_count(&p),
            "{} -> {}",
            op_count(&p),
            op_count(&o)
        );
        assert_eq!(run(&p, 8), run(&o, 8));
        assert_eq!(run(&o, 8), vec![7.0f32; 8]);
        // The dead subtract disappeared entirely.
        let s = o.to_string();
        assert!(!s.contains("- 5"), "dead op survived:\n{s}");
    }

    #[test]
    fn does_not_fold_runtime_values() {
        // gid-dependent arithmetic must survive.
        let mut kb = KernelBuilder::new("rt");
        let o = kb.arg_global(Scalar::U32, Access::ReadWrite, false);
        let gid = kb.query_global_id(0);
        let v = kb.load(Scalar::U32, o, gid.into());
        let w = kb.bin(
            BinOp::Add,
            v.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        kb.store(o, gid.into(), w.into());
        let p = kb.finish();
        let o2 = optimize(&p);
        assert_eq!(op_count(&p), op_count(&o2));
    }

    #[test]
    fn keeps_loads_and_stores() {
        // A dead *load* stays (cost model counts it; faulting semantics).
        let mut kb = KernelBuilder::new("dl");
        let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let o = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let _dead_load = kb.load(Scalar::F32, a, gid.into());
        kb.store(o, gid.into(), Operand::ImmF(1.0));
        let p = kb.finish();
        let opt = optimize(&p);
        let loads = |p: &Program| {
            let mut n = 0;
            for op in &p.body {
                op.visit(&mut |o| n += matches!(o, Op::Load { .. }) as usize);
            }
            n
        };
        assert_eq!(loads(&p), loads(&opt));
    }

    #[test]
    fn multiply_written_register_not_propagated() {
        // acc initialized to a constant then accumulated in a loop: the
        // initial Mov must NOT be propagated into the loop body.
        let mut kb = KernelBuilder::new("acc");
        let o = kb.arg_global(Scalar::F32, Access::ReadWrite, false);
        let acc = kb.mov(Operand::ImmF(1.0), VType::scalar(Scalar::F32));
        kb.for_loop(
            Operand::ImmI(0),
            Operand::ImmI(4),
            Operand::ImmI(1),
            |kb, _| {
                kb.bin_into(acc, BinOp::Mul, acc.into(), Operand::ImmF(2.0));
            },
        );
        let gid = kb.query_global_id(0);
        kb.store(o, gid.into(), acc.into());
        let p = kb.finish();
        let opt = optimize(&p);
        assert_eq!(run(&p, 2), run(&opt, 2));
        assert_eq!(run(&opt, 2), vec![16.0f32; 2]);
    }

    #[test]
    fn read_before_write_sees_zero_init_not_the_constant() {
        // Hand-built IR reading a register before its single Mov: the read
        // observes the zero initialization; propagation must not rewrite it.
        use kernel_ir::{ArgDecl, Hints, Reg};
        let p = Program {
            name: "rbw".into(),
            args: vec![ArgDecl::GlobalBuf {
                elem: Scalar::F32,
                access: kernel_ir::Access::ReadWrite,
                restrict: false,
            }],
            regs: vec![
                kernel_ir::VType::scalar(Scalar::F32), // r0: read early, Mov'd late
                kernel_ir::VType::scalar(Scalar::F32), // r1: captures early value
                kernel_ir::VType::scalar(Scalar::U32), // r2: gid
            ],
            body: vec![
                Op::Query {
                    dst: Reg(2),
                    q: kernel_ir::Builtin::GlobalId(0),
                },
                // r1 = r0 + 1.0 (r0 is still zero here)
                Op::Bin {
                    dst: Reg(1),
                    op: kernel_ir::BinOp::Add,
                    a: Operand::Reg(Reg(0)),
                    b: Operand::ImmF(1.0),
                },
                // r0 = 42.0 (single write, but AFTER the read)
                Op::Mov {
                    dst: Reg(0),
                    a: Operand::ImmF(42.0),
                },
                Op::Store {
                    buf: kernel_ir::ArgIdx(0),
                    idx: Operand::Reg(Reg(2)),
                    val: Operand::Reg(Reg(1)),
                },
            ],
            hints: Hints::default(),
        };
        p.validate().unwrap();
        let opt = optimize(&p);
        assert_eq!(run(&p, 2), run(&opt, 2));
        assert_eq!(
            run(&opt, 2),
            vec![1.0f32; 2],
            "read-before-write must stay 0+1"
        );
    }

    #[test]
    fn integer_division_by_zero_not_folded() {
        let mut kb = KernelBuilder::new("dz");
        let o = kb.arg_global(Scalar::I32, Access::ReadWrite, false);
        let a = kb.mov(Operand::ImmI(4), VType::scalar(Scalar::I32));
        let d = kb.bin(
            BinOp::Div,
            a.into(),
            Operand::ImmI(0),
            VType::scalar(Scalar::I32),
        );
        let gid = kb.query_global_id(0);
        kb.store(o, gid.into(), d.into());
        let p = kb.finish();
        // Optimizing must not panic at compile time...
        let opt = optimize(&p);
        // ...and the fault must still happen at run time.
        let r = std::panic::catch_unwind(|| run(&opt, 1));
        assert!(r.is_err(), "division by zero must remain a runtime fault");
    }

    #[test]
    fn idempotent_at_fixed_point() {
        let p = const_heavy();
        let once = optimize(&p);
        let twice = optimize(&once);
        assert_eq!(op_count(&once), op_count(&twice));
        assert_eq!(run(&once, 4), run(&twice, 4));
    }
}
