//! End-to-end kernel autotuning: compose the §III transformation passes
//! (vectorization × unrolling) with the §III-A launch-parameter sweep into
//! a single empirical search.
//!
//! The paper closes §III by pointing at Phothilimthana et al.'s empirical
//! auto-tuning as the future answer to OpenCL's performance-portability
//! problem; this module is that idea scoped to the Mali model: enumerate
//! legal (vector width, unroll factor, work-group size) combinations,
//! transform the kernel for each, let the caller launch it on the
//! simulator, and keep the fastest — recording *why* each rejected
//! candidate fell out (pass refusals, `CL_OUT_OF_RESOURCES`, indivisible
//! sizes), because the diagnostics are how a user learns which §III
//! technique their kernel is missing.

use crate::fold::optimize;
use crate::unroll::{unroll, UnrollRefusal};
use crate::vectorize::{vectorize, VectorizeRefusal};
use kernel_ir::Program;

/// The search space. Width/unroll value `1` means "leave the kernel as
/// written".
#[derive(Clone, Debug)]
pub struct SearchSpace {
    pub widths: Vec<u8>,
    pub unrolls: Vec<u32>,
    pub work_groups: Vec<usize>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace {
            widths: vec![1, 2, 4, 8, 16],
            unrolls: vec![1, 2, 4],
            work_groups: vec![32, 64, 128, 256],
        }
    }
}

impl SearchSpace {
    pub fn len(&self) -> usize {
        self.widths.len() * self.unrolls.len() * self.work_groups.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One point of the search space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    pub width: u8,
    pub unroll: u32,
    pub work_group: usize,
}

/// Why a candidate never produced a measurement.
#[derive(Clone, Debug, PartialEq)]
pub enum CandidateSkip {
    Vectorize(VectorizeRefusal),
    Unroll(UnrollRefusal),
    /// The evaluation closure declined (launch failure, indivisible
    /// global size, `CL_OUT_OF_RESOURCES`, …).
    Launch,
}

impl std::fmt::Display for CandidateSkip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CandidateSkip::Vectorize(r) => write!(f, "vectorizer: {r}"),
            CandidateSkip::Unroll(r) => write!(f, "unroller: {r}"),
            CandidateSkip::Launch => f.write_str("launch failed or sizes indivisible"),
        }
    }
}

/// One evaluated (or skipped) search point.
#[derive(Clone, Debug)]
pub struct Trial {
    pub candidate: Candidate,
    pub outcome: Result<f64, CandidateSkip>,
}

/// The full search record.
#[derive(Clone, Debug)]
pub struct AutotuneResult {
    pub trials: Vec<Trial>,
    best: Option<usize>,
    /// The transformed program of the winning candidate.
    pub best_program: Option<Program>,
}

impl AutotuneResult {
    pub fn best(&self) -> Option<(&Candidate, f64)> {
        self.best.map(|i| {
            let t = &self.trials[i];
            (&t.candidate, *t.outcome.as_ref().unwrap())
        })
    }

    /// Speedup of the winner over the untransformed kernel at its best
    /// work-group size (None when either side is missing).
    pub fn gain_over_baseline(&self) -> Option<f64> {
        let (_, best) = self.best()?;
        let baseline = self
            .trials
            .iter()
            .filter(|t| t.candidate.width == 1 && t.candidate.unroll == 1)
            .filter_map(|t| t.outcome.as_ref().ok().copied())
            .fold(f64::INFINITY, f64::min);
        if baseline.is_finite() {
            Some(baseline / best)
        } else {
            None
        }
    }

    pub fn skipped(&self) -> usize {
        self.trials.iter().filter(|t| t.outcome.is_err()).count()
    }

    /// Distinct skip diagnostics, for reporting.
    pub fn skip_reasons(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .trials
            .iter()
            .filter_map(|t| t.outcome.as_ref().err().map(|e| e.to_string()))
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

/// Transform `base` for one candidate. Width 1 / unroll 1 are identities.
/// Returns the transformed program plus the factor by which the *global
/// size* must shrink (the vectorizer's `global_divisor`).
pub fn transform(base: &Program, c: Candidate) -> Result<(Program, usize), CandidateSkip> {
    let (mut p, divisor) = if c.width > 1 {
        let v = vectorize(base, c.width).map_err(CandidateSkip::Vectorize)?;
        (v.program, v.global_divisor)
    } else {
        (base.clone(), 1)
    };
    if c.unroll > 1 {
        p = unroll(&p, c.unroll).map_err(CandidateSkip::Unroll)?;
    }
    // Clean up what the transformations exposed (folded immediates, dead
    // index chains) before the candidate is costed.
    Ok((optimize(&p), divisor))
}

/// Run the search. The evaluation closure receives the transformed
/// program, the global-size divisor, and the candidate work-group size; it
/// returns the measured cost in seconds, or `None` when the launch is
/// impossible (the tuner records a `Launch` skip and moves on — this is
/// how `CL_OUT_OF_RESOURCES` fallbacks happen automatically).
pub fn autotune(
    base: &Program,
    space: &SearchSpace,
    mut eval: impl FnMut(&Program, usize, usize) -> Option<f64>,
) -> AutotuneResult {
    let mut trials: Vec<Trial> = Vec::with_capacity(space.len());
    let mut best: Option<usize> = None;
    let mut best_program = None;
    for &width in &space.widths {
        for &unroll_f in &space.unrolls {
            let candidate_base = transform(
                base,
                Candidate {
                    width,
                    unroll: unroll_f,
                    work_group: 0,
                },
            );
            for &wg in &space.work_groups {
                let candidate = Candidate {
                    width,
                    unroll: unroll_f,
                    work_group: wg,
                };
                let outcome = match &candidate_base {
                    Err(skip) => Err(skip.clone()),
                    Ok((p, divisor)) => match eval(p, *divisor, wg) {
                        Some(cost) => Ok(cost),
                        None => Err(CandidateSkip::Launch),
                    },
                };
                if let Ok(cost) = outcome {
                    let better = match best {
                        None => true,
                        Some(i) => cost < *trials[i].outcome.as_ref().unwrap(),
                    };
                    if better {
                        best = Some(trials.len());
                        best_program = candidate_base.as_ref().ok().map(|(p, _)| p.clone());
                    }
                }
                trials.push(Trial { candidate, outcome });
            }
        }
    }
    AutotuneResult {
        trials,
        best,
        best_program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_ir::prelude::*;
    use kernel_ir::Access;

    fn map_kernel() -> Program {
        let mut kb = KernelBuilder::new("map");
        let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let o = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let v = kb.load(Scalar::F32, a, gid.into());
        let r = kb.mad(
            v.into(),
            v.into(),
            Operand::ImmF(1.0),
            VType::scalar(Scalar::F32),
        );
        kb.store(o, gid.into(), r.into());
        kb.finish()
    }

    /// Synthetic cost model: wider is better until 8, wg 128 is best,
    /// unrolling impossible (no loop).
    fn fake_eval(p: &Program, divisor: usize, wg: usize) -> Option<f64> {
        let _ = p;
        if wg > 128 {
            return None; // pretend OUT_OF_RESOURCES
        }
        let w = divisor.clamp(1, 8) as f64;
        Some(1.0 / w + (wg as f64 - 128.0).abs() * 1e-4)
    }

    #[test]
    fn finds_the_synthetic_optimum() {
        let r = autotune(&map_kernel(), &SearchSpace::default(), fake_eval);
        let (c, cost) = r.best().expect("something ran");
        assert_eq!(c.work_group, 128);
        assert!(
            c.width >= 8,
            "width {} should saturate the fake model",
            c.width
        );
        assert!(cost <= 0.126);
        assert!(r.best_program.is_some());
        // unroll candidates were skipped (no loop) and recorded as such.
        assert!(r
            .skip_reasons()
            .iter()
            .any(|s| s.contains("no top-level loop")));
        // wg 256 candidates were rejected by the launcher.
        assert!(r.trials.iter().any(|t| {
            t.candidate.work_group == 256 && matches!(t.outcome, Err(CandidateSkip::Launch))
        }));
    }

    #[test]
    fn gain_over_baseline_compares_scalar() {
        let r = autotune(&map_kernel(), &SearchSpace::default(), fake_eval);
        let g = r.gain_over_baseline().unwrap();
        assert!(g > 5.0, "fake model gives ~8x for width 8, got {g:.2}");
    }

    #[test]
    fn unvectorizable_kernel_only_runs_scalar() {
        // hist-like kernel with an atomic: every width>1 candidate skips.
        let mut kb = KernelBuilder::new("atomic");
        let h = kb.arg_global(Scalar::U32, Access::ReadWrite, false);
        let gid = kb.query_global_id(0);
        kb.atomic(AtomicOp::Inc, h, gid.into(), Operand::ImmI(0));
        let p = kb.finish();
        let r = autotune(&p, &SearchSpace::default(), |_, _, wg| Some(wg as f64));
        let (c, _) = r.best().unwrap();
        assert_eq!(c.width, 1);
        assert!(r.skip_reasons().iter().any(|s| s.contains("atomic")));
    }

    #[test]
    fn all_failures_yield_no_best() {
        let r = autotune(&map_kernel(), &SearchSpace::default(), |_, _, _| None);
        assert!(r.best().is_none());
        assert!(r.best_program.is_none());
        assert_eq!(r.skipped(), r.trials.len());
        assert!(r.gain_over_baseline().is_none());
    }

    #[test]
    fn space_len() {
        assert_eq!(SearchSpace::default().len(), 5 * 3 * 4);
        assert!(!SearchSpace::default().is_empty());
    }
}
