//! Automatic vectorization of element-wise kernels (§III-B
//! "Vectorization").
//!
//! The pass turns a scalar map-shaped kernel — every work-item loads
//! elements at `get_global_id(0)`, computes, stores at `get_global_id(0)` —
//! into a kernel where each work-item processes `W` consecutive elements
//! with `vloadW`/`vstoreW` and W-lane arithmetic, so the host shrinks the
//! global work size by `W`. This is exactly the transformation the paper
//! applies by hand to vecop-style kernels, and the *refusal diagnostics*
//! reproduce its discussion of why some benchmarks don't vectorize:
//! indirect accesses (spmv), atomics (hist), control flow (amcd), AOS
//! layout / non-gid indexing (nbody).

use kernel_ir::{BinOp, Builtin, Op, Operand, Program, Reg, Scalar, VType};

/// Why the vectorizer declined a kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VectorizeRefusal {
    /// Loops would need dependence analysis beyond this pass.
    HasLoop,
    /// Divergent control flow: would require if-conversion.
    HasBranch,
    HasBarrier,
    /// Atomic RMWs don't widen (hist).
    HasAtomic,
    /// A load/store is indexed by something other than `get_global_id(0)`
    /// (spmv's `x[col[j]]`, nbody's AOS strides).
    NonGidIndexing,
    /// Kernel already uses vector types.
    AlreadyVector,
    /// `get_global_id(0)` is consumed as a *value* (stored or used in
    /// non-index arithmetic); widening would broadcast one id across all
    /// lanes instead of producing gid·W+lane per lane.
    GidUsedAsData,
    /// Uses local ids / local memory, whose meaning changes under widening.
    UsesLocalStructure,
    /// Requested width out of the OpenCL 2/4/8/16 set, or would exceed 16
    /// lanes.
    BadWidth,
}

impl std::fmt::Display for VectorizeRefusal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            VectorizeRefusal::HasLoop => "kernel contains loops",
            VectorizeRefusal::HasBranch => "kernel contains divergent control flow",
            VectorizeRefusal::HasBarrier => "kernel contains barriers",
            VectorizeRefusal::HasAtomic => "kernel contains atomic operations",
            VectorizeRefusal::NonGidIndexing => {
                "memory access not indexed directly by get_global_id(0)"
            }
            VectorizeRefusal::AlreadyVector => "kernel already uses vector types",
            VectorizeRefusal::GidUsedAsData => {
                "get_global_id(0) is used as data, not just as an index"
            }
            VectorizeRefusal::UsesLocalStructure => "kernel uses local ids or local memory",
            VectorizeRefusal::BadWidth => "unsupported vector width",
        };
        f.write_str(s)
    }
}

/// A successfully vectorized kernel.
#[derive(Clone, Debug)]
pub struct Vectorized {
    pub program: Program,
    /// Lane count per work-item.
    pub width: u8,
    /// Divide the original global work size by this before enqueue.
    pub global_divisor: usize,
}

/// Attempt to vectorize `p` by factor `width`.
pub fn vectorize(p: &Program, width: u8) -> Result<Vectorized, VectorizeRefusal> {
    if !matches!(width, 2 | 4 | 8 | 16) {
        return Err(VectorizeRefusal::BadWidth);
    }
    // ---- shape checks -------------------------------------------------
    let mut gid_regs: Vec<Reg> = Vec::new();
    for op in &p.body {
        match op {
            Op::For { .. } => return Err(VectorizeRefusal::HasLoop),
            Op::If { .. } => return Err(VectorizeRefusal::HasBranch),
            Op::Barrier => return Err(VectorizeRefusal::HasBarrier),
            Op::Atomic { .. } => return Err(VectorizeRefusal::HasAtomic),
            Op::Query { dst, q } => match q {
                Builtin::GlobalId(0) => gid_regs.push(*dst),
                Builtin::GlobalSize(_) | Builtin::NumGroups(_) => {}
                _ => return Err(VectorizeRefusal::UsesLocalStructure),
            },
            _ => {}
        }
    }
    if p.regs.iter().any(|t| t.width > 1) {
        return Err(VectorizeRefusal::AlreadyVector);
    }
    if p.args
        .iter()
        .any(|a| matches!(a, kernel_ir::ArgDecl::LocalBuf { .. }))
    {
        return Err(VectorizeRefusal::UsesLocalStructure);
    }
    let is_gid = |o: &Operand| matches!(o, Operand::Reg(r) if gid_regs.contains(r));
    // The gid registers may appear ONLY as Load/Store indices: any other
    // use (arithmetic, stored value) is per-item data that widening would
    // corrupt (one id broadcast to W lanes).
    for op in &p.body {
        let uses_gid_as_data = match op {
            // Index positions are the legitimate use.
            Op::Load { .. } => false,
            Op::Store { val, .. } => is_gid(val),
            Op::Query { .. } => false,
            Op::Bin { a, b, .. } => is_gid(a) || is_gid(b),
            Op::Un { a, .. } | Op::Mov { a, .. } | Op::Cast { a, .. } => is_gid(a),
            Op::Mad { a, b, c, .. } => is_gid(a) || is_gid(b) || is_gid(c),
            Op::Select { cond, a, b, .. } => is_gid(cond) || is_gid(a) || is_gid(b),
            Op::Horiz { a, .. } | Op::Extract { a, .. } => is_gid(a),
            Op::Insert { v, .. } => is_gid(v),
            _ => false,
        };
        if uses_gid_as_data {
            return Err(VectorizeRefusal::GidUsedAsData);
        }
    }
    // Every memory access must be gid-indexed (scalar-arg loads exempt).
    for op in &p.body {
        match op {
            Op::Load { buf, idx, .. } => {
                let is_scalar_arg = matches!(
                    p.args.get(buf.0 as usize),
                    Some(kernel_ir::ArgDecl::Scalar { .. })
                );
                if !is_scalar_arg && !is_gid(idx) {
                    return Err(VectorizeRefusal::NonGidIndexing);
                }
            }
            Op::Store { idx, .. } if !is_gid(idx) => {
                return Err(VectorizeRefusal::NonGidIndexing);
            }
            Op::VLoad { .. } | Op::VStore { .. } => return Err(VectorizeRefusal::AlreadyVector),
            _ => {}
        }
    }

    // ---- varying analysis ------------------------------------------------
    // A register is *varying* if its value differs per lane after widening:
    // anything data-flow-reachable from a gid-indexed load. gid itself and
    // uniform scalars stay width-1 (immediates/scalars broadcast at use).
    let nregs = p.regs.len();
    let mut varying = vec![false; nregs];
    // Seed: destinations of gid-indexed buffer loads.
    let mut changed = true;
    while changed {
        changed = false;
        for op in &p.body {
            let deps_varying = |v: &mut Vec<bool>, ops: &[&Operand]| {
                ops.iter()
                    .any(|o| matches!(o, Operand::Reg(r) if v[r.0 as usize]))
            };
            let mark = |v: &mut Vec<bool>, r: Reg| {
                if !v[r.0 as usize] {
                    v[r.0 as usize] = true;
                    true
                } else {
                    false
                }
            };
            match op {
                Op::Load { dst, buf, .. } => {
                    let is_scalar_arg = matches!(
                        p.args.get(buf.0 as usize),
                        Some(kernel_ir::ArgDecl::Scalar { .. })
                    );
                    if !is_scalar_arg {
                        changed |= mark(&mut varying, *dst);
                    }
                }
                Op::Bin { dst, a, b, .. } if deps_varying(&mut varying, &[a, b]) => {
                    changed |= mark(&mut varying, *dst);
                }
                Op::Un { dst, a, .. } | Op::Mov { dst, a } | Op::Cast { dst, a }
                    if deps_varying(&mut varying, &[a]) =>
                {
                    changed |= mark(&mut varying, *dst);
                }
                Op::Mad { dst, a, b, c } if deps_varying(&mut varying, &[a, b, c]) => {
                    changed |= mark(&mut varying, *dst);
                }
                Op::Select { dst, cond, a, b } if deps_varying(&mut varying, &[cond, a, b]) => {
                    changed |= mark(&mut varying, *dst);
                }
                _ => {}
            }
        }
    }

    // ---- rewrite ---------------------------------------------------------
    let mut out = p.clone();
    out.name = format!("{}_v{width}", p.name);
    for (i, t) in out.regs.iter_mut().enumerate() {
        if varying[i] {
            if t.width as usize * width as usize > kernel_ir::MAX_LANES {
                return Err(VectorizeRefusal::BadWidth);
            }
            *t = VType::new(t.elem, t.width * width);
        }
    }
    // Each gid query gains a companion base register (gid * width) used by
    // the widened loads/stores.
    let mut base_of: std::collections::HashMap<u32, Reg> = Default::default();
    let mut new_body = Vec::with_capacity(out.body.len() + gid_regs.len());
    for op in out.body.drain(..) {
        match op {
            Op::Query {
                dst,
                q: Builtin::GlobalId(0),
            } => {
                new_body.push(Op::Query {
                    dst,
                    q: Builtin::GlobalId(0),
                });
                let base = Reg(out.regs.len() as u32);
                out.regs.push(VType::scalar(Scalar::U32));
                new_body.push(Op::Bin {
                    dst: base,
                    op: BinOp::Mul,
                    a: Operand::Reg(dst),
                    b: Operand::ImmI(width as i64),
                });
                base_of.insert(dst.0, base);
            }
            Op::Load { dst, buf, idx } => {
                let is_scalar_arg = matches!(
                    p.args.get(buf.0 as usize),
                    Some(kernel_ir::ArgDecl::Scalar { .. })
                );
                if is_scalar_arg {
                    new_body.push(Op::Load { dst, buf, idx });
                } else {
                    let Operand::Reg(g) = idx else {
                        unreachable!("checked gid-indexed")
                    };
                    let base = base_of[&g.0];
                    new_body.push(Op::VLoad {
                        dst,
                        buf,
                        base: Operand::Reg(base),
                    });
                }
            }
            Op::Store { buf, idx, val } => {
                let Operand::Reg(g) = idx else {
                    unreachable!("checked gid-indexed")
                };
                let base = base_of[&g.0];
                // VStore requires a register value; materialize immediates.
                let val = match val {
                    Operand::Reg(r) if varying[r.0 as usize] => Operand::Reg(r),
                    other => {
                        let elem = p.args[buf.0 as usize].elem();
                        let tmp = Reg(out.regs.len() as u32);
                        out.regs.push(VType::new(elem, width));
                        new_body.push(Op::Mov { dst: tmp, a: other });
                        Operand::Reg(tmp)
                    }
                };
                new_body.push(Op::VStore {
                    buf,
                    base: Operand::Reg(base),
                    val,
                });
            }
            other => new_body.push(other),
        }
    }
    out.body = new_body;
    out.validate()
        .expect("vectorizer produced invalid IR — pass bug");
    Ok(Vectorized {
        program: out,
        width,
        global_divisor: width as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_ir::prelude::*;
    use kernel_ir::{Access, AtomicOp, BufferData, NullTracer};

    fn vecop() -> Program {
        let mut kb = KernelBuilder::new("vecop");
        let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let b = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let c = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let va = kb.load(Scalar::F32, a, gid.into());
        let vb = kb.load(Scalar::F32, b, gid.into());
        let s = kb.bin(BinOp::Add, va.into(), vb.into(), VType::scalar(Scalar::F32));
        kb.store(c, gid.into(), s.into());
        kb.finish()
    }

    fn run(p: &Program, n: usize, wg: usize) -> Vec<f32> {
        let mut pool = MemoryPool::new();
        let a = pool.add(BufferData::from(
            (0..64)
                .map(|i| i as f32)
                .cycle()
                .take(n.max(64))
                .take(n)
                .collect::<Vec<_>>(),
        ));
        let b = pool.add(BufferData::from(vec![0.5f32; n]));
        let c = pool.add(BufferData::zeroed(Scalar::F32, n));
        let bind = [
            ArgBinding::Global(a),
            ArgBinding::Global(b),
            ArgBinding::Global(c),
        ];
        let total = n / (p.regs.iter().map(|t| t.width).max().unwrap_or(1) as usize).max(1);
        run_ndrange(p, &bind, &mut pool, NDRange::d1(total, wg), &mut NullTracer).unwrap();
        pool.get(c).as_f32().to_vec()
    }

    #[test]
    fn vectorized_vecop_matches_scalar() {
        let p = vecop();
        let scalar_out = run(&p, 256, 16);
        for w in [2u8, 4, 8, 16] {
            let v = vectorize(&p, w).unwrap();
            assert_eq!(v.global_divisor, w as usize);
            let vec_out = run(&v.program, 256, 8);
            assert_eq!(scalar_out, vec_out, "width {w} diverged");
        }
    }

    #[test]
    fn widened_registers_only_for_varying() {
        let p = vecop();
        let v = vectorize(&p, 4).unwrap();
        // The gid register stays scalar.
        let scalars = v.program.regs.iter().filter(|t| t.width == 1).count();
        let vectors = v.program.regs.iter().filter(|t| t.width == 4).count();
        assert!(scalars >= 2, "gid + base must stay scalar");
        assert_eq!(vectors, 3, "two loads + one sum widened");
    }

    #[test]
    fn refuses_loops() {
        let mut kb = KernelBuilder::new("loopy");
        let a = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
        let gid = kb.query_global_id(0);
        let acc = kb.mov(Operand::ImmF(0.0), VType::scalar(Scalar::F32));
        kb.for_loop(
            Operand::ImmI(0),
            Operand::ImmI(4),
            Operand::ImmI(1),
            |kb, _| {
                kb.bin_into(acc, BinOp::Add, acc.into(), Operand::ImmF(1.0));
            },
        );
        kb.store(a, gid.into(), acc.into());
        assert_eq!(
            vectorize(&kb.finish(), 4).unwrap_err(),
            VectorizeRefusal::HasLoop
        );
    }

    #[test]
    fn refuses_atomics_like_hist() {
        let mut kb = KernelBuilder::new("hist");
        let h = kb.arg_global(Scalar::U32, Access::ReadWrite, false);
        let gid = kb.query_global_id(0);
        let _ = gid;
        kb.atomic(AtomicOp::Inc, h, Operand::ImmI(0), Operand::ImmI(0));
        assert_eq!(
            vectorize(&kb.finish(), 4).unwrap_err(),
            VectorizeRefusal::HasAtomic
        );
    }

    #[test]
    fn refuses_indirect_like_spmv() {
        let mut kb = KernelBuilder::new("spmv_ish");
        let col = kb.arg_global(Scalar::U32, Access::ReadOnly, true);
        let x = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let y = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let c = kb.load(Scalar::U32, col, gid.into());
        let v = kb.load(Scalar::F32, x, c.into()); // x[col[gid]]
        kb.store(y, gid.into(), v.into());
        assert_eq!(
            vectorize(&kb.finish(), 4).unwrap_err(),
            VectorizeRefusal::NonGidIndexing
        );
    }

    #[test]
    fn refuses_local_ids() {
        let mut kb = KernelBuilder::new("lid");
        let a = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
        let lid = kb.query_local_id(0);
        let v = kb.load(Scalar::F32, a, lid.into());
        kb.store(a, lid.into(), v.into());
        assert_eq!(
            vectorize(&kb.finish(), 4).unwrap_err(),
            VectorizeRefusal::UsesLocalStructure
        );
    }

    #[test]
    fn refuses_branches() {
        let mut kb = KernelBuilder::new("br");
        let a = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
        let gid = kb.query_global_id(0);
        let v = kb.load(Scalar::F32, a, gid.into());
        let c = kb.bin(
            BinOp::Lt,
            v.into(),
            Operand::ImmF(0.0),
            VType::scalar(Scalar::F32),
        );
        kb.if_then(c.into(), |kb| {
            kb.store(a, gid.into(), Operand::ImmF(0.0));
        });
        assert_eq!(
            vectorize(&kb.finish(), 4).unwrap_err(),
            VectorizeRefusal::HasBranch
        );
    }

    #[test]
    fn refuses_gid_as_data() {
        // out[i] = i: widening would store gid (not gid*W+lane) per lane.
        let mut kb = KernelBuilder::new("iota");
        let o = kb.arg_global(Scalar::U32, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        kb.store(o, gid.into(), gid.into());
        assert_eq!(
            vectorize(&kb.finish(), 4).unwrap_err(),
            VectorizeRefusal::GidUsedAsData
        );
        // gid fed into arithmetic is equally data.
        let mut kb2 = KernelBuilder::new("scaled");
        let o2 = kb2.arg_global(Scalar::F32, Access::WriteOnly, true);
        let gid2 = kb2.query_global_id(0);
        let f = kb2.cast(gid2.into(), VType::scalar(Scalar::F32));
        kb2.store(o2, gid2.into(), f.into());
        assert_eq!(
            vectorize(&kb2.finish(), 4).unwrap_err(),
            VectorizeRefusal::GidUsedAsData
        );
    }

    #[test]
    fn refuses_bad_width() {
        assert_eq!(
            vectorize(&vecop(), 3).unwrap_err(),
            VectorizeRefusal::BadWidth
        );
        assert_eq!(
            vectorize(&vecop(), 32).unwrap_err(),
            VectorizeRefusal::BadWidth
        );
    }

    #[test]
    fn select_chains_widen() {
        // clamp kernel: out[i] = min(max(a[i], 0), 1) via select
        let mut kb = KernelBuilder::new("clamp");
        let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let o = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let v = kb.load(Scalar::F32, a, gid.into());
        let neg = kb.bin(
            BinOp::Lt,
            v.into(),
            Operand::ImmF(0.0),
            VType::scalar(Scalar::F32),
        );
        let clamped = kb.select(
            neg.into(),
            Operand::ImmF(0.0),
            v.into(),
            VType::scalar(Scalar::F32),
        );
        kb.store(o, gid.into(), clamped.into());
        let p = kb.finish();
        let v4 = vectorize(&p, 4).unwrap();
        v4.program.validate().unwrap();

        let mut pool = MemoryPool::new();
        let ab = pool.add(BufferData::from(vec![
            -1.0f32, 2.0, -3.0, 4.0, 5.0, -6.0, 7.0, -8.0,
        ]));
        let ob = pool.add(BufferData::zeroed(Scalar::F32, 8));
        run_ndrange(
            &v4.program,
            &[ArgBinding::Global(ab), ArgBinding::Global(ob)],
            &mut pool,
            NDRange::d1(2, 2),
            &mut NullTracer,
        )
        .unwrap();
        assert_eq!(
            pool.get(ob).as_f32(),
            &[0.0, 2.0, 0.0, 4.0, 5.0, 0.0, 7.0, 0.0]
        );
    }
}
