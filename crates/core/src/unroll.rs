//! Loop unrolling (§III-B "Loop Unrolling").
//!
//! Replicates a counted loop's body `factor` times per iteration, widening
//! the step. Replication enlarges basic blocks (more VLIW packing
//! opportunities on the Mali arithmetic pipe) and halves/quarters the
//! back-edge overhead — but it also raises the register footprint, which
//! is the "code replication can also lead to performance degradation"
//! caveat: on the GPU model the extra loop-variable registers reduce
//! occupancy, and past the register file it stops paying.

use kernel_ir::{BinOp, Op, Operand, Program, Reg};

/// Why a loop was not unrolled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnrollRefusal {
    /// No top-level `For` loop found.
    NoLoop,
    /// Loop bounds are not compile-time immediates.
    DynamicBounds,
    /// Trip count is not a multiple of the factor (the paper's "last
    /// iterations handling" overhead — we refuse rather than emit a
    /// remainder loop).
    TripNotDivisible { trip: i64, factor: u32 },
    /// The body writes the loop variable.
    BodyWritesCounter,
    /// factor < 2 is a no-op.
    TrivialFactor,
}

impl std::fmt::Display for UnrollRefusal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnrollRefusal::NoLoop => f.write_str("no top-level loop to unroll"),
            UnrollRefusal::DynamicBounds => f.write_str("loop bounds not immediate"),
            UnrollRefusal::TripNotDivisible { trip, factor } => {
                write!(f, "trip count {trip} not divisible by {factor}")
            }
            UnrollRefusal::BodyWritesCounter => f.write_str("loop body writes the counter"),
            UnrollRefusal::TrivialFactor => f.write_str("factor must be >= 2"),
        }
    }
}

fn body_writes(body: &[Op], var: Reg) -> bool {
    let mut found = false;
    for op in body {
        op.visit(&mut |o| {
            if o.dst_reg() == Some(var) {
                found = true;
            }
        });
    }
    found
}

/// Substitute register `from` with `to` in all *operand* positions of an op
/// tree (destinations are left alone — see [`unroll`] for why that is
/// sound).
fn subst_operands(op: &mut Op, from: Reg, to: Reg) {
    let fix = |o: &mut Operand| {
        if let Operand::Reg(r) = o {
            if *r == from {
                *o = Operand::Reg(to);
            }
        }
    };
    match op {
        Op::Bin { a, b, .. } => {
            fix(a);
            fix(b);
        }
        Op::Un { a, .. } | Op::Mov { a, .. } | Op::Cast { a, .. } => fix(a),
        Op::Mad { a, b, c, .. } => {
            fix(a);
            fix(b);
            fix(c);
        }
        Op::Select { cond, a, b, .. } => {
            fix(cond);
            fix(a);
            fix(b);
        }
        Op::Horiz { a, .. } | Op::Extract { a, .. } => fix(a),
        Op::Insert { v, .. } => fix(v),
        Op::Load { idx, .. } => fix(idx),
        Op::VLoad { base, .. } => fix(base),
        Op::Store { idx, val, .. } => {
            fix(idx);
            fix(val);
        }
        Op::VStore { base, val, .. } => {
            fix(base);
            fix(val);
        }
        Op::Atomic { idx, val, .. } => {
            fix(idx);
            fix(val);
        }
        Op::For {
            start,
            end,
            step,
            body,
            ..
        } => {
            fix(start);
            fix(end);
            fix(step);
            for o in body {
                subst_operands(o, from, to);
            }
        }
        Op::If { cond, then, els } => {
            fix(cond);
            for o in then.iter_mut().chain(els) {
                subst_operands(o, from, to);
            }
        }
        Op::Query { .. } | Op::Barrier => {}
    }
}

/// Rewrite destination registers `from` → `to` in an op tree.
fn rename_dst(op: &mut Op, from: Reg, to: Reg) {
    let fix = |d: &mut Reg| {
        if *d == from {
            *d = to;
        }
    };
    match op {
        Op::Bin { dst, .. }
        | Op::Un { dst, .. }
        | Op::Mad { dst, .. }
        | Op::Select { dst, .. }
        | Op::Mov { dst, .. }
        | Op::Cast { dst, .. }
        | Op::Horiz { dst, .. }
        | Op::Extract { dst, .. }
        | Op::Insert { dst, .. }
        | Op::Query { dst, .. }
        | Op::Load { dst, .. }
        | Op::VLoad { dst, .. } => fix(dst),
        Op::Atomic { old, .. } => {
            if let Some(o) = old {
                fix(o);
            }
        }
        Op::For { var, body, .. } => {
            fix(var);
            for o in body {
                rename_dst(o, from, to);
            }
        }
        Op::If { then, els, .. } => {
            for o in then.iter_mut().chain(els) {
                rename_dst(o, from, to);
            }
        }
        Op::Store { .. } | Op::VStore { .. } | Op::Barrier => {}
    }
}

/// Registers whose first action in the body is an *unconditional,
/// top-level write*: iteration-local temporaries, safe to rename per
/// replica. Registers read before written (loop-carried accumulators,
/// values defined outside) keep their names — and so does anything whose
/// first write sits inside nested control flow, because a skipped branch
/// would make the value loop-carried at runtime.
fn body_temporaries(body: &[Op]) -> Vec<Reg> {
    use std::collections::HashMap;
    #[derive(Clone, Copy, PartialEq)]
    enum First {
        Read,
        Write,
    }
    let mut first: HashMap<Reg, First> = HashMap::new();
    fn scan(ops: &[Op], first: &mut std::collections::HashMap<Reg, First>, depth: u32) {
        for op in ops {
            // Reads first (an op like `acc = acc + v` reads acc).
            let mut read = |o: &Operand| {
                if let Operand::Reg(r) = o {
                    first.entry(*r).or_insert(First::Read);
                }
            };
            match op {
                Op::Bin { a, b, .. } => {
                    read(a);
                    read(b);
                }
                Op::Un { a, .. } | Op::Mov { a, .. } | Op::Cast { a, .. } => read(a),
                Op::Mad { a, b, c, .. } => {
                    read(a);
                    read(b);
                    read(c);
                }
                Op::Select { cond, a, b, .. } => {
                    read(cond);
                    read(a);
                    read(b);
                }
                Op::Horiz { a, .. } | Op::Extract { a, .. } => read(a),
                Op::Insert { v, .. } => read(v),
                Op::Load { idx, .. } => read(idx),
                Op::VLoad { base, .. } => read(base),
                Op::Store { idx, val, .. } => {
                    read(idx);
                    read(val);
                }
                Op::VStore { base, val, .. } => {
                    read(base);
                    read(val);
                }
                Op::Atomic { idx, val, .. } => {
                    read(idx);
                    read(val);
                }
                Op::For {
                    start, end, step, ..
                } => {
                    read(start);
                    read(end);
                    read(step);
                }
                Op::If { cond, .. } => read(cond),
                Op::Query { .. } | Op::Barrier => {}
            }
            if let Some(d) = op.dst_reg() {
                // A write inside an If/For may not execute every iteration:
                // treat it as loop-carried (non-renameable).
                let class = if depth == 0 {
                    First::Write
                } else {
                    First::Read
                };
                first.entry(d).or_insert(class);
            }
            match op {
                Op::For { body, .. } => scan(body, first, depth + 1),
                Op::If { then, els, .. } => {
                    scan(then, first, depth + 1);
                    scan(els, first, depth + 1);
                }
                _ => {}
            }
        }
    }
    scan(body, &mut first, 0);
    first
        .into_iter()
        .filter_map(|(r, f)| if f == First::Write { Some(r) } else { None })
        .collect()
}

/// Unroll the **first** top-level `For` loop of `p` by `factor`.
///
/// Soundness: the `factor` replicas execute in the same order as the
/// original iterations. Loop-carried registers (read before written —
/// accumulators) keep their names so their sequential semantics are
/// untouched; iteration-local temporaries (written before read) get fresh
/// names per replica — which is what a real unrolling compiler does to
/// expose ILP, and what makes unrolling *cost registers* (the §III-B
/// "code replication can also lead to performance degradation" caveat).
pub fn unroll(p: &Program, factor: u32) -> Result<Program, UnrollRefusal> {
    if factor < 2 {
        return Err(UnrollRefusal::TrivialFactor);
    }
    let loop_pos = p
        .body
        .iter()
        .position(|op| matches!(op, Op::For { .. }))
        .ok_or(UnrollRefusal::NoLoop)?;
    let Op::For {
        var,
        start,
        end,
        step,
        body,
    } = &p.body[loop_pos]
    else {
        unreachable!()
    };
    let (Operand::ImmI(s), Operand::ImmI(e), Operand::ImmI(st)) = (start, end, step) else {
        return Err(UnrollRefusal::DynamicBounds);
    };
    if *st == 0 {
        return Err(UnrollRefusal::DynamicBounds);
    }
    let trip = if *st > 0 {
        (e - s + st - 1).div_euclid(*st).max(0)
    } else {
        (s - e + (-st) - 1).div_euclid(-st).max(0)
    };
    if trip % factor as i64 != 0 {
        return Err(UnrollRefusal::TripNotDivisible { trip, factor });
    }
    if body_writes(body, *var) {
        return Err(UnrollRefusal::BodyWritesCounter);
    }

    let mut out = p.clone();
    out.name = format!("{}_u{factor}", p.name);
    let var = *var;
    let var_ty = p.reg_ty(var);
    let (s, st) = (*s, *st);
    let body: Vec<Op> = body.clone();

    let temporaries = body_temporaries(&body);
    // Iterations with no memory writes and no nested control flow are
    // independent through memory, so their ops can interleave — the ILP
    // schedule a real unroller emits, which is also what makes all
    // `factor` iterations' temporaries live at once (register pressure).
    // Otherwise clones stay sequential (always safe).
    let interleave = !body.iter().any(|op| {
        let mut found = false;
        op.visit(&mut |o| {
            found |= matches!(
                o,
                Op::Store { .. }
                    | Op::VStore { .. }
                    | Op::Atomic { .. }
                    | Op::If { .. }
                    | Op::For { .. }
                    | Op::Barrier
            )
        });
        found
    });

    // Build each replica's op stream (replica 0 = original body).
    let mut replicas: Vec<Vec<Op>> = vec![body.clone()];
    let mut preludes: Vec<Op> = Vec::new();
    for k in 1..factor {
        let var_k = Reg(out.regs.len() as u32);
        out.regs.push(var_ty);
        preludes.push(Op::Bin {
            dst: var_k,
            op: BinOp::Add,
            a: Operand::Reg(var),
            b: Operand::ImmI(k as i64 * st),
        });
        // Fresh names for this replica's temporaries.
        let renames: Vec<(Reg, Reg)> = temporaries
            .iter()
            .map(|&t| {
                let fresh = Reg(out.regs.len() as u32);
                out.regs.push(p.reg_ty(t));
                (t, fresh)
            })
            .collect();
        let mut clone_ops = Vec::with_capacity(body.len());
        for op in &body {
            let mut c = op.clone();
            subst_operands(&mut c, var, var_k);
            for &(from, to) in &renames {
                subst_operands(&mut c, from, to);
                rename_dst(&mut c, from, to);
            }
            clone_ops.push(c);
        }
        replicas.push(clone_ops);
    }

    let mut new_body: Vec<Op> = preludes;
    if interleave {
        // Round-robin by op index: per-accumulator update order still
        // follows iteration order (k ascending at each index), so float
        // summation is bit-identical to the sequential schedule.
        for i in 0..body.len() {
            for replica in &mut replicas {
                new_body.push(std::mem::replace(&mut replica[i], Op::Barrier));
            }
        }
    } else {
        for replica in replicas {
            new_body.extend(replica);
        }
    }
    out.body[loop_pos] = Op::For {
        var,
        start: Operand::ImmI(s),
        end: Operand::ImmI(s + trip * st),
        step: Operand::ImmI(st * factor as i64),
        body: new_body,
    };
    out.validate()
        .expect("unroller produced invalid IR — pass bug");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_ir::prelude::*;
    use kernel_ir::{Access, BufferData, CountingTracer, NullTracer, Scalar};

    /// out[gid] = sum_{i<16} a[gid*16 + i]
    fn rowsum() -> Program {
        let mut kb = KernelBuilder::new("rowsum");
        let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let o = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let base = kb.bin(
            BinOp::Mul,
            gid.into(),
            Operand::ImmI(16),
            VType::scalar(Scalar::U32),
        );
        let acc = kb.mov(Operand::ImmF(0.0), VType::scalar(Scalar::F32));
        kb.for_loop(
            Operand::ImmI(0),
            Operand::ImmI(16),
            Operand::ImmI(1),
            |kb, i| {
                let idx = kb.bin(
                    BinOp::Add,
                    base.into(),
                    i.into(),
                    VType::scalar(Scalar::U32),
                );
                let v = kb.load(Scalar::F32, a, idx.into());
                kb.bin_into(acc, BinOp::Add, acc.into(), v.into());
            },
        );
        kb.store(o, gid.into(), acc.into());
        kb.finish()
    }

    fn run(p: &Program) -> (Vec<f32>, CountingTracer) {
        let n = 8;
        let mut pool = MemoryPool::new();
        let a = pool.add(BufferData::from(
            (0..n * 16).map(|i| (i % 7) as f32).collect::<Vec<_>>(),
        ));
        let o = pool.add(BufferData::zeroed(Scalar::F32, n));
        let mut t = CountingTracer::default();
        run_ndrange(
            p,
            &[ArgBinding::Global(a), ArgBinding::Global(o)],
            &mut pool,
            NDRange::d1(n, 4),
            &mut t,
        )
        .unwrap();
        (pool.get(o).as_f32().to_vec(), t)
    }

    #[test]
    fn unrolled_matches_original() {
        let p = rowsum();
        let (base_out, base_t) = run(&p);
        for f in [2u32, 4, 8, 16] {
            let u = unroll(&p, f).unwrap();
            let (out, t) = run(&u);
            assert_eq!(base_out, out, "factor {f} changed results");
            // Back-edges shrink by the factor.
            assert_eq!(t.loop_iters, base_t.loop_iters / f as u64);
        }
    }

    #[test]
    fn register_footprint_grows() {
        let p = rowsum();
        let u4 = unroll(&p, 4).unwrap();
        assert!(u4.register_footprint() > p.register_footprint());
    }

    #[test]
    fn refuses_non_divisible_trip() {
        let p = rowsum(); // trip 16
        assert_eq!(
            unroll(&p, 3).unwrap_err(),
            UnrollRefusal::TripNotDivisible {
                trip: 16,
                factor: 3
            }
        );
    }

    #[test]
    fn refuses_no_loop() {
        let mut kb = KernelBuilder::new("flat");
        let a = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
        let gid = kb.query_global_id(0);
        let v = kb.load(Scalar::F32, a, gid.into());
        kb.store(a, gid.into(), v.into());
        assert_eq!(unroll(&kb.finish(), 2).unwrap_err(), UnrollRefusal::NoLoop);
    }

    #[test]
    fn refuses_trivial_factor() {
        assert_eq!(
            unroll(&rowsum(), 1).unwrap_err(),
            UnrollRefusal::TrivialFactor
        );
    }

    #[test]
    fn refuses_dynamic_bounds() {
        let mut kb = KernelBuilder::new("dyn");
        let a = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
        let n = kb.arg_scalar(Scalar::U32);
        let gid = kb.query_global_id(0);
        let nv = kb.load_scalar_arg(n);
        let acc = kb.mov(Operand::ImmF(0.0), VType::scalar(Scalar::F32));
        kb.for_loop(Operand::ImmI(0), nv.into(), Operand::ImmI(1), |kb, _| {
            kb.bin_into(acc, BinOp::Add, acc.into(), Operand::ImmF(1.0));
        });
        kb.store(a, gid.into(), acc.into());
        assert_eq!(
            unroll(&kb.finish(), 2).unwrap_err(),
            UnrollRefusal::DynamicBounds
        );
    }

    #[test]
    fn unroll_then_unroll_composes() {
        let p = rowsum();
        let u2 = unroll(&p, 2).unwrap();
        let u2x2 = unroll(&u2, 2).unwrap();
        let (a, _) = run(&p);
        let (b, t) = run(&u2x2);
        assert_eq!(a, b);
        assert_eq!(t.loop_iters, 8 * 16 / 4);
    }

    #[test]
    fn conditionally_written_register_carries_across_iterations() {
        // Regression: `if (cond) { t = ... }; acc += t` — t is loop-carried
        // through iterations where the branch is skipped, so renaming it
        // per replica would zero it. Values must match the rolled loop.
        let mut kb = KernelBuilder::new("carry");
        let o = kb.arg_global(Scalar::F32, Access::ReadWrite, false);
        let t = kb.mov(Operand::ImmF(0.0), VType::scalar(Scalar::F32));
        let acc = kb.mov(Operand::ImmF(0.0), VType::scalar(Scalar::F32));
        kb.for_loop_typed(
            Scalar::I32,
            Operand::ImmI(0),
            Operand::ImmI(8),
            Operand::ImmI(1),
            |kb, i| {
                let rem = kb.bin(
                    BinOp::Rem,
                    i.into(),
                    Operand::ImmI(3),
                    VType::scalar(Scalar::I32),
                );
                let hit = kb.bin(
                    BinOp::Eq,
                    rem.into(),
                    Operand::ImmI(0),
                    VType::scalar(Scalar::I32),
                );
                kb.if_then(hit.into(), |kb| {
                    let cast = kb.cast(i.into(), VType::scalar(Scalar::F32));
                    kb.mov_into(t, cast.into());
                });
                kb.bin_into(acc, BinOp::Add, acc.into(), t.into());
            },
        );
        let gid = kb.query_global_id(0);
        kb.store(o, gid.into(), acc.into());
        let p = kb.finish();
        let run_it = |p: &Program| {
            let mut pool = MemoryPool::new();
            let ob = pool.add(BufferData::zeroed(Scalar::F32, 1));
            run_ndrange(
                p,
                &[ArgBinding::Global(ob)],
                &mut pool,
                NDRange::d1(1, 1),
                &mut NullTracer,
            )
            .unwrap();
            pool.get(ob).as_f32()[0]
        };
        let rolled = run_it(&p);
        // t holds the last multiple of 3 seen: 0,0,0,3,3,3,6,6 -> acc = 21.
        assert_eq!(rolled, 21.0);
        for f in [2u32, 4] {
            let u = unroll(&p, f).unwrap();
            assert_eq!(run_it(&u), rolled, "factor {f} broke the carried value");
        }
    }

    #[test]
    fn negative_step_loops_unroll() {
        let mut kb = KernelBuilder::new("down");
        let o = kb.arg_global(Scalar::I32, Access::ReadWrite, false);
        let acc = kb.mov(Operand::ImmI(0), VType::scalar(Scalar::I32));
        kb.for_loop_typed(
            Scalar::I32,
            Operand::ImmI(8),
            Operand::ImmI(0),
            Operand::ImmI(-1),
            |kb, i| {
                kb.bin_into(acc, BinOp::Add, acc.into(), i.into());
            },
        );
        let gid = kb.query_global_id(0);
        kb.store(o, gid.into(), acc.into());
        let p = kb.finish();
        let u = unroll(&p, 4).unwrap();
        let mut pool = MemoryPool::new();
        let ob = pool.add(BufferData::zeroed(Scalar::I32, 1));
        run_ndrange(
            &u,
            &[ArgBinding::Global(ob)],
            &mut pool,
            NDRange::d1(1, 1),
            &mut NullTracer,
        )
        .unwrap();
        assert_eq!(pool.get(ob).as_i32()[0], 8 + 7 + 6 + 5 + 4 + 3 + 2 + 1);
    }
}
