//! # mali-hpc — OpenCL optimization techniques for the Mali GPU compute
//! architecture
//!
//! The library form of the paper's contribution (Grasso et al., IPDPS 2014,
//! §III): every optimization technique the paper identifies for the
//! Mali-T604, implemented over the `kernel-ir` representation and the
//! simulated device stack, plus the umbrella re-exports of that stack.
//!
//! | Paper technique (§III) | Here |
//! |---|---|
//! | Memory allocation & mapping (host) | [`ocl_runtime::MemFlags`], map vs copy paths in [`ocl_runtime::Context`] |
//! | Load distribution / work-sizes | [`tuning::sweep`], [`tuning::wg_size_candidates`], [`tuning::guide_global_size`] |
//! | Memory spaces (no local-memory win) | modelled in `mali-gpu`; see its `local_memory_costs_like_global` test |
//! | Thread divergence (absent on Mali) | modelled in `mali-gpu`; see its `no_divergence_penalty` test |
//! | Vectorization | [`vectorize::vectorize`] |
//! | Vector sizes | [`tuning::VECTOR_WIDTH_CANDIDATES`] + sweep |
//! | Loop unrolling | [`unroll::unroll`] |
//! | Empirical autotuning (the §III close / Phothilimthana et al. direction) | [`autotune::autotune`] |
//! | Constant folding + DCE (what `const` licenses the compiler to do) | [`fold::optimize`] |
//! | Data organization (AOS→SOA) | [`layout`] |
//! | Directives & type qualifiers | [`kernel_ir::Hints`], honoured by the `ocl-runtime` compiler |

pub mod autotune;
pub mod fold;
pub mod layout;
pub mod tuning;
pub mod unroll;
pub mod vectorize;

pub use autotune::{autotune, AutotuneResult, Candidate, CandidateSkip, SearchSpace, Trial};
pub use fold::{eliminate_dead_code, fold_constants, op_count, optimize};
pub use layout::{aos_flatten, aos_to_soa, soa_to_aos, Particle, ParticlesSoa};
pub use tuning::{
    guide_global_size, largest_dividing_pow2, local_divides_global, sweep, wg_size_candidates,
    wg_tiles_global, TuningEntry, TuningResult, VECTOR_WIDTH_CANDIDATES,
};
pub use unroll::{unroll, UnrollRefusal};
pub use vectorize::{vectorize, VectorizeRefusal, Vectorized};

// Umbrella re-exports: the full simulated stack.
pub use cpu_sim;
pub use kernel_ir;
pub use mali_gpu;
pub use memsim;
pub use ocl_runtime;
pub use powersim;

#[cfg(test)]
mod randomized_tests {
    //! Seeded randomized sweeps (the former proptest suite, rewritten over
    //! the in-tree PRNG so the workspace builds offline).

    use super::*;
    use kernel_ir::prelude::*;
    use kernel_ir::{Access, BufferData, NullTracer, Scalar};
    use sim_rng::Pcg32;

    /// Build `out[i] = (a[i] + k1) * a[i] + k2` style elementwise kernels
    /// with a parameterized op chain.
    fn chain_kernel(muls: usize, k: f64) -> Program {
        let mut kb = KernelBuilder::new("chain");
        let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let o = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let v = kb.load(Scalar::F32, a, gid.into());
        let mut cur = v;
        for i in 0..muls {
            let imm = Operand::ImmF(k + i as f64);
            cur = kb.mad(
                cur.into(),
                imm,
                Operand::ImmF(0.5),
                VType::scalar(Scalar::F32),
            );
        }
        kb.store(o, gid.into(), cur.into());
        kb.finish()
    }

    fn run(p: &Program, input: &[f32], items: usize, wg: usize) -> Vec<f32> {
        let mut pool = MemoryPool::new();
        let a = pool.add(BufferData::from(input.to_vec()));
        let o = pool.add(BufferData::zeroed(Scalar::F32, input.len()));
        run_ndrange(
            p,
            &[ArgBinding::Global(a), ArgBinding::Global(o)],
            &mut pool,
            NDRange::d1(items, wg),
            &mut NullTracer,
        )
        .unwrap();
        pool.get(o).as_f32().to_vec()
    }

    fn random_input(rng: &mut Pcg32, n: usize, span: f32) -> Vec<f32> {
        (0..n)
            .map(|_| (rng.next_f64() as f32 * 2.0 - 1.0) * span)
            .collect()
    }

    /// Vectorization preserves semantics for arbitrary op chains,
    /// inputs and widths.
    #[test]
    fn vectorize_preserves_semantics() {
        let mut rng = Pcg32::seed_from_u64(0x7EC);
        for _ in 0..64 {
            let muls = rng.gen_range_usize(0, 6);
            let k = rng.next_f64() * 4.0 - 2.0;
            let input = random_input(&mut rng, 64, 100.0);
            let width = [2u8, 4, 8, 16][rng.gen_range_usize(0, 4)];
            let p = chain_kernel(muls, k);
            let scalar = run(&p, &input, 64, 8);
            let v = vectorize(&p, width).unwrap();
            let vectored = run(&v.program, &input, 64 / width as usize, 4);
            assert_eq!(scalar, vectored, "muls {muls} k {k} width {width}");
        }
    }

    /// Unrolling preserves semantics for arbitrary divisible factors.
    #[test]
    fn unroll_preserves_semantics() {
        let mut rng = Pcg32::seed_from_u64(0x0210);
        for _ in 0..48 {
            let input = random_input(&mut rng, 64, 10.0);
            let factor = [2u32, 4, 8][rng.gen_range_usize(0, 3)];
            // out[gid] = sum of a[gid*8..gid*8+8]
            let mut kb = KernelBuilder::new("rs");
            let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
            let o = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
            let gid = kb.query_global_id(0);
            let base = kb.bin(
                BinOp::Mul,
                gid.into(),
                Operand::ImmI(8),
                VType::scalar(Scalar::U32),
            );
            let acc = kb.mov(Operand::ImmF(0.0), VType::scalar(Scalar::F32));
            kb.for_loop(
                Operand::ImmI(0),
                Operand::ImmI(8),
                Operand::ImmI(1),
                |kb, i| {
                    let idx = kb.bin(
                        BinOp::Add,
                        base.into(),
                        i.into(),
                        VType::scalar(Scalar::U32),
                    );
                    let v = kb.load(Scalar::F32, a, idx.into());
                    kb.bin_into(acc, BinOp::Add, acc.into(), v.into());
                },
            );
            kb.store(o, gid.into(), acc.into());
            let p = kb.finish();
            let u = unroll(&p, factor).unwrap();
            assert_eq!(
                run(&p, &input, 8, 4),
                run(&u, &input, 8, 4),
                "factor {factor}"
            );
        }
    }

    /// AOS/SOA conversion round-trips (including non-finite bit patterns).
    #[test]
    fn layout_roundtrip() {
        let mut rng = Pcg32::seed_from_u64(0x1A10);
        for _ in 0..64 {
            let n = rng.gen_range_usize(0, 50);
            let aos: Vec<Particle<f32>> = (0..n)
                .map(|_| Particle {
                    x: f32::from_bits(rng.next_u32()),
                    y: f32::from_bits(rng.next_u32()),
                    z: f32::from_bits(rng.next_u32()),
                    m: (rng.next_f64() as f32) * 10.0,
                })
                .collect();
            let back = soa_to_aos(&aos_to_soa(&aos));
            // Compare bitwise so NaN payloads round-trip too.
            assert_eq!(aos.len(), back.len());
            for (a, b) in aos.iter().zip(&back) {
                assert_eq!(a.x.to_bits(), b.x.to_bits());
                assert_eq!(a.y.to_bits(), b.y.to_bits());
                assert_eq!(a.z.to_bits(), b.z.to_bits());
                assert_eq!(a.m.to_bits(), b.m.to_bits());
            }
        }
    }
}
