//! Empirical parameter tuning (§III-A "Load distribution", §III-B "Vector
//! Sizes").
//!
//! The paper's position is that neither the driver's automatic work-group
//! size nor any single vector width is reliably best — you *measure*. These
//! tuners wrap that measurement loop: they evaluate a candidate list with a
//! caller-supplied closure (typically "launch on the simulator and return
//! seconds"), skip candidates that fail (`CL_OUT_OF_RESOURCES` → `None` —
//! which is exactly how the double-precision nbody/2dcon kernels fall back
//! to narrower vectors), and report the winner plus the full table.

/// One evaluated candidate.
#[derive(Clone, Debug, PartialEq)]
pub struct TuningEntry<P> {
    pub param: P,
    /// Measured cost (seconds), or `None` when the candidate failed to run.
    pub cost: Option<f64>,
}

/// Outcome of a tuning sweep.
#[derive(Clone, Debug)]
pub struct TuningResult<P> {
    pub entries: Vec<TuningEntry<P>>,
    /// Index into `entries` of the best successful candidate.
    best: Option<usize>,
}

impl<P: Clone> TuningResult<P> {
    /// Best parameter, if any candidate succeeded.
    pub fn best(&self) -> Option<&P> {
        self.best.map(|i| &self.entries[i].param)
    }

    pub fn best_cost(&self) -> Option<f64> {
        self.best.and_then(|i| self.entries[i].cost)
    }

    /// How many candidates failed (resource errors etc.).
    pub fn failures(&self) -> usize {
        self.entries.iter().filter(|e| e.cost.is_none()).count()
    }

    /// Ratio worst/best over successful candidates — how much tuning
    /// mattered.
    pub fn spread(&self) -> Option<f64> {
        let costs: Vec<f64> = self.entries.iter().filter_map(|e| e.cost).collect();
        if costs.is_empty() {
            return None;
        }
        let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = costs.iter().cloned().fold(0.0, f64::max);
        Some(max / min)
    }
}

/// Sweep `candidates`, measuring each with `eval`; `None` marks a failed
/// candidate.
pub fn sweep<P: Clone>(
    candidates: &[P],
    mut eval: impl FnMut(&P) -> Option<f64>,
) -> TuningResult<P> {
    let mut entries: Vec<TuningEntry<P>> = Vec::with_capacity(candidates.len());
    let mut best: Option<usize> = None;
    for (i, p) in candidates.iter().enumerate() {
        let cost = eval(p);
        if let Some(c) = cost {
            if best.is_none_or(|b| c < entries[b].cost.unwrap_or(f64::INFINITY)) {
                best = Some(i);
            }
        }
        entries.push(TuningEntry {
            param: p.clone(),
            cost,
        });
    }
    TuningResult { entries, best }
}

/// Work-group-size candidates the paper's methodology would try for a 1-D
/// kernel: powers of two up to the device max.
pub fn wg_size_candidates(max_wg: u32) -> Vec<usize> {
    let mut v = Vec::new();
    let mut s = 16usize;
    while s <= max_wg as usize {
        v.push(s);
        s *= 2;
    }
    v
}

/// Vector-width candidates of §III-B ("experiment with different vector
/// sizes, e.g. 4, 8, 16").
pub const VECTOR_WIDTH_CANDIDATES: [u8; 3] = [4, 8, 16];

/// §III-A "Load distribution": the Mali developer-guide formula for the
/// optimal global work size — device max work-group size × shader cores ×
/// a constant that is "four or eight for the Mali-T604".
pub fn guide_global_size(max_wg: u32, shader_cores: u32, constant: u32) -> usize {
    (max_wg * shader_cores * constant) as usize
}

/// The OpenCL launchability precondition for one dimension: a non-zero
/// local extent that evenly tiles the global extent. Candidate work-group
/// sizes that violate it are unlaunchable and must be skipped, not
/// measured.
pub fn local_divides_global(global: usize, local: usize) -> bool {
    local != 0 && global.is_multiple_of(local)
}

/// [`local_divides_global`] across all three NDRange dimensions.
pub fn wg_tiles_global(global: [usize; 3], local: [usize; 3]) -> bool {
    global
        .iter()
        .zip(local)
        .all(|(&g, l)| local_divides_global(g, l))
}

/// Largest power-of-two extent ≤ `max` that divides `global` — the
/// standard fallback when picking a launchable work-group extent for an
/// arbitrary (e.g. vector-width-scaled) global size. Returns 1 when
/// nothing larger divides.
pub fn largest_dividing_pow2(global: usize, max: usize) -> usize {
    let mut w = max.max(1).next_power_of_two();
    if w > max {
        w /= 2;
    }
    while w > 1 && !global.is_multiple_of(w) {
        w /= 2;
    }
    w.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_finds_minimum() {
        let r = sweep(&[16usize, 32, 64, 128, 256], |&wg| {
            // synthetic cost curve with minimum at 64
            Some(((wg as f64).log2() - 6.0).abs() + 1.0)
        });
        assert_eq!(r.best(), Some(&64));
        assert_eq!(r.failures(), 0);
        assert!(r.spread().unwrap() > 1.0);
    }

    #[test]
    fn sweep_skips_failures() {
        // 128+ "fails with CL_OUT_OF_RESOURCES"
        let r = sweep(&[64usize, 128, 256], |&wg| {
            if wg >= 128 {
                None
            } else {
                Some(1.0)
            }
        });
        assert_eq!(r.best(), Some(&64));
        assert_eq!(r.failures(), 2);
    }

    #[test]
    fn sweep_all_failures_yields_none() {
        let r = sweep(&[1, 2, 3], |_| None::<f64>);
        assert!(r.best().is_none());
        assert!(r.best_cost().is_none());
        assert!(r.spread().is_none());
    }

    #[test]
    fn wg_candidates_reach_device_max() {
        assert_eq!(wg_size_candidates(256), vec![16, 32, 64, 128, 256]);
        assert_eq!(wg_size_candidates(64), vec![16, 32, 64]);
    }

    #[test]
    fn guide_formula_t604() {
        // 256 × 4 cores × 4..8 — the developer-guide numbers for T604.
        assert_eq!(guide_global_size(256, 4, 4), 4096);
        assert_eq!(guide_global_size(256, 4, 8), 8192);
    }

    #[test]
    fn first_minimum_wins_ties() {
        let r = sweep(&[1, 2, 3], |_| Some(5.0));
        assert_eq!(r.best(), Some(&1));
    }

    #[test]
    fn divisibility_helpers() {
        assert!(local_divides_global(1024, 128));
        assert!(!local_divides_global(1000, 128));
        assert!(!local_divides_global(1024, 0));
        assert!(wg_tiles_global([256, 256, 1], [16, 8, 1]));
        assert!(!wg_tiles_global([256, 100, 1], [16, 8, 1]));
        assert_eq!(largest_dividing_pow2(256, 16), 16);
        assert_eq!(largest_dividing_pow2(100, 16), 4);
        assert_eq!(largest_dividing_pow2(25, 16), 1);
        assert_eq!(largest_dividing_pow2(96, 12), 8);
        assert_eq!(largest_dividing_pow2(7, 16), 1);
    }
}
