//! Mali-T604 cost-model configuration.
//!
//! Structural parameters follow ARM's published material on the Midgard
//! architecture (Figure 1 of the paper): four shader cores, each with two
//! arithmetic pipes built around 128-bit vector registers, one load/store
//! pipe and one texturing pipe (unused by compute), a shared L2 kept
//! coherent by the snoop-control unit, and a hardware job manager that
//! distributes work-groups over the cores. Per-op slot costs are calibrated
//! effective numbers.

use memsim::{CacheConfig, DramConfig};

/// All knobs of the GPU timing model.
#[derive(Clone, Debug, PartialEq)]
pub struct MaliConfig {
    /// Shader clock. The Mali-T604 in the Exynos 5250 runs at 533 MHz.
    pub freq_hz: f64,
    /// Shader cores (4 on the T604).
    pub shader_cores: u32,
    /// Arithmetic pipes per core (2 on the T604).
    pub arith_pipes: u32,

    // ---- arithmetic-pipe slot costs -----------------------------------
    // One "slot" is one pipe-cycle of a 128-bit vector operation. An op on
    // a type wider than 128 bits takes ceil(bits/128) slots — this is what
    // makes vector-size tuning (§III-B) a real trade-off.
    /// Add/sub/compare/logic/min/max.
    pub slots_simple: f64,
    /// Multiply.
    pub slots_mul: f64,
    /// Fused multiply-add (single slot — the pipe is FMA-based).
    pub slots_mad: f64,
    /// Divide.
    pub slots_div: f64,
    /// sqrt/rsqrt on the special-function path.
    pub slots_special: f64,
    /// exp/log.
    pub slots_transcendental: f64,
    /// Moves/selects/lane ops.
    pub slots_move: f64,
    /// Horizontal reduction.
    pub slots_horiz: f64,
    /// Loop back-edge cost in slots.
    pub slots_loop: f64,
    /// VLIW co-issue factor for *scalar* (width-1) operations: the Midgard
    /// arithmetic pipe is VLIW and can pack independent scalar ops, so
    /// scalar code gets `1/scalar_coissue` of a slot per op. Vector ops
    /// already fill the datapath and get no packing.
    pub scalar_coissue: f64,
    /// Same, for scalar *double* ops: only two f64 lanes fit a 128-bit
    /// datapath, so far less packing is available — the reason the paper's
    /// double-precision GPU speedups sit well below the single-precision
    /// ones for scalar-heavy kernels (nbody 9.3x vs 17.2x).
    pub scalar_coissue_f64: f64,

    // ---- thread / group machinery ---------------------------------------
    /// Core front-end cycles to create, schedule and retire one work-item.
    /// This is the overhead that vectorization's "fewer work-items for the
    /// same work" guideline (§III-B) attacks.
    pub cy_thread: f64,
    /// Job-manager + core cycles to dispatch one work-group.
    pub cy_group_dispatch: f64,
    /// Host-side enqueue/flush overhead per kernel launch, seconds.
    pub launch_overhead_s: f64,

    // ---- load/store pipe -------------------------------------------------
    /// LS-pipe cycles per 128-bit beat of a contiguous access (the LS
    /// datapath is 128 bits wide: a scalar load and a float4 vload both
    /// take one beat; a float8 takes two — still 4x the bandwidth per
    /// instruction of scalar code, the §III-B argument for vload/vstore).
    pub ls_issue: f64,
    /// Additional LS cycles per lane of a gather/scatter beyond the first.
    pub ls_gather_lane: f64,
    /// Extra LS cycles when the access hits in L2 (partially hidden).
    pub cy_l2_hit: f64,
    /// Extra LS cycles per *scattered* access (random scalar loads /
    /// gather lanes): the L2 lookup latency cannot be hidden behind a
    /// stream and stalls the thread slot (spmv's `x[col[j]]`).
    pub cy_ls_scatter: f64,

    // ---- atomics ----------------------------------------------------------
    /// Cycles the L2 atomic unit needs per atomic *to the same cache
    /// line* — same-address atomics from all cores serialize here (the
    /// hist hot-bucket effect); different lines pipeline.
    pub atomic_global_serial_cy: f64,
    /// LS-pipe cycles for a work-group-local atomic (different groups touch
    /// different lines, so these stay parallel across cores).
    pub atomic_local_cy: f64,

    // ---- occupancy / registers -------------------------------------------
    /// 128-bit registers available per shader core for thread contexts.
    pub registers_per_core: u32,
    /// Device maximum work-group size (CL_DEVICE_MAX_WORK_GROUP_SIZE = 256).
    pub max_wg_size: u32,
    /// Resident threads per core needed for full memory-latency hiding.
    pub full_hiding_threads: u32,
    /// Fraction of DRAM latency exposed per scattered line at full
    /// occupancy (rises as occupancy falls).
    pub scatter_exposure: f64,

    // ---- memory ------------------------------------------------------------
    /// Shared L2 (256 KiB on the Exynos 5250's T604 integration).
    pub l2: CacheConfig,
    pub dram: DramConfig,
    /// Streaming bandwidth the GPU's LS path can pull from the controller.
    pub gpu_stream_bw: f64,
}

impl Default for MaliConfig {
    fn default() -> Self {
        MaliConfig {
            freq_hz: 533e6,
            shader_cores: 4,
            arith_pipes: 2,
            slots_simple: 1.0,
            slots_mul: 1.0,
            slots_mad: 1.0,
            slots_div: 8.0,
            slots_special: 2.0,
            slots_transcendental: 16.0,
            slots_move: 0.15,
            slots_horiz: 1.0,
            slots_loop: 1.0,
            scalar_coissue: 2.2,
            scalar_coissue_f64: 1.15,
            cy_thread: 11.0,
            cy_group_dispatch: 280.0,
            launch_overhead_s: 55e-6,
            ls_issue: 1.0,
            ls_gather_lane: 1.0,
            cy_l2_hit: 0.4,
            cy_ls_scatter: 13.0,
            atomic_global_serial_cy: 14.0,
            atomic_local_cy: 1.0,
            registers_per_core: 2048,
            max_wg_size: 256,
            full_hiding_threads: 48,
            scatter_exposure: 0.10,
            l2: CacheConfig::new(256 * 1024, 64, 8),
            dram: DramConfig::ddr3l_1600_x32(),
            gpu_stream_bw: 5.8e9,
        }
    }
}

impl MaliConfig {
    /// Total arithmetic pipes on the device.
    pub fn total_pipes(&self) -> u32 {
        self.shader_cores * self.arith_pipes
    }

    /// Peak single-precision GFLOP/s (FMA counted as 2 flops, 4 f32 lanes
    /// per slot) — a sanity metric, ~17 GFLOPS for the T604 defaults.
    pub fn peak_f32_gflops(&self) -> f64 {
        self.total_pipes() as f64 * self.freq_hz * 4.0 * 2.0 / 1e9
    }

    /// Maximum resident threads per core for a kernel with the given
    /// per-thread register footprint (128-bit units).
    pub fn resident_threads(&self, footprint: u32) -> u32 {
        self.registers_per_core
            .checked_div(footprint)
            .unwrap_or(self.max_wg_size)
    }

    /// Whether a kernel with `footprint` registers/thread can run a
    /// work-group of `wg_size` items. Barrier semantics require the whole
    /// group resident, so `wg_size × footprint` must fit in the register
    /// file; otherwise the driver returns `CL_OUT_OF_RESOURCES` — the
    /// failure the paper hits with nbody/2dcon double-precision optimized
    /// kernels (§V-A).
    pub fn wg_fits(&self, footprint: u32, wg_size: u32) -> bool {
        wg_size <= self.max_wg_size && self.resident_threads(footprint) >= wg_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t604_structure() {
        let c = MaliConfig::default();
        assert_eq!(c.shader_cores, 4);
        assert_eq!(c.total_pipes(), 8);
        assert_eq!(c.max_wg_size, 256);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
    }

    #[test]
    fn peak_flops_in_t604_ballpark() {
        let c = MaliConfig::default();
        let gf = c.peak_f32_gflops();
        assert!((25.0..45.0).contains(&gf), "peak {gf} GFLOPS");
    }

    #[test]
    fn occupancy_math() {
        let c = MaliConfig::default();
        assert_eq!(c.resident_threads(8), 256);
        assert_eq!(c.resident_threads(32), 64);
        assert!(c.wg_fits(8, 256));
        assert!(!c.wg_fits(16, 256)); // 256×16 = 4096 > 2048
        assert!(c.wg_fits(16, 128));
        assert!(!c.wg_fits(8, 512)); // above device max
    }
}
