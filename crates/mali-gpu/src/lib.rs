//! # mali-gpu — ARM Mali-T604 compute-architecture simulator
//!
//! A functional + timing model of the GPU the paper evaluates (Figure 1):
//!
//! * **4 shader cores**, each with **two 128-bit VLIW arithmetic pipes**, a
//!   load/store pipe and a texturing pipe (idle for compute);
//! * a hardware **job manager** distributing work-groups round-robin;
//! * a **shared 256 KiB L2** (snoop-control-unit coherent) in front of the
//!   board's DDR3L-1600 channel;
//! * a **unified memory system** — "local" memory is physically global, and
//!   there are no warps, hence **no thread-divergence penalty**;
//! * a per-core **register file** that bounds work-group residency: kernels
//!   whose `wg_size × register footprint` exceeds it fail with
//!   `CL_OUT_OF_RESOURCES`, exactly like the paper's double-precision
//!   nbody/2dcon optimized kernels.
//!
//! Execution is driven by the `kernel-ir` interpreter, so results are real;
//! the [`MaliT604`] device turns the traced event stream into time, cache
//! traffic, occupancy and a [`powersim::Activity`] vector.

pub mod config;
pub mod device;

pub use config::MaliConfig;
pub use device::{MaliError, MaliReport, MaliT604};
