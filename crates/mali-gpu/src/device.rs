//! The Mali-T604 device: functional execution plus timing, occupancy and
//! activity modelling.
//!
//! Timing model (per DESIGN.md §4): the hardware job manager hands
//! work-groups to shader cores round-robin; each group costs
//! `max(arith_slots / pipes, ls_cycles) + items·cy_thread +
//! cy_group_dispatch` core cycles; device time is the roofline
//! `max(slowest core, global-atomic serialization, DRAM bandwidth)` plus
//! the kernel-launch overhead. There is **no thread-divergence penalty** —
//! work-items are independently scheduled threads (§III-B) — and **local
//! memory is physically global**, so local accesses run through the same L2
//! model as global ones.

use crate::config::MaliConfig;
use kernel_ir::{
    run_ndrange_sharded, ArgBinding, ExecError, ExecTracer, MemAccess, MemoryPool, NDRange,
    OpClass, Pattern, Program, ShardTracer, VType,
};
use memsim::{AddrMap, Hierarchy, HierarchyStats, StrideClassifier};
use powersim::Activity;
use telemetry::{Counters, WorkSpan};

/// Launch failure modes of the simulated driver stack.
#[derive(Clone, Debug, PartialEq)]
pub enum MaliError {
    /// `CL_OUT_OF_RESOURCES`: the work-group's register demand exceeds the
    /// core's register file (wg_size × per-thread footprint > file size).
    OutOfResources {
        footprint: u32,
        wg_size: u32,
        available: u32,
    },
    /// NDRange / binding problems (maps to CL_INVALID_* at the API layer).
    Exec(ExecError),
}

impl std::fmt::Display for MaliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaliError::OutOfResources {
                footprint,
                wg_size,
                available,
            } => write!(
                f,
                "CL_OUT_OF_RESOURCES: work-group of {wg_size} threads × {footprint} regs \
                 exceeds the {available}-register file"
            ),
            MaliError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MaliError {}

impl From<ExecError> for MaliError {
    fn from(e: ExecError) -> Self {
        MaliError::Exec(e)
    }
}

/// Timing/energy outcome of one GPU launch.
#[derive(Clone, Debug)]
pub struct MaliReport {
    /// Wall-clock time including launch overhead, seconds.
    pub time_s: f64,
    /// Slowest-core compute component (arith/LS/thread/dispatch), seconds.
    pub compute_time_s: f64,
    /// DRAM bandwidth component, seconds.
    pub mem_time_s: f64,
    /// Global-atomic serialization component, seconds.
    pub atomic_time_s: f64,
    /// Exposed memory latency due to limited occupancy, seconds.
    pub exposure_s: f64,
    /// Resident threads per core for this kernel (occupancy).
    pub resident_threads: u32,
    /// Per-thread register footprint (128-bit registers).
    pub footprint: u32,
    /// Activity vector for the power model.
    pub activity: Activity,
    /// L2/DRAM statistics.
    pub hier: HierarchyStats,
    /// Work-groups executed.
    pub groups: usize,
    /// Performance-counter snapshot for this launch.
    pub counters: Counters,
    /// Per-core work-group execution intervals (simulated time, seconds,
    /// relative to the start of the compute phase).
    pub spans: Vec<WorkSpan>,
    /// Host worker threads the simulation's group loop actually ran on
    /// (1 = serial). Simulation-engine metadata, **not** part of the modeled
    /// device state — deliberately excluded from exported counters so suite
    /// outputs stay byte-identical across `SIM_THREADS` settings.
    pub sim_threads: usize,
    /// Why the engine forced serial group execution (e.g. global atomics),
    /// if it did.
    pub sim_serial_reason: Option<&'static str>,
    /// Injected mid-run DVFS throttle factor (> 1 stretches every
    /// time-like quantity), if the ambient fault plan fired one.
    pub dvfs_throttle: Option<f64>,
}

/// Per-run accumulation (the mem-side, group-order-stateful half of the
/// device model: cache hierarchy, stride classifiers, atomic hotspot map).
/// Op-side costs accumulate per group in a [`MaliShard`]; the engine feeds
/// both back through [`ShardTracer::absorb_group`] in ascending group order,
/// so the accounting is bit-identical for any worker-thread count.
struct MaliTracer<'c> {
    cfg: &'c MaliConfig,
    hier: Hierarchy,
    /// (arith_slots, ls_cycles, threads) charged per group.
    groups: Vec<GroupCost>,
    global_atomics: u64,
    /// Per-L2-line global-atomic counts (hotspot serialization model).
    atomic_lines: AddrMap<u64>,
    total_arith_slots: f64,
    total_ls_cycles: f64,
    strides: StrideClassifier,
    counters: Counters,
}

#[derive(Clone, Copy, Default)]
struct GroupCost {
    arith_slots: f64,
    ls_cycles: f64,
    threads: u32,
}

/// Arithmetic-pipe slots for one op of type `ty`.
fn slots_for(c: &MaliConfig, class: OpClass, ty: VType) -> f64 {
    let base = match class {
        OpClass::Simple => c.slots_simple,
        OpClass::Mul => c.slots_mul,
        OpClass::Mad => c.slots_mad,
        OpClass::Div => c.slots_div,
        OpClass::Special | OpClass::Rsqrt => c.slots_special,
        OpClass::Transcendental => c.slots_transcendental,
        OpClass::Move => c.slots_move,
        OpClass::Horizontal => c.slots_horiz,
    };
    let bits = ty.elem.bytes() as f64 * 8.0 * ty.width as f64;
    let units = (bits / 128.0).ceil().max(1.0);
    let special = matches!(
        class,
        OpClass::Special | OpClass::Rsqrt | OpClass::Transcendental | OpClass::Div
    );
    if ty.width == 1 && !special {
        // VLIW packing of independent scalar ops (long-latency special
        // ops monopolize the pipe and do not co-issue; f64 scalars
        // pack far worse in the 128-bit datapath).
        let coissue = if ty.elem == kernel_ir::Scalar::F64 {
            c.scalar_coissue_f64
        } else {
            c.scalar_coissue
        };
        base / coissue
    } else {
        base * units
    }
}

/// One work-group's op-side accumulator, filled on whichever pool worker
/// executes the group. Holds only per-group state (arith slots, barrier LS
/// cycles, thread counts, op counters); memory accesses never reach it —
/// the engine records and replays those through [`MaliTracer`].
struct MaliShard<'c> {
    cfg: &'c MaliConfig,
    cur: GroupCost,
    counters: Counters,
}

impl ExecTracer for MaliShard<'_> {
    fn op(&mut self, class: OpClass, ty: VType) {
        self.counters.note_op(class, ty);
        self.cur.arith_slots += slots_for(self.cfg, class, ty);
    }

    fn loop_iter(&mut self) {
        self.counters.note_loop_iter();
        self.cur.arith_slots += self.cfg.slots_loop / self.cfg.scalar_coissue;
    }

    fn thread_start(&mut self) {
        self.counters.note_thread_start();
        self.cur.threads += 1;
    }

    fn group_start(&mut self) {
        self.counters.note_group_start();
    }

    fn barrier(&mut self, items: u32) {
        self.counters.note_barrier(items);
        // A barrier drains the core's pipelines: charge one thread-switch
        // per item.
        self.cur.ls_cycles += items as f64 * 1.0;
    }
}

impl<'c> MaliTracer<'c> {
    fn new(cfg: &'c MaliConfig) -> Self {
        MaliTracer {
            cfg,
            hier: Hierarchy::l2_only(cfg.l2),
            groups: Vec::new(),
            global_atomics: 0,
            atomic_lines: AddrMap::default(),
            total_arith_slots: 0.0,
            total_ls_cycles: 0.0,
            strides: StrideClassifier::default(),
            counters: Counters::default(),
        }
    }

    /// Replay one recorded memory access through the stateful hierarchy /
    /// stride / atomic models, charging LS cycles to the group being
    /// absorbed.
    fn replay_mem(&mut self, a: &MemAccess, lanes: &[u64], cur: &mut GroupCost) {
        self.counters.note_mem(a);
        let c = self.cfg;
        let write = !matches!(a.kind, kernel_ir::AccessKind::Read);
        match a.kind {
            kernel_ir::AccessKind::Atomic => {
                // Atomics execute in the L2's atomic unit. Global-space
                // atomics serialize device-wide; local-space atomics (one
                // line per work-group) stay core-parallel on the LS pipe.
                let _ = self.hier.access(a.addr, a.bytes, true, false);
                match a.space {
                    kernel_ir::MemSpace::Global => {
                        self.global_atomics += 1;
                        *self.atomic_lines.entry(a.addr / 64).or_insert(0) += 1;
                    }
                    kernel_ir::MemSpace::Local => cur.ls_cycles += c.atomic_local_cy,
                }
                cur.ls_cycles += c.ls_issue + c.atomic_local_cy;
            }
            _ => match a.pattern {
                Pattern::Scalar | Pattern::Contiguous => {
                    let streaming = a.pattern == Pattern::Contiguous
                        || self.strides.classify_stream(a.stream, a.addr);
                    let out = self.hier.access(a.addr, a.bytes, write, streaming);
                    let beats = (a.bytes as f64 / 16.0).ceil().max(1.0);
                    cur.ls_cycles += c.ls_issue * beats + out.l2_hits as f64 * c.cy_l2_hit;
                    // Scattered *global* accesses expose L2 latency; local
                    // memory (one hot line per group) stays pipelined.
                    if !streaming && a.space == kernel_ir::MemSpace::Global {
                        cur.ls_cycles += c.cy_ls_scatter;
                    }
                }
                Pattern::Gather => {
                    debug_assert_eq!(lanes.len(), a.width as usize);
                    let lane_bytes = a.elem.bytes();
                    cur.ls_cycles += c.ls_issue + c.ls_gather_lane * (a.width as f64 - 1.0);
                    let scatter = if a.space == kernel_ir::MemSpace::Global {
                        c.cy_ls_scatter
                    } else {
                        0.0
                    };
                    for &addr in lanes {
                        let out = self.hier.access(addr, lane_bytes, write, false);
                        cur.ls_cycles += out.l2_hits as f64 * c.cy_l2_hit + scatter;
                    }
                }
            },
        }
    }
}

impl<'c> ShardTracer for MaliTracer<'c> {
    type Shard = MaliShard<'c>;

    fn make_shard(&self) -> MaliShard<'c> {
        MaliShard {
            cfg: self.cfg,
            cur: GroupCost::default(),
            counters: Counters::default(),
        }
    }

    fn absorb_group(&mut self, shard: MaliShard<'c>, mem: &[MemAccess], lanes: &[u64]) {
        self.counters.merge_in(&shard.counters);
        let mut cur = shard.cur;
        let mut lc = 0usize;
        for a in mem {
            let nl = if a.pattern == Pattern::Gather {
                a.width as usize
            } else {
                0
            };
            self.replay_mem(a, &lanes[lc..lc + nl], &mut cur);
            lc += nl;
        }
        self.total_arith_slots += cur.arith_slots;
        self.total_ls_cycles += cur.ls_cycles;
        self.groups.push(cur);
    }
}

/// The device.
#[derive(Clone, Debug, Default)]
pub struct MaliT604 {
    pub cfg: MaliConfig,
}

impl MaliT604 {
    pub fn new(cfg: MaliConfig) -> Self {
        MaliT604 { cfg }
    }

    /// Resource check performed at enqueue time (the simulated driver's
    /// `CL_OUT_OF_RESOURCES` path).
    pub fn check_resources(&self, program: &Program, ndrange: NDRange) -> Result<(), MaliError> {
        let footprint = program.register_footprint();
        let wg = ndrange.group_size() as u32;
        if !self.cfg.wg_fits(footprint, wg) {
            return Err(MaliError::OutOfResources {
                footprint,
                wg_size: wg,
                available: self.cfg.registers_per_core,
            });
        }
        Ok(())
    }

    /// Execute a kernel over an NDRange. Mutates buffers in `pool`.
    pub fn run(
        &self,
        program: &Program,
        bindings: &[ArgBinding],
        pool: &mut MemoryPool,
        ndrange: NDRange,
    ) -> Result<MaliReport, MaliError> {
        self.check_resources(program, ndrange)?;
        let mut tracer = MaliTracer::new(&self.cfg);
        let stats = run_ndrange_sharded(
            program,
            bindings,
            pool,
            ndrange,
            &mut tracer,
            sim_pool::threads(),
        )?;
        let groups = tracer.groups;
        debug_assert_eq!(groups.len(), ndrange.total_groups().max(1));
        let cfg = &self.cfg;

        // Job manager: round-robin groups over shader cores. Record each
        // group's interval on its core as a telemetry span.
        let cores = cfg.shader_cores as usize;
        let mut core_cycles = vec![0.0f64; cores];
        let mut spans = Vec::with_capacity(groups.len());
        for (i, g) in groups.iter().enumerate() {
            let arith = g.arith_slots / cfg.arith_pipes as f64;
            let group_cycles =
                arith.max(g.ls_cycles) + g.threads as f64 * cfg.cy_thread + cfg.cy_group_dispatch;
            let core = i % cores;
            let start = core_cycles[core];
            core_cycles[core] = start + group_cycles;
            spans.push(WorkSpan {
                core: core as u32,
                group: i as u32,
                start_s: start / cfg.freq_hz,
                end_s: core_cycles[core] / cfg.freq_hz,
            });
        }
        let compute_time = core_cycles.iter().cloned().fold(0.0, f64::max) / cfg.freq_hz;

        // Occupancy-dependent latency exposure for scattered traffic.
        let footprint = program.register_footprint();
        let resident = cfg.resident_threads(footprint).min(cfg.max_wg_size);
        let hiding = (resident as f64 / cfg.full_hiding_threads as f64).clamp(0.2, 1.0);
        let traffic = tracer.hier.stats.traffic;
        let exposure_s = traffic.scatter_lines as f64 * cfg.dram.latency * cfg.scatter_exposure
            / hiding
            / cores as f64;

        // DRAM roofline: controller-side efficiency vs the GPU LS path cap.
        let dram_side = traffic.bandwidth_time(&cfg.dram);
        let gpu_side = traffic.total_bytes(&cfg.dram) as f64 / cfg.gpu_stream_bw;
        let mem_time = dram_side.max(gpu_side);

        // Hotspot serialization: atomics to the same L2 line serialize in
        // the atomic unit; independent lines pipeline across banks.
        let hottest_line = tracer.atomic_lines.values().copied().max().unwrap_or(0);
        let atomic_time = hottest_line as f64 * cfg.atomic_global_serial_cy / cfg.freq_hz;

        let busy_time = (compute_time + exposure_s).max(mem_time).max(atomic_time);
        let time_s = busy_time + cfg.launch_overhead_s;

        let hier = tracer.hier.stats;
        let mut counters = tracer.counters;
        counters.absorb_hier(&hier);
        counters.resident_threads = resident;
        counters.max_resident_threads = cfg.max_wg_size;
        counters.registers_per_thread = footprint;
        let activity = Activity {
            duration_s: time_s,
            cpu_busy_s: [0.0, 0.0],
            gpu_active_s: time_s,
            gpu_arith_util_s: tracer.total_arith_slots / (cfg.total_pipes() as f64 * cfg.freq_hz),
            gpu_ls_util_s: (tracer.total_ls_cycles / cfg.shader_cores as f64
                + hottest_line as f64 * cfg.atomic_global_serial_cy)
                / cfg.freq_hz,
            dram_bytes: hier.traffic.total_lines() * cfg.dram.line_bytes as u64,
        };

        let mut report = MaliReport {
            time_s,
            compute_time_s: compute_time,
            mem_time_s: mem_time,
            atomic_time_s: atomic_time,
            exposure_s,
            resident_threads: resident,
            footprint,
            activity,
            hier,
            groups: groups.len(),
            counters,
            spans,
            sim_threads: stats.threads,
            sim_serial_reason: stats.serial_reason,
            dvfs_throttle: None,
        };
        maybe_throttle(&mut report, &program.name);
        Ok(report)
    }
}

/// Fault injection: a mid-run governor throttle drops the GPU clock,
/// stretching every time-like quantity by one uniform factor. Keyed on the
/// kernel name and group count so the decision is a pure function of the
/// launch, independent of scheduling. Counters and DRAM traffic are
/// unaffected — only the clock changed, not the work.
fn maybe_throttle(report: &mut MaliReport, program_name: &str) {
    let Some(plan) = sim_faults::current() else {
        return;
    };
    let seq = sim_faults::hash_key(program_name) ^ report.groups as u64;
    if !plan.roll(sim_faults::FaultSite::DvfsThrottle, seq) {
        return;
    }
    let k = plan.uniform(sim_faults::FaultSite::DvfsThrottle, seq, 1.1, 1.4);
    sim_faults::note(sim_faults::FaultSite::DvfsThrottle);
    report.dvfs_throttle = Some(k);
    report.time_s *= k;
    report.compute_time_s *= k;
    report.mem_time_s *= k;
    report.atomic_time_s *= k;
    report.exposure_s *= k;
    report.activity.duration_s *= k;
    report.activity.gpu_active_s *= k;
    report.activity.gpu_arith_util_s *= k;
    report.activity.gpu_ls_util_s *= k;
    for s in &mut report.spans {
        s.start_s *= k;
        s.end_s *= k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_ir::prelude::*;
    use kernel_ir::{Access, BufferData, Scalar};

    fn vecadd_scalar() -> Program {
        let mut kb = KernelBuilder::new("vecadd");
        let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let b = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let c = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let va = kb.load(Scalar::F32, a, gid.into());
        let vb = kb.load(Scalar::F32, b, gid.into());
        let s = kb.bin(BinOp::Add, va.into(), vb.into(), VType::scalar(Scalar::F32));
        kb.store(c, gid.into(), s.into());
        kb.finish()
    }

    fn vecadd_vec4() -> Program {
        let mut kb = KernelBuilder::new("vecadd4");
        let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let b = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let c = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let base = kb.bin(
            BinOp::Mul,
            gid.into(),
            Operand::ImmI(4),
            VType::scalar(Scalar::U32),
        );
        let va = kb.vload(Scalar::F32, 4, a, base.into());
        let vb = kb.vload(Scalar::F32, 4, b, base.into());
        let s = kb.bin(BinOp::Add, va.into(), vb.into(), VType::new(Scalar::F32, 4));
        kb.vstore(c, base.into(), s.into());
        kb.finish()
    }

    fn setup(n: usize) -> (MemoryPool, Vec<ArgBinding>) {
        let mut pool = MemoryPool::new();
        let a = pool.add(BufferData::from(
            (0..n).map(|i| i as f32).collect::<Vec<_>>(),
        ));
        let b = pool.add(BufferData::from(vec![1.0f32; n]));
        let c = pool.add(BufferData::zeroed(Scalar::F32, n));
        (
            pool,
            vec![
                ArgBinding::Global(a),
                ArgBinding::Global(b),
                ArgBinding::Global(c),
            ],
        )
    }

    #[test]
    fn computes_correctly() {
        let dev = MaliT604::default();
        let p = vecadd_scalar();
        let (mut pool, b) = setup(1024);
        dev.run(&p, &b, &mut pool, NDRange::d1(1024, 128)).unwrap();
        assert_eq!(pool.get(2).as_f32()[17], 18.0);
    }

    #[test]
    fn vectorization_speeds_up_streaming_kernel() {
        // The §III-B vectorization guideline: same work, fewer threads,
        // wide loads → must be faster in the model.
        let dev = MaliT604::default();
        let n = 1 << 18;
        let (mut p1, b1) = setup(n);
        let r_scalar = dev
            .run(&vecadd_scalar(), &b1, &mut p1, NDRange::d1(n, 128))
            .unwrap();
        let (mut p2, b2) = setup(n);
        let r_vec = dev
            .run(&vecadd_vec4(), &b2, &mut p2, NDRange::d1(n / 4, 128))
            .unwrap();
        // Same results.
        assert_eq!(p1.get(2).as_f32()[n - 1], p2.get(2).as_f32()[n - 1]);
        let speedup = r_scalar.time_s / r_vec.time_s;
        assert!(
            speedup > 1.5,
            "float4 vecadd should beat scalar by >1.5x (got {speedup:.2})"
        );
    }

    #[test]
    fn no_divergence_penalty() {
        // Two kernels with identical per-item work, one routed through an
        // `if` on the thread id parity, one straight-line with select. On
        // warp architectures the branchy one pays ~2x; on Mali (per-thread
        // scheduling) both cost about the same.
        let mk = |branchy: bool| {
            let mut kb = KernelBuilder::new("div");
            let a = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
            let gid = kb.query_global_id(0);
            let par = kb.bin(
                BinOp::And,
                gid.into(),
                Operand::ImmI(1),
                VType::scalar(Scalar::U32),
            );
            let is_odd = kb.bin(
                BinOp::Eq,
                par.into(),
                Operand::ImmI(1),
                VType::scalar(Scalar::U32),
            );
            let v = kb.load(Scalar::F32, a, gid.into());
            let dst = kb.mov(Operand::ImmF(0.0), VType::scalar(Scalar::F32));
            if branchy {
                kb.if_then_else(
                    is_odd.into(),
                    |kb| {
                        let t = kb.mad(
                            v.into(),
                            Operand::ImmF(2.0),
                            Operand::ImmF(1.0),
                            VType::scalar(Scalar::F32),
                        );
                        kb.mov_into(dst, t.into());
                    },
                    |kb| {
                        let t = kb.mad(
                            v.into(),
                            Operand::ImmF(3.0),
                            Operand::ImmF(-1.0),
                            VType::scalar(Scalar::F32),
                        );
                        kb.mov_into(dst, t.into());
                    },
                );
            } else {
                let t1 = kb.mad(
                    v.into(),
                    Operand::ImmF(2.0),
                    Operand::ImmF(1.0),
                    VType::scalar(Scalar::F32),
                );
                kb.mov_into(dst, t1.into());
            }
            kb.store(a, gid.into(), dst.into());
            kb.finish()
        };
        let dev = MaliT604::default();
        let n = 1 << 14;
        let run = |p: &Program| {
            let mut pool = MemoryPool::new();
            let a = pool.add(BufferData::from(vec![1.0f32; n]));
            dev.run(p, &[ArgBinding::Global(a)], &mut pool, NDRange::d1(n, 128))
                .unwrap()
                .time_s
        };
        let t_branchy = run(&mk(true));
        let t_straight = run(&mk(false));
        let ratio = t_branchy / t_straight;
        assert!(
            (0.8..1.35).contains(&ratio),
            "divergent branches must not double cost on Mali (ratio {ratio:.2})"
        );
    }

    #[test]
    fn out_of_resources_on_fat_kernel() {
        let mut kb = KernelBuilder::new("fat");
        let a = kb.arg_global(Scalar::F64, Access::ReadWrite, true);
        // 20 simultaneously-live double16 values = 20 x 8 = 160 hw
        // regs/thread: all defined up front, all consumed at the end.
        let mut regs = Vec::new();
        for i in 0..20 {
            regs.push(kb.mov(Operand::ImmF(i as f64), VType::new(Scalar::F64, 16)));
        }
        let acc = kb.mov(Operand::ImmF(0.0), VType::new(Scalar::F64, 16));
        for r in &regs {
            kb.bin_into(acc, BinOp::Add, acc.into(), (*r).into());
        }
        let s = kb.horiz(HorizOp::Add, acc);
        let gid = kb.query_global_id(0);
        kb.store(a, gid.into(), s.into());
        let p = kb.finish();
        let dev = MaliT604::default();
        let mut pool = MemoryPool::new();
        let ab = pool.add(BufferData::zeroed(Scalar::F64, 256));
        let err = dev
            .run(
                &p,
                &[ArgBinding::Global(ab)],
                &mut pool,
                NDRange::d1(256, 64),
            )
            .unwrap_err();
        assert!(matches!(err, MaliError::OutOfResources { .. }), "{err}");
        let _ = regs;
        // A smaller work-group fits.
        let ok = dev.run(
            &p,
            &[ArgBinding::Global(ab)],
            &mut pool,
            NDRange::d1(256, 8),
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn global_atomics_serialize() {
        let mk = |local: bool| {
            let mut kb = KernelBuilder::new("atom");
            let out = kb.arg_global(Scalar::U32, Access::ReadWrite, false);
            let scratch = kb.arg_local(Scalar::U32);
            let lid = kb.query_local_id(0);
            if local {
                kb.atomic(AtomicOp::Inc, scratch, lid.into(), Operand::ImmI(0));
            } else {
                kb.atomic(AtomicOp::Inc, out, Operand::ImmI(0), Operand::ImmI(0));
            }
            kb.finish()
        };
        let dev = MaliT604::default();
        let n = 1 << 16;
        let run = |p: &Program| {
            let mut pool = MemoryPool::new();
            let o = pool.add(BufferData::zeroed(Scalar::U32, 256));
            let b = [ArgBinding::Global(o), ArgBinding::LocalSize(256)];
            dev.run(p, &b, &mut pool, NDRange::d1(n, 128)).unwrap()
        };
        let r_global = run(&mk(false));
        let r_local = run(&mk(true));
        assert!(r_global.atomic_time_s > 0.0);
        assert!(
            r_global.time_s > 1.3 * r_local.time_s,
            "global atomic storm ({:.3e}) should be slower than local ({:.3e})",
            r_global.time_s,
            r_local.time_s
        );
    }

    #[test]
    fn local_memory_costs_like_global() {
        // §III-B "Memory Spaces": local memory is physically global on
        // Mali, so staging data into local memory buys nothing.
        let direct = {
            let mut kb = KernelBuilder::new("direct");
            let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
            let out = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
            let gid = kb.query_global_id(0);
            let acc = kb.mov(Operand::ImmF(0.0), VType::scalar(Scalar::F32));
            kb.for_loop(
                Operand::ImmI(0),
                Operand::ImmI(16),
                Operand::ImmI(1),
                |kb, i| {
                    let v = kb.load(Scalar::F32, a, i.into());
                    kb.bin_into(acc, BinOp::Add, acc.into(), v.into());
                },
            );
            kb.store(out, gid.into(), acc.into());
            kb.finish()
        };
        let staged = {
            let mut kb = KernelBuilder::new("staged");
            let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
            let out = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
            let tile = kb.arg_local(Scalar::F32);
            let lid = kb.query_local_id(0);
            let in_range = kb.bin(
                BinOp::Lt,
                lid.into(),
                Operand::ImmI(16),
                VType::scalar(Scalar::U32),
            );
            kb.if_then(in_range.into(), |kb| {
                let v = kb.load(Scalar::F32, a, lid.into());
                kb.store(tile, lid.into(), v.into());
            });
            kb.barrier();
            let gid = kb.query_global_id(0);
            let acc = kb.mov(Operand::ImmF(0.0), VType::scalar(Scalar::F32));
            kb.for_loop(
                Operand::ImmI(0),
                Operand::ImmI(16),
                Operand::ImmI(1),
                |kb, i| {
                    let v = kb.load(Scalar::F32, tile, i.into());
                    kb.bin_into(acc, BinOp::Add, acc.into(), v.into());
                },
            );
            kb.store(out, gid.into(), acc.into());
            kb.finish()
        };
        let dev = MaliT604::default();
        let n = 1 << 14;
        let run = |p: &Program, has_local: bool| {
            let mut pool = MemoryPool::new();
            let a = pool.add(BufferData::from(vec![1.0f32; n]));
            let o = pool.add(BufferData::zeroed(Scalar::F32, n));
            let mut b = vec![ArgBinding::Global(a), ArgBinding::Global(o)];
            if has_local {
                b.push(ArgBinding::LocalSize(16));
            }
            dev.run(p, &b, &mut pool, NDRange::d1(n, 64))
                .unwrap()
                .time_s
        };
        let t_direct = run(&direct, false);
        let t_staged = run(&staged, true);
        assert!(
            t_staged >= t_direct * 0.95,
            "local staging must not win on Mali (direct {t_direct:.3e}, staged {t_staged:.3e})"
        );
    }

    #[test]
    fn report_fields_consistent() {
        let dev = MaliT604::default();
        let (mut pool, b) = setup(4096);
        let r = dev
            .run(&vecadd_scalar(), &b, &mut pool, NDRange::d1(4096, 128))
            .unwrap();
        assert!(r.time_s >= dev.cfg.launch_overhead_s);
        assert_eq!(r.groups, 32);
        assert!(r.activity.gpu_active_s > 0.0);
        assert!(r.activity.dram_bytes > 0);
        assert!(r.footprint > 0);
        assert!(r.resident_threads > 0);
    }

    #[test]
    fn wider_vectors_raise_footprint_and_lower_occupancy() {
        let mk = |w: u8| {
            let mut kb = KernelBuilder::new("w");
            let a = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
            let gid = kb.query_global_id(0);
            let base = kb.bin(
                BinOp::Mul,
                gid.into(),
                Operand::ImmI(w as i64),
                VType::scalar(Scalar::U32),
            );
            let v = kb.vload(Scalar::F32, w, a, base.into());
            let s = kb.bin(
                BinOp::Add,
                v.into(),
                Operand::ImmF(1.0),
                VType::new(Scalar::F32, w),
            );
            kb.vstore(a, base.into(), s.into());
            kb.finish()
        };
        let dev = MaliT604::default();
        let n = 1 << 12;
        let run = |w: u8| {
            let mut pool = MemoryPool::new();
            let a = pool.add(BufferData::zeroed(Scalar::F32, n));
            dev.run(
                &mk(w),
                &[ArgBinding::Global(a)],
                &mut pool,
                NDRange::d1(n / w as usize, 64),
            )
            .unwrap()
        };
        let r4 = run(4);
        let r16 = run(16);
        assert!(r16.footprint > r4.footprint);
        assert!(r16.resident_threads <= r4.resident_threads);
    }
}
