//! The full benchmark suite at paper scale and at test scale.

use crate::amcd::Amcd;
use crate::common::Benchmark;
use crate::conv2d::Conv2d;
use crate::dmmm::Dmmm;
use crate::hist::Hist;
use crate::nbody::Nbody;
use crate::red::Red;
use crate::spmv::Spmv;
use crate::stencil3d::Stencil3d;
use crate::vecop::Vecop;

/// All nine benchmarks at evaluation scale, in the paper's figure order
/// (spmv, vecop, hist, 3dstc, red, amcd, nbody, 2dcon, dmmm).
pub fn suite() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(Spmv::default()),
        Box::new(Vecop::default()),
        Box::new(Hist::default()),
        Box::new(Stencil3d::default()),
        Box::new(Red::default()),
        Box::new(Amcd::default()),
        Box::new(Nbody::default()),
        Box::new(Conv2d::default()),
        Box::new(Dmmm::default()),
    ]
}

/// Quarter-scale instances: large enough to amortize launch/fork
/// overheads (so figure *shapes* hold), small enough for integration
/// tests.
pub fn mid_suite() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(Spmv {
            rows: 4096,
            nnz_per_row: 16,
        }),
        Box::new(Vecop { n: 1 << 18 }),
        Box::new(Hist {
            n: 1 << 18,
            buckets: 256,
            opt_items_per_thread: 16,
        }),
        Box::new(Stencil3d {
            dim: 34,
            opt_z_per_thread: 8,
        }),
        Box::new(Red {
            n: 1 << 18,
            wg: 128,
            naive_groups: 128,
            opt_groups: 16,
        }),
        Box::new(Amcd {
            walkers: 2048,
            steps: 96,
        }),
        Box::new(Nbody {
            n: 512,
            dt: 0.01,
            opt_unroll: 4,
        }),
        Box::new(Conv2d { n: 132 }),
        Box::new(Dmmm {
            n: 96,
            opt_unroll: 2,
            opt_width: 4,
        }),
    ]
}

/// Small instances of the same nine benchmarks (fast enough for CI).
pub fn test_suite() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(Spmv::test_size()),
        Box::new(Vecop::test_size()),
        Box::new(Hist::test_size()),
        Box::new(Stencil3d::test_size()),
        Box::new(Red::test_size()),
        Box::new(Amcd::test_size()),
        Box::new(Nbody::test_size()),
        Box::new(Conv2d::test_size()),
        Box::new(Dmmm::test_size()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{Precision, RunSkip, Variant};

    #[test]
    fn suite_has_the_paper_order() {
        let names: Vec<&str> = suite().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            ["spmv", "vecop", "hist", "3dstc", "red", "amcd", "nbody", "2dcon", "dmmm"]
        );
    }

    #[test]
    fn every_benchmark_runs_and_validates_at_test_scale() {
        for b in test_suite() {
            for prec in Precision::ALL {
                for v in Variant::ALL {
                    match b.run(v, prec) {
                        Ok(r) => assert!(
                            r.validated,
                            "{} {} {} failed validation (err {:.3e})",
                            b.name(),
                            v.label(),
                            prec.label(),
                            r.max_rel_err
                        ),
                        Err(RunSkip::CompilerBug(_))
                            if b.name() == "amcd" && prec == Precision::F64 && v.on_gpu() => {}
                        Err(e) => {
                            panic!("{} {} {}: {e}", b.name(), v.label(), prec.label())
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn mid_suite_runs_cleanly() {
        // Spot-check shapes/divisibility of the mid-scale instances.
        for b in mid_suite() {
            let r = b.run(Variant::OpenClOpt, Precision::F32);
            match r {
                Ok(r) => assert!(r.validated, "{} failed validation", b.name()),
                Err(e) => panic!("{}: {e}", b.name()),
            }
        }
    }

    #[test]
    fn descriptions_are_present() {
        for b in suite() {
            assert!(!b.description().is_empty());
        }
    }
}
