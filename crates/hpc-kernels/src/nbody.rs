//! **nbody** — all-pairs gravitational N-body step (§IV-A).
//!
//! Position/mass records live in an **AOS** buffer (`x y z m` interleaved),
//! exactly like the paper's port, which "does not apply any change to the
//! main data structure representation that would lead to an easier
//! applicability of vector optimizations". Consequently the optimized
//! version gains little: inner-loop unrolling, hints and a tuned
//! work-group size — and in double precision the unrolled kernel's
//! register footprint trips `CL_OUT_OF_RESOURCES` at the tuned group size,
//! forcing a fallback that shrinks the Opt-vs-naive gap to almost nothing
//! (Fig. 2(b): 9.3× vs 10×).

use crate::common::{
    collect_gpu_telemetry, gpu_context, launch, run_cpu_kernel, validate, Benchmark, Precision,
    RunOutcome, RunSkip, Variant,
};
use kernel_ir::prelude::*;
use kernel_ir::Access;
use mali_hpc::unroll;
use ocl_runtime::KernelArg;

/// N-body parameters: one leapfrog-style step over all pairs.
pub struct Nbody {
    pub n: usize,
    pub dt: f64,
    /// Inner-loop unroll factor for the optimized kernel.
    pub opt_unroll: u32,
}

impl Default for Nbody {
    fn default() -> Self {
        Nbody {
            n: 1024,
            dt: 0.01,
            opt_unroll: 4,
        }
    }
}

const SOFTENING: f64 = 1e-3;

impl Nbody {
    pub fn test_size() -> Self {
        Nbody {
            n: 128,
            dt: 0.01,
            opt_unroll: 4,
        }
    }

    /// AOS-flattened `x y z m` records.
    pub fn bodies(&self) -> Vec<f64> {
        let u = crate::common::prng_uniform(37, self.n * 4);
        let mut out = Vec::with_capacity(self.n * 4);
        for i in 0..self.n {
            out.push(u[4 * i] * 2.0 - 1.0);
            out.push(u[4 * i + 1] * 2.0 - 1.0);
            out.push(u[4 * i + 2] * 2.0 - 1.0);
            out.push(0.5 + u[4 * i + 3]); // mass
        }
        out
    }

    /// Reference accelerations ×dt (the kernel's output: velocity deltas),
    /// AOS layout `ax ay az 0`.
    pub fn reference(&self, prec: Precision) -> Vec<f64> {
        let b = self.bodies();
        let mut out = vec![0.0; self.n * 4];
        match prec {
            Precision::F64 => {
                for i in 0..self.n {
                    let (xi, yi, zi) = (b[4 * i], b[4 * i + 1], b[4 * i + 2]);
                    let (mut ax, mut ay, mut az) = (0.0f64, 0.0, 0.0);
                    for j in 0..self.n {
                        let dx = b[4 * j] - xi;
                        let dy = b[4 * j + 1] - yi;
                        let dz = b[4 * j + 2] - zi;
                        let d2 = dx * dx + dy * dy + dz * dz + SOFTENING;
                        let inv = 1.0 / d2.sqrt();
                        let inv3 = inv * inv * inv;
                        let s = b[4 * j + 3] * inv3;
                        ax += dx * s;
                        ay += dy * s;
                        az += dz * s;
                    }
                    out[4 * i] = ax * self.dt;
                    out[4 * i + 1] = ay * self.dt;
                    out[4 * i + 2] = az * self.dt;
                }
            }
            Precision::F32 => {
                let bf: Vec<f32> = b.iter().map(|&x| x as f32).collect();
                for i in 0..self.n {
                    let (xi, yi, zi) = (bf[4 * i], bf[4 * i + 1], bf[4 * i + 2]);
                    let (mut ax, mut ay, mut az) = (0.0f32, 0.0, 0.0);
                    for j in 0..self.n {
                        let dx = bf[4 * j] - xi;
                        let dy = bf[4 * j + 1] - yi;
                        let dz = bf[4 * j + 2] - zi;
                        let d2 = dx * dx + dy * dy + dz * dz + SOFTENING as f32;
                        let inv = 1.0 / d2.sqrt();
                        let inv3 = inv * inv * inv;
                        let s = bf[4 * j + 3] * inv3;
                        ax += dx * s;
                        ay += dy * s;
                        az += dz * s;
                    }
                    out[4 * i] = (ax * self.dt as f32) as f64;
                    out[4 * i + 1] = (ay * self.dt as f32) as f64;
                    out[4 * i + 2] = (az * self.dt as f32) as f64;
                }
            }
        }
        out
    }

    /// The AOS kernel shared by all versions.
    pub fn kernel(&self, prec: Precision, hints: Hints) -> Program {
        let e = prec.elem();
        let mut kb = KernelBuilder::new("nbody");
        kb.hints(hints);
        let pos = kb.arg_global(e, Access::ReadOnly, true);
        let dv = kb.arg_global(e, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let base = kb.bin(
            BinOp::Mul,
            gid.into(),
            Operand::ImmI(4),
            VType::scalar(Scalar::U32),
        );
        let b1 = kb.bin(
            BinOp::Add,
            base.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        let b2 = kb.bin(
            BinOp::Add,
            base.into(),
            Operand::ImmI(2),
            VType::scalar(Scalar::U32),
        );
        let xi = kb.load(e, pos, base.into());
        let yi = kb.load(e, pos, b1.into());
        let zi = kb.load(e, pos, b2.into());
        let ax = kb.mov(Operand::ImmF(0.0), VType::scalar(e));
        let ay = kb.mov(Operand::ImmF(0.0), VType::scalar(e));
        let az = kb.mov(Operand::ImmF(0.0), VType::scalar(e));
        kb.for_loop(
            Operand::ImmI(0),
            Operand::ImmI(self.n as i64),
            Operand::ImmI(1),
            |kb, j| {
                // One float4/double4 load per AOS record (`pos[j]` in
                // OpenCL C is a single vector load even in the naive port).
                let jb = kb.bin(
                    BinOp::Mul,
                    j.into(),
                    Operand::ImmI(4),
                    VType::scalar(Scalar::U32),
                );
                let body = kb.vload(e, 4, pos, jb.into());
                let xj = kb.extract(body, 0);
                let yj = kb.extract(body, 1);
                let zj = kb.extract(body, 2);
                let mj = kb.extract(body, 3);
                let dx = kb.bin(BinOp::Sub, xj.into(), xi.into(), VType::scalar(e));
                let dy = kb.bin(BinOp::Sub, yj.into(), yi.into(), VType::scalar(e));
                let dz = kb.bin(BinOp::Sub, zj.into(), zi.into(), VType::scalar(e));
                let d2 = kb.mad(
                    dx.into(),
                    dx.into(),
                    Operand::ImmF(SOFTENING),
                    VType::scalar(e),
                );
                let d2b = kb.mad(dy.into(), dy.into(), d2.into(), VType::scalar(e));
                let d2c = kb.mad(dz.into(), dz.into(), d2b.into(), VType::scalar(e));
                let inv = kb.un(UnOp::Rsqrt, d2c.into(), VType::scalar(e));
                let inv2 = kb.bin(BinOp::Mul, inv.into(), inv.into(), VType::scalar(e));
                let inv3 = kb.bin(BinOp::Mul, inv2.into(), inv.into(), VType::scalar(e));
                let s = kb.bin(BinOp::Mul, mj.into(), inv3.into(), VType::scalar(e));
                kb.mad_into(ax, dx.into(), s.into(), ax.into());
                kb.mad_into(ay, dy.into(), s.into(), ay.into());
                kb.mad_into(az, dz.into(), s.into(), az.into());
            },
        );
        for (acc, off) in [(ax, 0i64), (ay, 1), (az, 2)] {
            let idx = kb.bin(
                BinOp::Add,
                base.into(),
                Operand::ImmI(off),
                VType::scalar(Scalar::U32),
            );
            let v = kb.bin(
                BinOp::Mul,
                acc.into(),
                Operand::ImmF(self.dt),
                VType::scalar(e),
            );
            kb.store(dv, idx.into(), v.into());
        }
        kb.finish()
    }

    /// Optimized kernel: the shared kernel unrolled by `opt_unroll` with
    /// hints — the only §III techniques applicable without changing the
    /// AOS data structure.
    pub fn opt_kernel(&self, prec: Precision) -> Program {
        let base = self.kernel(
            prec,
            Hints {
                inline: true,
                const_args: true,
            },
        );
        unroll(&base, self.opt_unroll).expect("n divisible by unroll factor")
    }

    fn check(&self, out: &kernel_ir::BufferData, prec: Precision) -> (bool, f64) {
        let reference = self.reference(prec);
        // Compare only the x/y/z lanes (w stays zero on both sides).
        validate(out, &reference, prec)
    }

    // ---- extension: the SOA variant the paper declined ------------------

    /// SOA inputs: the bodies re-organized per §III-B "Data Organization"
    /// (`x[]`, `y[]`, `z[]`, `m[]`).
    pub fn bodies_soa(&self) -> [Vec<f64>; 4] {
        let aos = self.bodies();
        let mut soa = [
            Vec::with_capacity(self.n),
            Vec::with_capacity(self.n),
            Vec::with_capacity(self.n),
            Vec::with_capacity(self.n),
        ];
        for i in 0..self.n {
            for f in 0..4 {
                soa[f].push(aos[4 * i + f]);
            }
        }
        soa
    }

    /// **Extension kernel** (not one of the paper's four versions): the
    /// AOS→SOA transformation the paper explicitly did *not* apply
    /// ("the OpenCL version does not apply any change to the main data
    /// structure representation that would lead to an easier applicability
    /// of vector optimizations", §V-A). With SOA arrays, the inner loop
    /// vectorizes: one `vload4` per coordinate array processes four
    /// j-bodies at once with vector arithmetic and vector `rsqrt`.
    pub fn soa_kernel(&self, prec: Precision, width: u8) -> Program {
        let e = prec.elem();
        let vt = VType::new(e, width);
        let mut kb = KernelBuilder::new(format!("nbody_soa_v{width}"));
        kb.hints(Hints {
            inline: true,
            const_args: true,
        });
        let xs = kb.arg_global(e, Access::ReadOnly, true);
        let ys = kb.arg_global(e, Access::ReadOnly, true);
        let zs = kb.arg_global(e, Access::ReadOnly, true);
        let ms = kb.arg_global(e, Access::ReadOnly, true);
        let dv = kb.arg_global(e, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let xi = kb.load(e, xs, gid.into());
        let yi = kb.load(e, ys, gid.into());
        let zi = kb.load(e, zs, gid.into());
        let ax = kb.mov(Operand::ImmF(0.0), vt);
        let ay = kb.mov(Operand::ImmF(0.0), vt);
        let az = kb.mov(Operand::ImmF(0.0), vt);
        kb.for_loop(
            Operand::ImmI(0),
            Operand::ImmI(self.n as i64),
            Operand::ImmI(width as i64),
            |kb, j| {
                let xj = kb.vload(e, width, xs, j.into());
                let yj = kb.vload(e, width, ys, j.into());
                let zj = kb.vload(e, width, zs, j.into());
                let mj = kb.vload(e, width, ms, j.into());
                // Scalar xi broadcasts across the vector lanes.
                let dx = kb.bin(BinOp::Sub, xj.into(), xi.into(), vt);
                let dy = kb.bin(BinOp::Sub, yj.into(), yi.into(), vt);
                let dz = kb.bin(BinOp::Sub, zj.into(), zi.into(), vt);
                let d2 = kb.mad(dx.into(), dx.into(), Operand::ImmF(SOFTENING), vt);
                let d2b = kb.mad(dy.into(), dy.into(), d2.into(), vt);
                let d2c = kb.mad(dz.into(), dz.into(), d2b.into(), vt);
                let inv = kb.un(UnOp::Rsqrt, d2c.into(), vt);
                let inv2 = kb.bin(BinOp::Mul, inv.into(), inv.into(), vt);
                let inv3 = kb.bin(BinOp::Mul, inv2.into(), inv.into(), vt);
                let s = kb.bin(BinOp::Mul, mj.into(), inv3.into(), vt);
                kb.mad_into(ax, dx.into(), s.into(), ax.into());
                kb.mad_into(ay, dy.into(), s.into(), ay.into());
                kb.mad_into(az, dz.into(), s.into(), az.into());
            },
        );
        // Horizontal reduction of the lane-partial accelerations, then the
        // same AOS output layout as the paper's kernels (so validation is
        // shared).
        let base = kb.bin(
            BinOp::Mul,
            gid.into(),
            Operand::ImmI(4),
            VType::scalar(Scalar::U32),
        );
        for (acc, off) in [(ax, 0i64), (ay, 1), (az, 2)] {
            let h = kb.horiz(HorizOp::Add, acc);
            let scaled = kb.bin(
                BinOp::Mul,
                h.into(),
                Operand::ImmF(self.dt),
                VType::scalar(e),
            );
            let idx = kb.bin(
                BinOp::Add,
                base.into(),
                Operand::ImmI(off),
                VType::scalar(Scalar::U32),
            );
            kb.store(dv, idx.into(), scaled.into());
        }
        kb.finish()
    }

    /// Run the SOA extension on the GPU; returns the usual outcome (compare
    /// its time against `Variant::OpenClOpt` to see what the paper left on
    /// the table).
    pub fn run_soa_extension(&self, prec: Precision, width: u8) -> Result<RunOutcome, RunSkip> {
        let e = prec.elem();
        let soa = self.bodies_soa();
        let bufs = vec![
            prec.buffer(&soa[0]),
            prec.buffer(&soa[1]),
            prec.buffer(&soa[2]),
            prec.buffer(&soa[3]),
            kernel_ir::BufferData::zeroed(e, self.n * 4),
        ];
        let (mut ctx, ids) = gpu_context(bufs);
        let k = ctx
            .build_kernel(self.soa_kernel(prec, width))
            .map_err(|e| RunSkip::CompilerBug(e.to_string()))?;
        let args: Vec<ocl_runtime::KernelArg> = ids
            .iter()
            .map(|&b| ocl_runtime::KernelArg::Buf(b))
            .collect();
        // Same fallback discipline as the AOS opt version.
        let mut note = format!("SOA extension, vload{width}, wg 128");
        let attempt = launch(&mut ctx, &k, [self.n, 1, 1], Some([128, 1, 1]), &args);
        let (t, act) = match attempt {
            Ok(r) => r,
            Err(ocl_runtime::ClError::OutOfResources { .. }) => {
                note = format!("SOA extension, vload{width}: fell back to wg 32");
                launch(&mut ctx, &k, [self.n, 1, 1], Some([32, 1, 1]), &args)
                    .map_err(|e| RunSkip::LaunchFailure(e.to_string()))?
            }
            Err(e) => return Err(RunSkip::LaunchFailure(e.to_string())),
        };
        // Validate with a looser association-aware bound: the vector-lane
        // partial sums change the accumulation order, so f32 errors grow
        // slightly relative to the sequential reference.
        let reference = self.reference(prec);
        let err = crate::common::max_rel_err(ctx.buffer_data(ids[4]), &reference);
        let tol = match prec {
            Precision::F32 => 5e-3,
            Precision::F64 => 1e-9,
        };
        let tel = collect_gpu_telemetry(&mut ctx);
        Ok(RunOutcome {
            time_s: t,
            activity: act,
            validated: err <= tol,
            max_rel_err: err,
            note: Some(note),
            telemetry: tel,
        })
    }
}

impl Benchmark for Nbody {
    fn name(&self) -> &'static str {
        "nbody"
    }

    fn description(&self) -> &'static str {
        "all-pairs gravitational interactions; AOS layout, rsqrt-heavy"
    }

    fn run(&self, variant: Variant, prec: Precision) -> Result<RunOutcome, RunSkip> {
        let e = prec.elem();
        let bufs = vec![
            prec.buffer(&self.bodies()),
            kernel_ir::BufferData::zeroed(e, self.n * 4),
        ];
        match variant {
            Variant::Serial | Variant::OpenMp => {
                let mut pool = MemoryPool::new();
                let ids: Vec<ArgBinding> = bufs
                    .into_iter()
                    .map(|d| ArgBinding::Global(pool.add(d)))
                    .collect();
                let cores = if variant == Variant::Serial { 1 } else { 2 };
                let (t, act, pool, tel) = run_cpu_kernel(
                    &self.kernel(prec, Hints::default()),
                    &ids,
                    pool,
                    NDRange::d1(self.n, 64),
                    cores,
                );
                let (ok, err) = self.check(pool.get(1), prec);
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: None,
                    telemetry: tel,
                })
            }
            Variant::OpenCl => {
                let (mut ctx, ids) = gpu_context(bufs);
                let k = ctx
                    .build_kernel(self.kernel(prec, Hints::default()))
                    .map_err(|e| RunSkip::CompilerBug(e.to_string()))?;
                let args: Vec<KernelArg> = ids.iter().map(|&b| KernelArg::Buf(b)).collect();
                let (t, act) = launch(&mut ctx, &k, [self.n, 1, 1], None, &args)
                    .map_err(|e| RunSkip::LaunchFailure(e.to_string()))?;
                let tel = collect_gpu_telemetry(&mut ctx);
                let (ok, err) = self.check(ctx.buffer_data(ids[1]), prec);
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: Some("AOS naive port".into()),
                    telemetry: tel,
                })
            }
            Variant::OpenClOpt => {
                let (mut ctx, ids) = gpu_context(bufs);
                let k = ctx
                    .build_kernel(self.opt_kernel(prec))
                    .map_err(|e| RunSkip::CompilerBug(e.to_string()))?;
                let args: Vec<KernelArg> = ids.iter().map(|&b| KernelArg::Buf(b)).collect();
                // Tuned work-group size first; on CL_OUT_OF_RESOURCES fall
                // back to smaller groups, as the paper had to in f64.
                let mut note = format!("unroll x{}, wg 128", self.opt_unroll);
                let attempt = launch(&mut ctx, &k, [self.n, 1, 1], Some([128, 1, 1]), &args);
                let (t, act) = match attempt {
                    Ok(r) => r,
                    Err(ocl_runtime::ClError::OutOfResources { .. }) => {
                        note = format!(
                            "unroll x{}: wg 128 hit CL_OUT_OF_RESOURCES, fell back to wg 32",
                            self.opt_unroll
                        );
                        launch(&mut ctx, &k, [self.n, 1, 1], Some([32, 1, 1]), &args)
                            .map_err(|e| RunSkip::LaunchFailure(e.to_string()))?
                    }
                    Err(e) => return Err(RunSkip::LaunchFailure(e.to_string())),
                };
                let tel = collect_gpu_telemetry(&mut ctx);
                let (ok, err) = self.check(ctx.buffer_data(ids[1]), prec);
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: Some(note),
                    telemetry: tel,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_validate() {
        let b = Nbody::test_size();
        for prec in Precision::ALL {
            for v in Variant::ALL {
                let r = b.run(v, prec).unwrap();
                assert!(
                    r.validated,
                    "{} {} err {:.3e}",
                    v.label(),
                    prec.label(),
                    r.max_rel_err
                );
            }
        }
    }

    #[test]
    fn gpu_wins_big_even_unoptimized() {
        // Fig. 2(a): nbody OpenCL reaches 17.2× — the naive port already
        // flies because rsqrt is native and divergence costs nothing.
        let b = Nbody::default();
        let serial = b.run(Variant::Serial, Precision::F32).unwrap();
        let naive = b.run(Variant::OpenCl, Precision::F32).unwrap();
        let speedup = serial.time_s / naive.time_s;
        assert!(
            speedup > 6.0,
            "nbody naive GPU speedup {speedup:.1} too small"
        );
    }

    #[test]
    fn opt_gain_is_modest() {
        // §V-A: without the SOA transform the opt version "does not show
        // significant improvements".
        let b = Nbody::default();
        let naive = b.run(Variant::OpenCl, Precision::F32).unwrap();
        let opt = b.run(Variant::OpenClOpt, Precision::F32).unwrap();
        let gain = naive.time_s / opt.time_s;
        assert!(
            (0.95..1.6).contains(&gain),
            "nbody opt gain {gain:.2} out of band"
        );
    }

    #[test]
    fn soa_extension_validates_and_beats_aos_opt() {
        // §III-B Data Organization, applied where the paper declined to:
        // the SOA kernel vectorizes the inner loop and should beat the
        // AOS-bound optimized version.
        let b = Nbody::default();
        let aos_opt = b.run(Variant::OpenClOpt, Precision::F32).unwrap();
        let soa = b.run_soa_extension(Precision::F32, 4).unwrap();
        assert!(
            soa.validated,
            "SOA kernel wrong (err {:.3e})",
            soa.max_rel_err
        );
        assert!(
            soa.time_s < aos_opt.time_s,
            "SOA ({:.3e}) should beat AOS opt ({:.3e})",
            soa.time_s,
            aos_opt.time_s
        );
    }

    #[test]
    fn soa_extension_widths_agree() {
        let b = Nbody::test_size();
        for w in [2u8, 4, 8] {
            let r = b.run_soa_extension(Precision::F32, w).unwrap();
            assert!(r.validated, "width {w} err {:.3e}", r.max_rel_err);
        }
    }

    #[test]
    fn f64_opt_falls_back_on_registers() {
        let b = Nbody {
            n: 512,
            dt: 0.01,
            opt_unroll: 8,
        };
        let r = b.run(Variant::OpenClOpt, Precision::F64).unwrap();
        assert!(r.validated);
        assert!(
            r.note
                .as_deref()
                .unwrap_or("")
                .contains("CL_OUT_OF_RESOURCES"),
            "expected register-pressure fallback, note: {:?}",
            r.note
        );
    }
}
