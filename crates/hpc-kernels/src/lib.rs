//! # hpc-kernels — the nine HPC benchmarks of the study (§IV-A)
//!
//! Each module implements one benchmark in the paper's four versions
//! (Serial / OpenMP on the Cortex-A15 model, OpenCL / OpenCL-Opt on the
//! Mali-T604 model) and both precisions, with a plain-Rust reference
//! implementation used to validate every run's output.
//!
//! | Module | Benchmark | Stress axis |
//! |---|---|---|
//! | [`spmv`] | sparse matrix–vector multiply | load imbalance, gathers |
//! | [`vecop`] | element-wise vector add | memory bandwidth |
//! | [`hist`] | histogram | atomics, privatization |
//! | [`stencil3d`] | 7-point 3-D stencil | strided access, reuse |
//! | [`red`] | two-stage reduction | parallel→sequential adaptation |
//! | [`amcd`] | Metropolis Monte-Carlo | divergence, transcendental |
//! | [`nbody`] | all-pairs gravity | compute, AOS layout |
//! | [`conv2d`] | 5×5 2-D convolution | spatial locality, vectorization |
//! | [`dmmm`] | dense matrix multiply | data reuse, compute |

pub mod amcd;
pub mod common;
pub mod conv2d;
pub mod dmmm;
pub mod hist;
pub mod nbody;
pub mod red;
pub mod spmv;
pub mod stencil3d;
pub mod suite;
pub mod vecop;

pub use common::{take_output_digest, Benchmark, Precision, RunOutcome, RunSkip, Variant};
pub use suite::{mid_suite, suite, test_suite};
