//! **3dstc** — 7-point 3-D stencil (§IV-A).
//!
//! `out[x,y,z] = c0·in[x,y,z] + c1·(6 neighbours)` over the interior of a
//! cubic volume; regular strided accesses. Per the paper, the optimized
//! version does **not** vectorize — "3dstc does not take advantage of
//! vector instructions and limits the optimizations to work-group size
//! tuning and data reuse": each optimized work-item walks a column of Z
//! output points, keeping the three z-plane values of the column in
//! registers so every input is loaded once instead of three times.

use crate::common::{
    collect_gpu_telemetry, gpu_context, launch, run_cpu_kernel, validate, Benchmark, Precision,
    RunOutcome, RunSkip, Variant,
};
use kernel_ir::prelude::*;
use kernel_ir::Access;
use ocl_runtime::KernelArg;

/// Stencil parameters. Interior points are `dim-2` per axis; `dim-2` must
/// be divisible by the work-group tiles used below.
pub struct Stencil3d {
    pub dim: usize,
    /// Z-points computed per work-item in the optimized kernel.
    pub opt_z_per_thread: usize,
}

impl Default for Stencil3d {
    fn default() -> Self {
        Stencil3d {
            dim: 66,
            opt_z_per_thread: 8,
        }
    }
}

const C0: f64 = 0.4;
const C1: f64 = 0.1;

impl Stencil3d {
    pub fn test_size() -> Self {
        Stencil3d {
            dim: 18,
            opt_z_per_thread: 4,
        }
    }

    fn interior(&self) -> usize {
        self.dim - 2
    }

    pub fn input(&self) -> Vec<f64> {
        crate::common::prng_uniform(29, self.dim * self.dim * self.dim)
    }

    fn at(&self, v: &[f64], x: usize, y: usize, z: usize) -> f64 {
        v[(z * self.dim + y) * self.dim + x]
    }

    /// f64 reference over the interior; output indexed like the input
    /// volume (border kept zero).
    pub fn reference(&self, prec: Precision) -> Vec<f64> {
        let input = self.input();
        let d = self.dim;
        let mut out = vec![0.0; d * d * d];
        for z in 1..d - 1 {
            for y in 1..d - 1 {
                for x in 1..d - 1 {
                    let neigh = self.at(&input, x - 1, y, z)
                        + self.at(&input, x + 1, y, z)
                        + self.at(&input, x, y - 1, z)
                        + self.at(&input, x, y + 1, z)
                        + self.at(&input, x, y, z - 1)
                        + self.at(&input, x, y, z + 1);
                    let v = match prec {
                        Precision::F64 => C0 * self.at(&input, x, y, z) + C1 * neigh,
                        Precision::F32 => {
                            let n = (self.at(&input, x - 1, y, z) as f32
                                + self.at(&input, x + 1, y, z) as f32
                                + self.at(&input, x, y - 1, z) as f32
                                + self.at(&input, x, y + 1, z) as f32
                                + self.at(&input, x, y, z - 1) as f32
                                + self.at(&input, x, y, z + 1) as f32)
                                * C1 as f32;
                            (C0 as f32).mul_add(self.at(&input, x, y, z) as f32, n) as f64
                        }
                    };
                    out[(z * d + y) * d + x] = v;
                }
            }
        }
        out
    }

    /// Emit `idx = ((z·d) + y)·d + x` from coordinate registers.
    fn emit_index(kb: &mut KernelBuilder, d: i64, x: Operand, y: Operand, z: Operand) -> Reg {
        let zy = kb.bin(BinOp::Mul, z, Operand::ImmI(d), VType::scalar(Scalar::U32));
        let zy2 = kb.bin(BinOp::Add, zy.into(), y, VType::scalar(Scalar::U32));
        let row = kb.bin(
            BinOp::Mul,
            zy2.into(),
            Operand::ImmI(d),
            VType::scalar(Scalar::U32),
        );
        kb.bin(BinOp::Add, row.into(), x, VType::scalar(Scalar::U32))
    }

    /// Naive kernel: one interior point per work-item, 3-D NDRange over the
    /// interior (ids offset by +1).
    pub fn kernel(&self, prec: Precision) -> Program {
        let e = prec.elem();
        let d = self.dim as i64;
        let mut kb = KernelBuilder::new("stencil3d");
        let inp = kb.arg_global(e, Access::ReadOnly, true);
        let out = kb.arg_global(e, Access::WriteOnly, true);
        let gx = kb.query_global_id(0);
        let gy = kb.query_global_id(1);
        let gz = kb.query_global_id(2);
        let x = kb.bin(
            BinOp::Add,
            gx.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        let y = kb.bin(
            BinOp::Add,
            gy.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        let z = kb.bin(
            BinOp::Add,
            gz.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        let xm = kb.bin(
            BinOp::Sub,
            x.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        let xp = kb.bin(
            BinOp::Add,
            x.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        let ym = kb.bin(
            BinOp::Sub,
            y.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        let yp = kb.bin(
            BinOp::Add,
            y.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        let zm = kb.bin(
            BinOp::Sub,
            z.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        let zp = kb.bin(
            BinOp::Add,
            z.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );

        let center = Self::emit_index(&mut kb, d, x.into(), y.into(), z.into());
        let i_xm = Self::emit_index(&mut kb, d, xm.into(), y.into(), z.into());
        let i_xp = Self::emit_index(&mut kb, d, xp.into(), y.into(), z.into());
        let i_ym = Self::emit_index(&mut kb, d, x.into(), ym.into(), z.into());
        let i_yp = Self::emit_index(&mut kb, d, x.into(), yp.into(), z.into());
        let i_zm = Self::emit_index(&mut kb, d, x.into(), y.into(), zm.into());
        let i_zp = Self::emit_index(&mut kb, d, x.into(), y.into(), zp.into());

        let vc = kb.load(e, inp, center.into());
        let acc = kb.mov(Operand::ImmF(0.0), VType::scalar(e));
        for idx in [i_xm, i_xp, i_ym, i_yp, i_zm, i_zp] {
            let v = kb.load(e, inp, idx.into());
            kb.bin_into(acc, BinOp::Add, acc.into(), v.into());
        }
        let res = kb.mad(
            vc.into(),
            Operand::ImmF(C0),
            Operand::ImmF(0.0),
            VType::scalar(e),
        );
        let res2 = kb.mad(acc.into(), Operand::ImmF(C1), res.into(), VType::scalar(e));
        kb.store(out, center.into(), res2.into());
        kb.finish()
    }

    /// Optimized kernel: each item computes `opt_z_per_thread` points of a
    /// z-column, carrying the (z-1, z, z+1) center values in registers —
    /// the §V-A "data reuse" optimization. The z-plane loads drop from 3
    /// per output to 1 per output, and the thread count shrinks by the
    /// same factor.
    pub fn opt_kernel(&self, prec: Precision) -> Program {
        let e = prec.elem();
        let d = self.dim as i64;
        let zs = self.opt_z_per_thread as i64;
        let mut kb = KernelBuilder::new("stencil3d_opt");
        kb.hints(Hints {
            inline: true,
            const_args: true,
        });
        let inp = kb.arg_global(e, Access::ReadOnly, true);
        let out = kb.arg_global(e, Access::WriteOnly, true);
        let gx = kb.query_global_id(0);
        let gy = kb.query_global_id(1);
        let gz = kb.query_global_id(2);
        let x = kb.bin(
            BinOp::Add,
            gx.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        let y = kb.bin(
            BinOp::Add,
            gy.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        let z0 = kb.bin(
            BinOp::Mul,
            gz.into(),
            Operand::ImmI(zs),
            VType::scalar(Scalar::U32),
        );
        let z0p1 = kb.bin(
            BinOp::Add,
            z0.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        let xm = kb.bin(
            BinOp::Sub,
            x.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        let xp = kb.bin(
            BinOp::Add,
            x.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        let ym = kb.bin(
            BinOp::Sub,
            y.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        let yp = kb.bin(
            BinOp::Add,
            y.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );

        // Rolling registers: below = in[x,y,z-1], mid = in[x,y,z].
        let z0m1 = kb.bin(
            BinOp::Sub,
            z0p1.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        let i_below = Self::emit_index(&mut kb, d, x.into(), y.into(), z0m1.into());
        let below = kb.load(e, inp, i_below.into());
        let i_mid = Self::emit_index(&mut kb, d, x.into(), y.into(), z0p1.into());
        let mid = kb.load(e, inp, i_mid.into());

        kb.for_loop(
            Operand::ImmI(0),
            Operand::ImmI(zs),
            Operand::ImmI(1),
            |kb, k| {
                let z = {
                    kb.bin(
                        BinOp::Add,
                        z0p1.into(),
                        k.into(),
                        VType::scalar(Scalar::U32),
                    )
                };
                let zp = kb.bin(
                    BinOp::Add,
                    z.into(),
                    Operand::ImmI(1),
                    VType::scalar(Scalar::U32),
                );
                let i_above = Self::emit_index(kb, d, x.into(), y.into(), zp.into());
                let above = kb.load(e, inp, i_above.into());
                // In-plane neighbours (not reusable across z).
                let acc = kb.mov(Operand::ImmF(0.0), VType::scalar(e));
                for (xx, yy) in [(xm, y), (xp, y), (x, ym), (x, yp)] {
                    let i = Self::emit_index(kb, d, xx.into(), yy.into(), z.into());
                    let v = kb.load(e, inp, i.into());
                    kb.bin_into(acc, BinOp::Add, acc.into(), v.into());
                }
                kb.bin_into(acc, BinOp::Add, acc.into(), below.into());
                kb.bin_into(acc, BinOp::Add, acc.into(), above.into());
                let res = kb.mad(
                    mid.into(),
                    Operand::ImmF(C0),
                    Operand::ImmF(0.0),
                    VType::scalar(e),
                );
                let res2 = kb.mad(acc.into(), Operand::ImmF(C1), res.into(), VType::scalar(e));
                let i_out = Self::emit_index(kb, d, x.into(), y.into(), z.into());
                kb.store(out, i_out.into(), res2.into());
                // Roll the column registers.
                kb.mov_into(below, mid.into());
                kb.mov_into(mid, above.into());
            },
        );
        kb.finish()
    }

    fn volume(&self) -> usize {
        self.dim * self.dim * self.dim
    }
}

impl Benchmark for Stencil3d {
    fn name(&self) -> &'static str {
        "3dstc"
    }

    fn description(&self) -> &'static str {
        "7-point 3-D stencil; regular strided accesses, register data reuse"
    }

    fn run(&self, variant: Variant, prec: Precision) -> Result<RunOutcome, RunSkip> {
        let reference = self.reference(prec);
        let n = self.interior();
        let bufs = vec![
            prec.buffer(&self.input()),
            kernel_ir::BufferData::zeroed(prec.elem(), self.volume()),
        ];
        // Validate only interior points (border stays zero on both sides).
        let check = |out: &kernel_ir::BufferData| validate(out, &reference, prec);
        match variant {
            Variant::Serial | Variant::OpenMp => {
                let mut pool = MemoryPool::new();
                let ids: Vec<ArgBinding> = bufs
                    .into_iter()
                    .map(|d| ArgBinding::Global(pool.add(d)))
                    .collect();
                let cores = if variant == Variant::Serial { 1 } else { 2 };
                let (t, act, pool, tel) = run_cpu_kernel(
                    &self.kernel(prec),
                    &ids,
                    pool,
                    NDRange::d3([n, n, n], [n, 1, 1]),
                    cores,
                );
                let (ok, err) = check(pool.get(1));
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: None,
                    telemetry: tel,
                })
            }
            Variant::OpenCl => {
                let (mut ctx, ids) = gpu_context(bufs);
                let k = ctx
                    .build_kernel(self.kernel(prec))
                    .map_err(|e| RunSkip::CompilerBug(e.to_string()))?;
                let args: Vec<KernelArg> = ids.iter().map(|&b| KernelArg::Buf(b)).collect();
                let (t, act) = launch(&mut ctx, &k, [n, n, n], None, &args)
                    .map_err(|e| RunSkip::LaunchFailure(e.to_string()))?;
                let tel = collect_gpu_telemetry(&mut ctx);
                let (ok, err) = check(ctx.buffer_data(ids[1]));
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: Some("driver-chosen local size (1-D strips)".into()),
                    telemetry: tel,
                })
            }
            Variant::OpenClOpt => {
                let (mut ctx, ids) = gpu_context(bufs);
                let k = ctx
                    .build_kernel(self.opt_kernel(prec))
                    .map_err(|e| RunSkip::CompilerBug(e.to_string()))?;
                let args: Vec<KernelArg> = ids.iter().map(|&b| KernelArg::Buf(b)).collect();
                let zt = n / self.opt_z_per_thread;
                // Tuned 2-D tile: 16×8 spatial tile per group.
                let (t, act) = launch(&mut ctx, &k, [n, n, zt], Some([16, 8, 1]), &args)
                    .map_err(|e| RunSkip::LaunchFailure(e.to_string()))?;
                let tel = collect_gpu_telemetry(&mut ctx);
                let (ok, err) = check(ctx.buffer_data(ids[1]));
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: Some(format!(
                        "z-column register reuse x{}, tile 16x8",
                        self.opt_z_per_thread
                    )),
                    telemetry: tel,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_validate() {
        let b = Stencil3d::test_size();
        for prec in Precision::ALL {
            for v in Variant::ALL {
                let r = b.run(v, prec).unwrap();
                assert!(
                    r.validated,
                    "{} {} err {:.3e}",
                    v.label(),
                    prec.label(),
                    r.max_rel_err
                );
            }
        }
    }

    #[test]
    fn opt_loads_fewer_bytes() {
        // The rolling-register column reuses z-plane loads: per output, the
        // naive kernel loads 7 values, the optimized ~5.
        let b = Stencil3d::test_size();
        let naive = b.run(Variant::OpenCl, Precision::F32).unwrap();
        let opt = b.run(Variant::OpenClOpt, Precision::F32).unwrap();
        assert!(opt.time_s < naive.time_s, "reuse should win");
    }

    #[test]
    fn interior_divisible_by_tiles() {
        let b = Stencil3d::default();
        let n = b.dim - 2;
        assert_eq!(n % 16, 0);
        assert_eq!(n % 8, 0);
        assert_eq!(n % b.opt_z_per_thread, 0);
    }
}
