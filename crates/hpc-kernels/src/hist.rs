//! **hist** — histogram with configurable bucket count (§IV-A).
//!
//! Counts value occurrences with hardware atomics. The naive GPU port
//! fires one global `atomic_inc` per element; with the (realistically
//! skewed) input distribution the hot buckets serialize in the L2 atomic
//! unit and one-element work-items pay full thread overhead — the paper
//! measures it *below* the serial CPU version. The optimized version uses
//! the classic local-privatization pattern the paper describes: a per-
//! work-group histogram in local memory (cheap local atomics), a barrier,
//! and a merge stage of global atomic adds, with each work-item consuming
//! K elements.

use crate::common::{
    collect_gpu_telemetry, gpu_context, launch, run_cpu_kernel, Benchmark, Precision, RunOutcome,
    RunSkip, Variant,
};
use kernel_ir::prelude::*;
use kernel_ir::Access;
use ocl_runtime::KernelArg;

/// Histogram parameters.
pub struct Hist {
    pub n: usize,
    pub buckets: usize,
    /// Elements consumed per work-item in the optimized kernel.
    pub opt_items_per_thread: usize,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            n: 1 << 20,
            buckets: 256,
            opt_items_per_thread: 16,
        }
    }
}

impl Hist {
    pub fn test_size() -> Self {
        Hist {
            n: 1 << 12,
            buckets: 64,
            opt_items_per_thread: 8,
        }
    }

    /// Skewed input: a triangular-ish distribution so some buckets are hot
    /// (real histograms are never uniform — and the hot buckets are what
    /// serializes the naive kernel).
    pub fn input(&self) -> Vec<u32> {
        let u = crate::common::prng_uniform(17, self.n);
        let b = self.buckets as f64;
        u.iter().map(|&x| ((x * x) * b) as u32).collect()
    }

    pub fn reference(&self) -> Vec<u32> {
        let mut h = vec![0u32; self.buckets];
        for v in self.input() {
            h[v as usize] += 1;
        }
        h
    }

    /// Scalar kernel: one element per item, global atomic increment.
    /// The CPU versions run the same code; on the OpenMP build the atomics
    /// are what keep two threads correct, matching a pragma-omp-atomic
    /// implementation.
    pub fn kernel(&self, _prec: Precision) -> Program {
        let mut kb = KernelBuilder::new("hist");
        let data = kb.arg_global(Scalar::U32, Access::ReadOnly, true);
        let hist = kb.arg_global(Scalar::U32, Access::ReadWrite, false);
        let gid = kb.query_global_id(0);
        let v = kb.load(Scalar::U32, data, gid.into());
        kb.atomic(AtomicOp::Inc, hist, v.into(), Operand::ImmI(0));
        kb.finish()
    }

    /// Optimized kernel: local privatization + two-phase merge.
    ///
    /// The merge phase assigns one bucket per work-item of the group, so
    /// the bucket count must not exceed the launch work-group size (256 on
    /// the T604) — enforced here rather than producing silently-partial
    /// histograms.
    pub fn opt_kernel(&self, _prec: Precision) -> Program {
        assert!(
            self.buckets <= 256,
            "opt histogram merges one bucket per work-item: buckets ({}) exceed the maximum work-group size (256)",
            self.buckets
        );
        let k = self.opt_items_per_thread as i64;
        let mut kb = KernelBuilder::new("hist_opt");
        kb.hints(Hints {
            inline: true,
            const_args: true,
        });
        let data = kb.arg_global(Scalar::U32, Access::ReadOnly, true);
        let hist = kb.arg_global(Scalar::U32, Access::ReadWrite, false);
        let local_hist = kb.arg_local(Scalar::U32);
        // Phase 1: each item accumulates K elements into the local histogram.
        let gid = kb.query_global_id(0);
        let base = kb.bin(
            BinOp::Mul,
            gid.into(),
            Operand::ImmI(k),
            VType::scalar(Scalar::U32),
        );
        kb.for_loop(
            Operand::ImmI(0),
            Operand::ImmI(k),
            Operand::ImmI(1),
            |kb, i| {
                let idx = kb.bin(
                    BinOp::Add,
                    base.into(),
                    i.into(),
                    VType::scalar(Scalar::U32),
                );
                let v = kb.load(Scalar::U32, data, idx.into());
                kb.atomic(AtomicOp::Inc, local_hist, v.into(), Operand::ImmI(0));
            },
        );
        kb.barrier();
        // Phase 2: the first `buckets` items of the group merge local →
        // global with one atomic add each.
        let lid = kb.query_local_id(0);
        let in_range = kb.bin(
            BinOp::Lt,
            lid.into(),
            Operand::ImmI(self.buckets as i64),
            VType::scalar(Scalar::U32),
        );
        kb.if_then(in_range.into(), |kb| {
            let cnt = kb.load(Scalar::U32, local_hist, lid.into());
            let nz = kb.bin(
                BinOp::Gt,
                cnt.into(),
                Operand::ImmI(0),
                VType::scalar(Scalar::U32),
            );
            kb.if_then(nz.into(), |kb| {
                kb.atomic(AtomicOp::Add, hist, lid.into(), cnt.into());
            });
        });
        kb.finish()
    }

    fn check(&self, got: &kernel_ir::BufferData) -> (bool, f64) {
        let reference = self.reference();
        let got = got.as_u32();
        let ok = got == reference.as_slice();
        let err = if ok { 0.0 } else { 1.0 };
        (ok, err)
    }
}

impl Benchmark for Hist {
    fn name(&self) -> &'static str {
        "hist"
    }

    fn description(&self) -> &'static str {
        "histogram via hardware atomics; privatization + reduction on the GPU"
    }

    fn run(&self, variant: Variant, prec: Precision) -> Result<RunOutcome, RunSkip> {
        let bufs = vec![
            kernel_ir::BufferData::U32(self.input()),
            kernel_ir::BufferData::zeroed(Scalar::U32, self.buckets),
        ];
        match variant {
            Variant::Serial | Variant::OpenMp => {
                let mut pool = MemoryPool::new();
                let ids: Vec<ArgBinding> = bufs
                    .into_iter()
                    .map(|d| ArgBinding::Global(pool.add(d)))
                    .collect();
                let cores = if variant == Variant::Serial { 1 } else { 2 };
                let (t, act, pool, tel) = run_cpu_kernel(
                    &self.kernel(prec),
                    &ids,
                    pool,
                    NDRange::d1(self.n, 256),
                    cores,
                );
                let (ok, err) = self.check(pool.get(1));
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: None,
                    telemetry: tel,
                })
            }
            Variant::OpenCl => {
                let (mut ctx, ids) = gpu_context(bufs);
                let k = ctx
                    .build_kernel(self.kernel(prec))
                    .map_err(|e| RunSkip::CompilerBug(e.to_string()))?;
                let args: Vec<KernelArg> = ids.iter().map(|&b| KernelArg::Buf(b)).collect();
                let (t, act) = launch(&mut ctx, &k, [self.n, 1, 1], None, &args)
                    .map_err(|e| RunSkip::LaunchFailure(e.to_string()))?;
                let tel = collect_gpu_telemetry(&mut ctx);
                let (ok, err) = self.check(ctx.buffer_data(ids[1]));
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: Some("global atomics per element".into()),
                    telemetry: tel,
                })
            }
            Variant::OpenClOpt => {
                let (mut ctx, ids) = gpu_context(bufs);
                let k = ctx
                    .build_kernel(self.opt_kernel(prec))
                    .map_err(|e| RunSkip::CompilerBug(e.to_string()))?;
                let wg = 256.min(self.buckets.max(64));
                let threads = self.n / self.opt_items_per_thread;
                let args = vec![
                    KernelArg::Buf(ids[0]),
                    KernelArg::Buf(ids[1]),
                    KernelArg::Local(self.buckets),
                ];
                let (t, act) = launch(&mut ctx, &k, [threads, 1, 1], Some([wg, 1, 1]), &args)
                    .map_err(|e| RunSkip::LaunchFailure(e.to_string()))?;
                let tel = collect_gpu_telemetry(&mut ctx);
                let (ok, err) = self.check(ctx.buffer_data(ids[1]));
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: Some(format!(
                        "local privatization, {} elems/item, wg {wg}",
                        self.opt_items_per_thread
                    )),
                    telemetry: tel,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_count_exactly() {
        let b = Hist::test_size();
        for v in Variant::ALL {
            let r = b.run(v, Precision::F32).unwrap();
            assert!(r.validated, "{} produced a wrong histogram", v.label());
        }
    }

    #[test]
    fn input_is_skewed() {
        let b = Hist::test_size();
        let h = b.reference();
        let max = *h.iter().max().unwrap() as f64;
        let mean = h.iter().sum::<u32>() as f64 / h.len() as f64;
        assert!(
            max > 2.0 * mean,
            "hot buckets expected (max {max}, mean {mean:.1})"
        );
        assert_eq!(h.iter().sum::<u32>() as usize, b.n);
    }

    #[test]
    fn privatization_beats_global_atomics() {
        let b = Hist::default();
        let naive = b.run(Variant::OpenCl, Precision::F32).unwrap();
        let opt = b.run(Variant::OpenClOpt, Precision::F32).unwrap();
        assert!(
            opt.time_s < naive.time_s / 1.5,
            "privatized hist should clearly win (naive {:.3e}, opt {:.3e})",
            naive.time_s,
            opt.time_s
        );
    }

    #[test]
    #[should_panic(expected = "exceed the maximum work-group size")]
    fn opt_kernel_rejects_too_many_buckets() {
        let b = Hist {
            n: 1 << 12,
            buckets: 512,
            opt_items_per_thread: 8,
        };
        let _ = b.opt_kernel(Precision::F32);
    }

    #[test]
    fn precision_is_irrelevant_to_hist() {
        // Integer benchmark: both "precisions" produce identical results
        // and near-identical times (the paper still reports both bars).
        let b = Hist::test_size();
        let r32 = b.run(Variant::OpenCl, Precision::F32).unwrap();
        let r64 = b.run(Variant::OpenCl, Precision::F64).unwrap();
        assert!(r32.validated && r64.validated);
        assert!((r32.time_s / r64.time_s - 1.0).abs() < 0.05);
    }
}
