//! **dmmm** — dense matrix–matrix multiplication (§IV-A).
//!
//! `C = A·B` with square row-major matrices. The naive port gives every
//! work-item one output element and walks a column of B with stride-N
//! scalar loads; the optimized version has each item produce a row segment
//! of `width` adjacent C elements (`vload` on B rows, scalar-splat on A),
//! with the k-loop unrolled — the paper's biggest winner (25.5× single,
//! 30× double).

use crate::common::{
    collect_gpu_telemetry, gpu_context, launch, run_cpu_kernel, validate, Benchmark, Precision,
    RunOutcome, RunSkip, Variant,
};
use kernel_ir::prelude::*;
use kernel_ir::Access;
use mali_hpc::{unroll, wg_tiles_global};
use ocl_runtime::KernelArg;

/// Matrix dimension (N×N). Must be divisible by 64.
pub struct Dmmm {
    pub n: usize,
    /// k-loop unroll factor for the optimized kernel.
    pub opt_unroll: u32,
    /// Output elements per work-item in the optimized kernel.
    pub opt_width: u8,
}

impl Default for Dmmm {
    fn default() -> Self {
        Dmmm {
            n: 160,
            opt_unroll: 2,
            opt_width: 4,
        }
    }
}

impl Dmmm {
    pub fn test_size() -> Self {
        Dmmm {
            n: 32,
            opt_unroll: 2,
            opt_width: 4,
        }
    }

    pub fn inputs(&self) -> (Vec<f64>, Vec<f64>) {
        let a = crate::common::prng_uniform(53, self.n * self.n);
        let b = crate::common::prng_uniform(59, self.n * self.n);
        (a, b)
    }

    pub fn reference(&self, prec: Precision) -> Vec<f64> {
        let (a, b) = self.inputs();
        let n = self.n;
        let mut c = vec![0.0; n * n];
        match prec {
            Precision::F64 => {
                for i in 0..n {
                    for j in 0..n {
                        let mut acc = 0.0;
                        for k in 0..n {
                            acc = a[i * n + k].mul_add(b[k * n + j], acc);
                        }
                        c[i * n + j] = acc;
                    }
                }
            }
            Precision::F32 => {
                let af: Vec<f32> = a.iter().map(|&x| x as f32).collect();
                let bf: Vec<f32> = b.iter().map(|&x| x as f32).collect();
                for i in 0..n {
                    for j in 0..n {
                        let mut acc = 0f32;
                        for k in 0..n {
                            acc = af[i * n + k].mul_add(bf[k * n + j], acc);
                        }
                        c[i * n + j] = acc as f64;
                    }
                }
            }
        }
        c
    }

    /// Naive kernel: `C[row,col]` per item; B walked down a column.
    pub fn kernel(&self, prec: Precision) -> Program {
        let e = prec.elem();
        let n = self.n as i64;
        let mut kb = KernelBuilder::new("dmmm");
        let a = kb.arg_global(e, Access::ReadOnly, true);
        let b = kb.arg_global(e, Access::ReadOnly, true);
        let c = kb.arg_global(e, Access::WriteOnly, true);
        let col = kb.query_global_id(0);
        let row = kb.query_global_id(1);
        let arow = kb.bin(
            BinOp::Mul,
            row.into(),
            Operand::ImmI(n),
            VType::scalar(Scalar::U32),
        );
        let acc = kb.mov(Operand::ImmF(0.0), VType::scalar(e));
        kb.for_loop(
            Operand::ImmI(0),
            Operand::ImmI(n),
            Operand::ImmI(1),
            |kb, k| {
                let ai = kb.bin(
                    BinOp::Add,
                    arow.into(),
                    k.into(),
                    VType::scalar(Scalar::U32),
                );
                let av = kb.load(e, a, ai.into());
                let brow = kb.bin(
                    BinOp::Mul,
                    k.into(),
                    Operand::ImmI(n),
                    VType::scalar(Scalar::U32),
                );
                let bi = kb.bin(
                    BinOp::Add,
                    brow.into(),
                    col.into(),
                    VType::scalar(Scalar::U32),
                );
                let bv = kb.load(e, b, bi.into());
                kb.mad_into(acc, av.into(), bv.into(), acc.into());
            },
        );
        let ci = kb.bin(
            BinOp::Add,
            arow.into(),
            col.into(),
            VType::scalar(Scalar::U32),
        );
        kb.store(c, ci.into(), acc.into());
        kb.finish()
    }

    /// Optimized kernel before unrolling: `width` adjacent C elements per
    /// item, `vload` of a B-row segment, A element splat by broadcast.
    pub fn opt_kernel_base(&self, prec: Precision, width: u8) -> Program {
        let e = prec.elem();
        let n = self.n as i64;
        let mut kb = KernelBuilder::new(format!("dmmm_opt_v{width}"));
        kb.hints(Hints {
            inline: true,
            const_args: true,
        });
        let a = kb.arg_global(e, Access::ReadOnly, true);
        let b = kb.arg_global(e, Access::ReadOnly, true);
        let c = kb.arg_global(e, Access::WriteOnly, true);
        let colv = kb.query_global_id(0);
        let row = kb.query_global_id(1);
        let col0 = kb.bin(
            BinOp::Mul,
            colv.into(),
            Operand::ImmI(width as i64),
            VType::scalar(Scalar::U32),
        );
        let arow = kb.bin(
            BinOp::Mul,
            row.into(),
            Operand::ImmI(n),
            VType::scalar(Scalar::U32),
        );
        let acc = kb.mov(Operand::ImmF(0.0), VType::new(e, width));
        kb.for_loop(
            Operand::ImmI(0),
            Operand::ImmI(n),
            Operand::ImmI(1),
            |kb, k| {
                let ai = kb.bin(
                    BinOp::Add,
                    arow.into(),
                    k.into(),
                    VType::scalar(Scalar::U32),
                );
                let av = kb.load(e, a, ai.into()); // scalar; broadcasts in the mad
                let brow = kb.bin(
                    BinOp::Mul,
                    k.into(),
                    Operand::ImmI(n),
                    VType::scalar(Scalar::U32),
                );
                let bi = kb.bin(
                    BinOp::Add,
                    brow.into(),
                    col0.into(),
                    VType::scalar(Scalar::U32),
                );
                let bv = kb.vload(e, width, b, bi.into());
                kb.mad_into(acc, bv.into(), av.into(), acc.into());
            },
        );
        let ci = kb.bin(
            BinOp::Add,
            arow.into(),
            col0.into(),
            VType::scalar(Scalar::U32),
        );
        kb.vstore(c, ci.into(), acc.into());
        kb.finish()
    }

    /// The full §III-optimized kernel: vectorized + unrolled.
    pub fn opt_kernel(&self, prec: Precision, width: u8) -> Program {
        let base = self.opt_kernel_base(prec, width);
        unroll(&base, self.opt_unroll).expect("n divisible by unroll factor")
    }
}

impl Benchmark for Dmmm {
    fn name(&self) -> &'static str {
        "dmmm"
    }

    fn description(&self) -> &'static str {
        "dense matrix-matrix multiply; data reuse + vectorization"
    }

    fn run(&self, variant: Variant, prec: Precision) -> Result<RunOutcome, RunSkip> {
        let e = prec.elem();
        let reference = self.reference(prec);
        let (a, b) = self.inputs();
        let bufs = vec![
            prec.buffer(&a),
            prec.buffer(&b),
            kernel_ir::BufferData::zeroed(e, self.n * self.n),
        ];
        let n = self.n;
        match variant {
            Variant::Serial | Variant::OpenMp => {
                let mut pool = MemoryPool::new();
                let ids: Vec<ArgBinding> = bufs
                    .into_iter()
                    .map(|d| ArgBinding::Global(pool.add(d)))
                    .collect();
                let cores = if variant == Variant::Serial { 1 } else { 2 };
                let (t, act, pool, tel) = run_cpu_kernel(
                    &self.kernel(prec),
                    &ids,
                    pool,
                    NDRange::d2(n, n, n.min(32), 1),
                    cores,
                );
                let (ok, err) = validate(pool.get(2), &reference, prec);
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: None,
                    telemetry: tel,
                })
            }
            Variant::OpenCl => {
                let (mut ctx, ids) = gpu_context(bufs);
                let k = ctx
                    .build_kernel(self.kernel(prec))
                    .map_err(|e| RunSkip::CompilerBug(e.to_string()))?;
                let args: Vec<KernelArg> = ids.iter().map(|&b| KernelArg::Buf(b)).collect();
                let (t, act) = launch(&mut ctx, &k, [n, n, 1], None, &args)
                    .map_err(|e| RunSkip::LaunchFailure(e.to_string()))?;
                let tel = collect_gpu_telemetry(&mut ctx);
                let (ok, err) = validate(ctx.buffer_data(ids[2]), &reference, prec);
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: Some("one C element per item".into()),
                    telemetry: tel,
                })
            }
            Variant::OpenClOpt => {
                let (mut ctx, ids) = gpu_context(bufs);
                let args: Vec<KernelArg> = ids.iter().map(|&b| KernelArg::Buf(b)).collect();
                let mut note = String::new();
                let mut result = None;
                'widths: for &width in &[self.opt_width, 2] {
                    let k = ctx
                        .build_kernel(self.opt_kernel(prec, width))
                        .map_err(|e| RunSkip::CompilerBug(e.to_string()))?;
                    for &wg in &[[16usize, 8, 1], [16, 4, 1], [8, 4, 1]] {
                        if !wg_tiles_global([n / width as usize, n, 1], wg) {
                            continue;
                        }
                        match launch(&mut ctx, &k, [n / width as usize, n, 1], Some(wg), &args) {
                            Ok((t, act)) => {
                                note = format!(
                                    "vload{width} row segment, unroll x{}, wg {}x{}",
                                    self.opt_unroll, wg[0], wg[1]
                                );
                                result = Some((t, act));
                                break 'widths;
                            }
                            Err(ocl_runtime::ClError::OutOfResources { .. }) => continue,
                            Err(e) => return Err(RunSkip::LaunchFailure(e.to_string())),
                        }
                    }
                }
                let (t, act) = result
                    .ok_or_else(|| RunSkip::LaunchFailure("no width/wg combination fits".into()))?;
                let tel = collect_gpu_telemetry(&mut ctx);
                let (ok, err) = validate(ctx.buffer_data(ids[2]), &reference, prec);
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: Some(note),
                    telemetry: tel,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_validate() {
        let b = Dmmm::test_size();
        for prec in Precision::ALL {
            for v in Variant::ALL {
                let r = b.run(v, prec).unwrap();
                assert!(
                    r.validated,
                    "{} {} err {:.3e}",
                    v.label(),
                    prec.label(),
                    r.max_rel_err
                );
            }
        }
    }

    #[test]
    fn opt_is_the_biggest_winner() {
        let b = Dmmm::default();
        let serial = b.run(Variant::Serial, Precision::F32).unwrap();
        let naive = b.run(Variant::OpenCl, Precision::F32).unwrap();
        let opt = b.run(Variant::OpenClOpt, Precision::F32).unwrap();
        let s_naive = serial.time_s / naive.time_s;
        let s_opt = serial.time_s / opt.time_s;
        assert!(
            s_opt > 2.0 * s_naive,
            "opt {s_opt:.1}x vs naive {s_naive:.1}x"
        );
        assert!(
            s_opt > 8.0,
            "dmmm opt should be a large win, got {s_opt:.1}x"
        );
    }

    #[test]
    fn b_matrix_column_walk_is_strided() {
        // The naive kernel's per-item B accesses jump by N elements; the
        // optimized kernel's vloads are contiguous. Check via event counts.
        let b = Dmmm::test_size();
        let p_naive = b.kernel(Precision::F32);
        let p_opt = b.opt_kernel_base(Precision::F32, 4);
        p_naive.validate().unwrap();
        p_opt.validate().unwrap();
        let run = |p: &Program, items0: usize| {
            let (aa, bb) = b.inputs();
            let mut pool = MemoryPool::new();
            let a_ = pool.add(Precision::F32.buffer(&aa));
            let b_ = pool.add(Precision::F32.buffer(&bb));
            let c_ = pool.add(kernel_ir::BufferData::zeroed(Scalar::F32, b.n * b.n));
            let mut t = CountingTracer::default();
            run_ndrange(
                p,
                &[
                    ArgBinding::Global(a_),
                    ArgBinding::Global(b_),
                    ArgBinding::Global(c_),
                ],
                &mut pool,
                NDRange::d2(items0, b.n, 8, 1),
                &mut t,
            )
            .unwrap();
            t
        };
        let t_naive = run(&p_naive, b.n);
        let t_opt = run(&p_opt, b.n / 4);
        assert!(t_opt.contiguous > 0);
        assert!(
            t_opt.loads < t_naive.loads / 2,
            "vectorized dmmm should issue far fewer loads"
        );
    }
}
