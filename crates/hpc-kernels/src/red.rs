//! **red** — reduction to a scalar (§IV-A).
//!
//! Two-stage parallel sum, as the paper describes: stage 1 reduces each
//! work-group to one partial (local-memory tree with barriers), stage 2
//! reduces the partials. The optimized version pre-accumulates K elements
//! per work-item with `vload4` vector loads and a horizontal add before
//! entering the tree — vectorization + work-group tuning, the two wins the
//! paper attributes to red's OpenCL-Opt version.

use crate::common::{
    chain_telemetry, collect_gpu_telemetry, gpu_context, launch, run_cpu_kernel, Benchmark,
    Precision, RunOutcome, RunSkip, Variant,
};
use kernel_ir::prelude::*;
use kernel_ir::Access;
use ocl_runtime::KernelArg;

/// Reduction parameters.
pub struct Red {
    pub n: usize,
    /// Stage-1 work-group size (tree width).
    pub wg: usize,
    /// Stage-1 work-groups in the naive port: the straightforward choice
    /// of "lots of small chunks".
    pub naive_groups: usize,
    /// Stage-1 work-groups after tuning (§III-A): far fewer, so each item
    /// amortizes its dispatch over a long vector-accumulated chunk.
    pub opt_groups: usize,
}

impl Default for Red {
    fn default() -> Self {
        Red {
            n: 1 << 20,
            wg: 128,
            naive_groups: 512,
            opt_groups: 64,
        }
    }
}

impl Red {
    pub fn test_size() -> Self {
        Red {
            n: 1 << 12,
            wg: 32,
            naive_groups: 16,
            opt_groups: 4,
        }
    }

    fn threads(&self, opt: bool) -> usize {
        self.wg
            * if opt {
                self.opt_groups
            } else {
                self.naive_groups
            }
    }

    pub fn input(&self) -> Vec<f64> {
        crate::common::prng_uniform(23, self.n)
    }

    fn reference(&self) -> f64 {
        self.input().iter().sum()
    }

    /// Emit a local-memory tree reduction over `wg` slots (values already
    /// stored, caller must have issued the barrier). Leaves the total in
    /// `local[0]`.
    fn emit_tree(kb: &mut KernelBuilder, local: ArgIdx, elem: Scalar, wg: usize) {
        let mut s = wg / 2;
        while s >= 1 {
            let lid = kb.query_local_id(0);
            let active = kb.bin(
                BinOp::Lt,
                lid.into(),
                Operand::ImmI(s as i64),
                VType::scalar(Scalar::U32),
            );
            kb.if_then(active.into(), |kb| {
                let other = kb.bin(
                    BinOp::Add,
                    lid.into(),
                    Operand::ImmI(s as i64),
                    VType::scalar(Scalar::U32),
                );
                let v1 = kb.load(elem, local, lid.into());
                let v2 = kb.load(elem, local, other.into());
                let sum = kb.bin(BinOp::Add, v1.into(), v2.into(), VType::scalar(elem));
                kb.store(local, lid.into(), sum.into());
            });
            kb.barrier();
            s /= 2;
        }
    }

    /// Stage-1 kernel, naive: fixed thread count, each item accumulates a
    /// contiguous chunk with *scalar* loads, then a local tree folds the
    /// work-group.
    pub fn stage1(&self, prec: Precision) -> Program {
        let e = prec.elem();
        let chunk = (self.n / self.threads(false)) as i64;
        let mut kb = KernelBuilder::new("red_stage1");
        let data = kb.arg_global(e, Access::ReadOnly, true);
        let partial = kb.arg_global(e, Access::WriteOnly, true);
        let local = kb.arg_local(e);
        let gid = kb.query_global_id(0);
        let lid = kb.query_local_id(0);
        let base = kb.bin(
            BinOp::Mul,
            gid.into(),
            Operand::ImmI(chunk),
            VType::scalar(Scalar::U32),
        );
        let v = kb.mov(Operand::ImmF(0.0), VType::scalar(e));
        kb.for_loop(
            Operand::ImmI(0),
            Operand::ImmI(chunk),
            Operand::ImmI(1),
            |kb, i| {
                let idx = kb.bin(
                    BinOp::Add,
                    base.into(),
                    i.into(),
                    VType::scalar(Scalar::U32),
                );
                let x = kb.load(e, data, idx.into());
                kb.bin_into(v, BinOp::Add, v.into(), x.into());
            },
        );
        kb.store(local, lid.into(), v.into());
        kb.barrier();
        Self::emit_tree(&mut kb, local, e, self.wg);
        let lid2 = kb.query_local_id(0);
        let is0 = kb.bin(
            BinOp::Eq,
            lid2.into(),
            Operand::ImmI(0),
            VType::scalar(Scalar::U32),
        );
        kb.if_then(is0.into(), |kb| {
            let grp = kb.query_group_id(0);
            let total = kb.load(e, local, Operand::ImmI(0));
            kb.store(partial, grp.into(), total.into());
        });
        kb.finish()
    }

    /// Stage-1 kernel, optimized: the same shape with `vload4` vector
    /// pre-accumulation and a tuned chunk per item.
    pub fn stage1_opt(&self, prec: Precision) -> Program {
        let e = prec.elem();
        let k = self.n / self.threads(true);
        assert!(k.is_multiple_of(4), "pre-accumulation runs on vload4");
        let mut kb = KernelBuilder::new("red_stage1_opt");
        kb.hints(Hints {
            inline: true,
            const_args: true,
        });
        let data = kb.arg_global(e, Access::ReadOnly, true);
        let partial = kb.arg_global(e, Access::WriteOnly, true);
        let local = kb.arg_local(e);
        let gid = kb.query_global_id(0);
        let lid = kb.query_local_id(0);
        let base = kb.bin(
            BinOp::Mul,
            gid.into(),
            Operand::ImmI(k as i64),
            VType::scalar(Scalar::U32),
        );
        let vacc = kb.mov(Operand::ImmF(0.0), VType::new(e, 4));
        kb.for_loop(
            Operand::ImmI(0),
            Operand::ImmI(k as i64),
            Operand::ImmI(4),
            |kb, i| {
                let off = kb.bin(
                    BinOp::Add,
                    base.into(),
                    i.into(),
                    VType::scalar(Scalar::U32),
                );
                let v = kb.vload(e, 4, data, off.into());
                kb.bin_into(vacc, BinOp::Add, vacc.into(), v.into());
            },
        );
        let acc = kb.horiz(HorizOp::Add, vacc);
        kb.store(local, lid.into(), acc.into());
        kb.barrier();
        Self::emit_tree(&mut kb, local, e, self.wg);
        let lid2 = kb.query_local_id(0);
        let is0 = kb.bin(
            BinOp::Eq,
            lid2.into(),
            Operand::ImmI(0),
            VType::scalar(Scalar::U32),
        );
        kb.if_then(is0.into(), |kb| {
            let grp = kb.query_group_id(0);
            let total = kb.load(e, local, Operand::ImmI(0));
            kb.store(partial, grp.into(), total.into());
        });
        kb.finish()
    }

    /// Stage-2 kernel: one work-item serially folds all partials (the
    /// "almost sequential execution" endpoint the paper calls out).
    pub fn stage2(&self, prec: Precision, partials: usize) -> Program {
        let e = prec.elem();
        let mut kb = KernelBuilder::new("red_stage2");
        let partial = kb.arg_global(e, Access::ReadOnly, true);
        let out = kb.arg_global(e, Access::WriteOnly, true);
        let acc = kb.mov(Operand::ImmF(0.0), VType::scalar(e));
        kb.for_loop(
            Operand::ImmI(0),
            Operand::ImmI(partials as i64),
            Operand::ImmI(1),
            |kb, i| {
                let v = kb.load(e, partial, i.into());
                kb.bin_into(acc, BinOp::Add, acc.into(), v.into());
            },
        );
        kb.store(out, Operand::ImmI(0), acc.into());
        kb.finish()
    }

    /// CPU kernel: each item sums a contiguous chunk (serial = the plain
    /// loop; OpenMP = per-thread partial sums), then stage 2 folds chunks.
    pub fn cpu_stage1(&self, prec: Precision, chunks: usize) -> Program {
        let e = prec.elem();
        let chunk = (self.n / chunks) as i64;
        let mut kb = KernelBuilder::new("red_cpu");
        let data = kb.arg_global(e, Access::ReadOnly, true);
        let partial = kb.arg_global(e, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let base = kb.bin(
            BinOp::Mul,
            gid.into(),
            Operand::ImmI(chunk),
            VType::scalar(Scalar::U32),
        );
        let acc = kb.mov(Operand::ImmF(0.0), VType::scalar(e));
        kb.for_loop(
            Operand::ImmI(0),
            Operand::ImmI(chunk),
            Operand::ImmI(1),
            |kb, i| {
                let idx = kb.bin(
                    BinOp::Add,
                    base.into(),
                    i.into(),
                    VType::scalar(Scalar::U32),
                );
                let v = kb.load(e, data, idx.into());
                kb.bin_into(acc, BinOp::Add, acc.into(), v.into());
            },
        );
        kb.store(partial, gid.into(), acc.into());
        kb.finish()
    }

    fn check(&self, out: &kernel_ir::BufferData, prec: Precision) -> (bool, f64) {
        let reference = self.reference();
        let got = out.elem_f64(0);
        let err = (got - reference).abs() / reference.abs().max(1e-12);
        (err <= prec.tol(), err)
    }
}

impl Benchmark for Red {
    fn name(&self) -> &'static str {
        "red"
    }

    fn description(&self) -> &'static str {
        "two-stage sum reduction; parallel-to-sequential adaptation"
    }

    fn run(&self, variant: Variant, prec: Precision) -> Result<RunOutcome, RunSkip> {
        let e = prec.elem();
        let input = prec.buffer(&self.input());
        match variant {
            Variant::Serial | Variant::OpenMp => {
                let chunks = 64;
                let mut pool = MemoryPool::new();
                let data = pool.add(input);
                let partial = pool.add(kernel_ir::BufferData::zeroed(e, chunks));
                let out = pool.add(kernel_ir::BufferData::zeroed(e, 1));
                let cores = if variant == Variant::Serial { 1 } else { 2 };
                let (t1, a1, pool, tel1) = run_cpu_kernel(
                    &self.cpu_stage1(prec, chunks),
                    &[ArgBinding::Global(data), ArgBinding::Global(partial)],
                    pool,
                    NDRange::d1(chunks, 1),
                    cores,
                );
                let (t2, a2, pool, tel2) = run_cpu_kernel(
                    &self.stage2(prec, chunks),
                    &[ArgBinding::Global(partial), ArgBinding::Global(out)],
                    pool,
                    NDRange::d1(1, 1),
                    1,
                );
                let (ok, err) = self.check(pool.get(out), prec);
                Ok(RunOutcome {
                    time_s: t1 + t2,
                    activity: a1.concat(&a2),
                    validated: ok,
                    max_rel_err: err,
                    note: None,
                    telemetry: chain_telemetry(tel1, &tel2),
                })
            }
            Variant::OpenCl | Variant::OpenClOpt => {
                let opt = variant == Variant::OpenClOpt;
                let threads = self.threads(opt);
                let groups = if opt {
                    self.opt_groups
                } else {
                    self.naive_groups
                };
                let (mut ctx, ids) = gpu_context(vec![
                    input,
                    kernel_ir::BufferData::zeroed(e, groups),
                    kernel_ir::BufferData::zeroed(e, 1),
                ]);
                let s1 = if opt {
                    self.stage1_opt(prec)
                } else {
                    self.stage1(prec)
                };
                let k1 = ctx
                    .build_kernel(s1)
                    .map_err(|e| RunSkip::CompilerBug(e.to_string()))?;
                let args1 = vec![
                    KernelArg::Buf(ids[0]),
                    KernelArg::Buf(ids[1]),
                    KernelArg::Local(self.wg),
                ];
                // The tree layout requires the built wg size: both versions
                // pass it explicitly (the naive version mimics the paper's
                // original two-stage code, which also fixes the tree width).
                let (t1, a1) = launch(
                    &mut ctx,
                    &k1,
                    [threads, 1, 1],
                    Some([self.wg, 1, 1]),
                    &args1,
                )
                .map_err(|e| RunSkip::LaunchFailure(e.to_string()))?;
                let k2 = ctx
                    .build_kernel(self.stage2(prec, groups))
                    .map_err(|e| RunSkip::CompilerBug(e.to_string()))?;
                let (t2, a2) = launch(
                    &mut ctx,
                    &k2,
                    [1, 1, 1],
                    Some([1, 1, 1]),
                    &[KernelArg::Buf(ids[1]), KernelArg::Buf(ids[2])],
                )
                .map_err(|e| RunSkip::LaunchFailure(e.to_string()))?;
                let tel = collect_gpu_telemetry(&mut ctx);
                let (ok, err) = self.check(ctx.buffer_data(ids[2]), prec);
                Ok(RunOutcome {
                    time_s: t1 + t2,
                    activity: a1.concat(&a2),
                    validated: ok,
                    max_rel_err: err,
                    note: Some(if opt {
                        "vload4 pre-accumulation".into()
                    } else {
                        "scalar accumulation".into()
                    }),
                    telemetry: tel,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_sum_correctly() {
        let b = Red::test_size();
        for prec in Precision::ALL {
            for v in Variant::ALL {
                let r = b.run(v, prec).unwrap();
                assert!(
                    r.validated,
                    "{} {} err {:.3e}",
                    v.label(),
                    prec.label(),
                    r.max_rel_err
                );
            }
        }
    }

    #[test]
    fn opt_beats_naive() {
        let b = Red::default();
        let naive = b.run(Variant::OpenCl, Precision::F32).unwrap();
        let opt = b.run(Variant::OpenClOpt, Precision::F32).unwrap();
        assert!(
            opt.time_s < naive.time_s,
            "pre-accumulated reduction should win (naive {:.3e}, opt {:.3e})",
            naive.time_s,
            opt.time_s
        );
    }

    #[test]
    fn tree_width_matches_wg() {
        // Each barrier step halves the active range; with wg=32 the stage-1
        // kernel has log2(32)=5 tree barriers + the fill barrier.
        let b = Red::test_size();
        let p = b.stage1(Precision::F32);
        assert_eq!(p.barrier_count(), 6);
        p.validate().unwrap();
    }
}
