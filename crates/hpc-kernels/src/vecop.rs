//! **vecop** — element-wise vector addition (§IV-A).
//!
//! `c[i] = a[i] + b[i]`. Memory-bound by construction; it stresses the
//! memory path and is the cleanest demonstrator of the §III-B
//! vectorization guideline: the naive one-element-per-work-item GPU port
//! is *slower* than the serial CPU loop (per-thread overhead swamps the
//! tiny kernel), while the vectorized version streams with `vload8` and
//! wins.

use crate::common::{
    collect_gpu_telemetry, gpu_context, launch, run_cpu_kernel, validate, Benchmark, Precision,
    RunOutcome, RunSkip, Variant,
};
use kernel_ir::prelude::*;
use kernel_ir::Access;
use mali_hpc::vectorize;
use ocl_runtime::KernelArg;

/// Benchmark parameters.
pub struct Vecop {
    /// Element count (must be divisible by 256·16).
    pub n: usize,
}

impl Default for Vecop {
    fn default() -> Self {
        Vecop { n: 1 << 20 }
    }
}

impl Vecop {
    /// Small instance for unit tests.
    pub fn test_size() -> Self {
        Vecop { n: 1 << 12 }
    }

    fn inputs(&self) -> (Vec<f64>, Vec<f64>) {
        let a = crate::common::prng_uniform(11, self.n);
        let b = crate::common::prng_uniform(13, self.n);
        (a, b)
    }

    fn reference(&self, prec: Precision) -> Vec<f64> {
        let (a, b) = self.inputs();
        match prec {
            // The reference models the arithmetic at the precision under
            // test, so validation checks the *kernel*, not float rounding.
            Precision::F32 => a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| (x as f32 + y as f32) as f64)
                .collect(),
            Precision::F64 => a.iter().zip(&b).map(|(&x, &y)| x + y).collect(),
        }
    }

    /// The scalar kernel all four versions share (§IV-B: "similar code
    /// base for all CPU and GPU implementations").
    pub fn kernel(&self, prec: Precision) -> Program {
        let e = prec.elem();
        let mut kb = KernelBuilder::new("vecop");
        let a = kb.arg_global(e, Access::ReadOnly, true);
        let b = kb.arg_global(e, Access::ReadOnly, true);
        let c = kb.arg_global(e, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let va = kb.load(e, a, gid.into());
        let vb = kb.load(e, b, gid.into());
        let s = kb.bin(BinOp::Add, va.into(), vb.into(), VType::scalar(e));
        kb.store(c, gid.into(), s.into());
        kb.finish()
    }

    /// The §III-B optimized kernel: auto-vectorized by the `mali-hpc` pass.
    /// Width 8 and work-group 128 are the tuner's picks (see the
    /// `tuner_agrees_with_hardcoded_params` test and the ablation bench).
    pub fn opt_kernel(&self, prec: Precision) -> (Program, u8) {
        let width = 8;
        assert!(
            self.n.is_multiple_of(width as usize * 128),
            "vecop Opt runs width {width} x work-group 128: n ({}) must be a multiple of {}",
            self.n,
            width as usize * 128
        );
        let v = vectorize(&self.kernel(prec), width).expect("vecop is vectorizable");
        (v.program, width)
    }
}

impl Benchmark for Vecop {
    fn name(&self) -> &'static str {
        "vecop"
    }

    fn description(&self) -> &'static str {
        "element-wise vector addition; stresses memory bandwidth"
    }

    fn run(&self, variant: Variant, prec: Precision) -> Result<RunOutcome, RunSkip> {
        let (a, b) = self.inputs();
        let reference = self.reference(prec);
        let bufs = vec![
            prec.buffer(&a),
            prec.buffer(&b),
            kernel_ir::BufferData::zeroed(prec.elem(), self.n),
        ];
        match variant {
            Variant::Serial | Variant::OpenMp => {
                let mut pool = MemoryPool::new();
                let ids: Vec<ArgBinding> = bufs
                    .into_iter()
                    .map(|d| ArgBinding::Global(pool.add(d)))
                    .collect();
                let cores = if variant == Variant::Serial { 1 } else { 2 };
                let (t, act, pool, tel) = run_cpu_kernel(
                    &self.kernel(prec),
                    &ids,
                    pool,
                    NDRange::d1(self.n, 256),
                    cores,
                );
                let (ok, err) = validate(pool.get(2), &reference, prec);
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: None,
                    telemetry: tel,
                })
            }
            Variant::OpenCl => {
                let (mut ctx, ids) = gpu_context(bufs);
                let k = ctx
                    .build_kernel(self.kernel(prec))
                    .map_err(|e| RunSkip::CompilerBug(e.to_string()))?;
                let args: Vec<KernelArg> = ids.iter().map(|&b| KernelArg::Buf(b)).collect();
                let (t, act) = launch(&mut ctx, &k, [self.n, 1, 1], None, &args)
                    .map_err(|e| RunSkip::LaunchFailure(e.to_string()))?;
                let tel = collect_gpu_telemetry(&mut ctx);
                let (ok, err) = validate(ctx.buffer_data(ids[2]), &reference, prec);
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: Some("driver-chosen local size".into()),
                    telemetry: tel,
                })
            }
            Variant::OpenClOpt => {
                let (mut ctx, ids) = gpu_context(bufs);
                let (prog, width) = self.opt_kernel(prec);
                let k = ctx
                    .build_kernel(prog)
                    .map_err(|e| RunSkip::CompilerBug(e.to_string()))?;
                let args: Vec<KernelArg> = ids.iter().map(|&b| KernelArg::Buf(b)).collect();
                let (t, act) = launch(
                    &mut ctx,
                    &k,
                    [self.n / width as usize, 1, 1],
                    Some([128, 1, 1]),
                    &args,
                )
                .map_err(|e| RunSkip::LaunchFailure(e.to_string()))?;
                let tel = collect_gpu_telemetry(&mut ctx);
                let (ok, err) = validate(ctx.buffer_data(ids[2]), &reference, prec);
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: Some(format!("vectorized x{width}, wg 128")),
                    telemetry: tel,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_validate_both_precisions() {
        let b = Vecop::test_size();
        for prec in Precision::ALL {
            for v in Variant::ALL {
                let r = b.run(v, prec).unwrap();
                assert!(
                    r.validated,
                    "{} {} failed validation (err {:.3e})",
                    v.label(),
                    prec.label(),
                    r.max_rel_err
                );
                assert!(r.time_s > 0.0);
            }
        }
    }

    #[test]
    fn opt_beats_naive_gpu() {
        let b = Vecop::default();
        let naive = b.run(Variant::OpenCl, Precision::F32).unwrap();
        let opt = b.run(Variant::OpenClOpt, Precision::F32).unwrap();
        assert!(
            opt.time_s < naive.time_s,
            "opt ({:.3e}) must beat naive ({:.3e})",
            opt.time_s,
            naive.time_s
        );
    }

    #[test]
    fn tuner_agrees_with_hardcoded_params() {
        // The opt kernel hardcodes width 8 / wg 128; check a sweep on a
        // smaller instance ranks them at or near the top.
        let b = Vecop { n: 1 << 16 };
        let result = mali_hpc::sweep(&[2u8, 4, 8, 16], |&w| {
            let v = vectorize(&b.kernel(Precision::F32), w).ok()?;
            let (a, bb) = b.inputs();
            let (mut ctx, ids) = gpu_context(vec![
                Precision::F32.buffer(&a),
                Precision::F32.buffer(&bb),
                kernel_ir::BufferData::zeroed(Scalar::F32, b.n),
            ]);
            let k = ctx.build_kernel(v.program).ok()?;
            let args: Vec<KernelArg> = ids.iter().map(|&x| KernelArg::Buf(x)).collect();
            launch(
                &mut ctx,
                &k,
                [b.n / w as usize, 1, 1],
                Some([128, 1, 1]),
                &args,
            )
            .ok()
            .map(|(t, _)| t)
        });
        let best = *result.best().expect("some width must work");
        let cost8 = result
            .entries
            .iter()
            .find(|e| e.param == 8)
            .unwrap()
            .cost
            .unwrap();
        let best_cost = result.best_cost().unwrap();
        assert!(
            best == 8 || cost8 <= best_cost * 1.15,
            "width 8 should be within 15% of the best (best {best}, w8 {cost8:.3e} vs {best_cost:.3e})"
        );
    }
}
