//! **spmv** — sparse matrix–vector multiplication (§IV-A).
//!
//! `y = A·x` with A in CSR form. The row-length distribution is skewed
//! (power-law-ish), making spmv "useful as a metric to measure performance
//! in cases of load imbalance". The indirect `x[col[j]]` gathers defeat
//! vectorization (the pass refuses with `NonGidIndexing`), so — exactly as
//! in the paper — the optimized version only retunes the work-group size
//! and adds compiler hints, and spmv stays the weakest GPU benchmark
//! (1.25× in Fig. 2(a)).

use crate::common::{
    collect_gpu_telemetry, gpu_context, launch, run_cpu_kernel, validate, Benchmark, Precision,
    RunOutcome, RunSkip, Variant,
};
use kernel_ir::prelude::*;
use kernel_ir::Access;
use ocl_runtime::KernelArg;

/// CSR workload parameters.
pub struct Spmv {
    pub rows: usize,
    /// Mean non-zeros per row (actual rows vary from 1 to ~8× this).
    pub nnz_per_row: usize,
}

impl Default for Spmv {
    fn default() -> Self {
        Spmv {
            rows: 16 * 1024,
            nnz_per_row: 16,
        }
    }
}

/// CSR arrays in f64 (values) + u32 (structure).
pub struct Csr {
    pub row_ptr: Vec<u32>,
    pub col: Vec<u32>,
    pub val: Vec<f64>,
    pub x: Vec<f64>,
}

impl Spmv {
    pub fn test_size() -> Self {
        Spmv {
            rows: 512,
            nnz_per_row: 8,
        }
    }

    /// Deterministic skewed CSR matrix: row r gets
    /// `1 + (r·φ mod 8)·nnz/4` entries, columns scattered by a hash.
    pub fn matrix(&self) -> Csr {
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col = Vec::new();
        let mut val = Vec::new();
        row_ptr.push(0u32);
        let uni = crate::common::prng_uniform(41, self.rows * self.nnz_per_row * 3);
        let mut u = uni.iter();
        for r in 0..self.rows {
            // Skewed length: most rows short, a heavy tail up to 8× mean.
            let h = (r as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40;
            let len = 1
                + (h as usize % (2 * self.nnz_per_row))
                + if h.is_multiple_of(16) {
                    6 * self.nnz_per_row
                } else {
                    0
                };
            for k in 0..len {
                let c = ((r * 7 + k * 131 + (h as usize & 0xffff)) * 2654435761) % self.rows;
                col.push(c as u32);
                val.push(*u.next().unwrap_or(&0.5) - 0.5);
            }
            row_ptr.push(col.len() as u32);
        }
        let x = crate::common::prng_uniform(43, self.rows);
        Csr {
            row_ptr,
            col,
            val,
            x,
        }
    }

    fn reference(&self, prec: Precision) -> Vec<f64> {
        let m = self.matrix();
        (0..self.rows)
            .map(|r| {
                let (s, e) = (m.row_ptr[r] as usize, m.row_ptr[r + 1] as usize);
                match prec {
                    Precision::F64 => (s..e).map(|j| m.val[j] * m.x[m.col[j] as usize]).sum(),
                    Precision::F32 => {
                        let mut acc = 0f32;
                        for j in s..e {
                            acc = (m.val[j] as f32).mul_add(m.x[m.col[j] as usize] as f32, acc);
                        }
                        acc as f64
                    }
                }
            })
            .collect()
    }

    /// CSR row-per-work-item kernel (shared by all versions).
    pub fn kernel(&self, prec: Precision, hints: Hints) -> Program {
        let e = prec.elem();
        let mut kb = KernelBuilder::new("spmv");
        kb.hints(hints);
        let row_ptr = kb.arg_global(Scalar::U32, Access::ReadOnly, true);
        let col = kb.arg_global(Scalar::U32, Access::ReadOnly, true);
        let val = kb.arg_global(e, Access::ReadOnly, true);
        let x = kb.arg_global(e, Access::ReadOnly, true);
        let y = kb.arg_global(e, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let start = kb.load(Scalar::U32, row_ptr, gid.into());
        let gid1 = kb.bin(
            BinOp::Add,
            gid.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        let end = kb.load(Scalar::U32, row_ptr, gid1.into());
        let acc = kb.mov(Operand::ImmF(0.0), VType::scalar(e));
        kb.for_loop(start.into(), end.into(), Operand::ImmI(1), |kb, j| {
            let c = kb.load(Scalar::U32, col, j.into());
            let v = kb.load(e, val, j.into());
            let xv = kb.load(e, x, c.into()); // the indirect gather
            kb.mad_into(acc, v.into(), xv.into(), acc.into());
        });
        kb.store(y, gid.into(), acc.into());
        kb.finish()
    }

    fn buffers(&self, prec: Precision) -> (Vec<kernel_ir::BufferData>, Csr) {
        let m = self.matrix();
        let bufs = vec![
            kernel_ir::BufferData::U32(m.row_ptr.clone()),
            kernel_ir::BufferData::U32(m.col.clone()),
            prec.buffer(&m.val),
            prec.buffer(&m.x),
            kernel_ir::BufferData::zeroed(prec.elem(), self.rows),
        ];
        (bufs, m)
    }
}

impl Benchmark for Spmv {
    fn name(&self) -> &'static str {
        "spmv"
    }

    fn description(&self) -> &'static str {
        "sparse matrix-vector multiply (CSR); measures load imbalance"
    }

    fn run(&self, variant: Variant, prec: Precision) -> Result<RunOutcome, RunSkip> {
        let reference = self.reference(prec);
        let (bufs, _m) = self.buffers(prec);
        match variant {
            Variant::Serial | Variant::OpenMp => {
                let mut pool = MemoryPool::new();
                let ids: Vec<ArgBinding> = bufs
                    .into_iter()
                    .map(|d| ArgBinding::Global(pool.add(d)))
                    .collect();
                let cores = if variant == Variant::Serial { 1 } else { 2 };
                let (t, act, pool, tel) = run_cpu_kernel(
                    &self.kernel(prec, Hints::default()),
                    &ids,
                    pool,
                    NDRange::d1(self.rows, 64),
                    cores,
                );
                let (ok, err) = validate(pool.get(4), &reference, prec);
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: None,
                    telemetry: tel,
                })
            }
            Variant::OpenCl | Variant::OpenClOpt => {
                let opt = variant == Variant::OpenClOpt;
                let hints = if opt {
                    Hints {
                        inline: true,
                        const_args: true,
                    }
                } else {
                    Hints::default()
                };
                let (mut ctx, ids) = gpu_context(bufs);
                let k = ctx
                    .build_kernel(self.kernel(prec, hints))
                    .map_err(|e| RunSkip::CompilerBug(e.to_string()))?;
                let args: Vec<KernelArg> = ids.iter().map(|&b| KernelArg::Buf(b)).collect();
                // Opt: tuned work-group size (64 — small groups even out the
                // skewed row lengths across cores); naive: driver pick.
                let local = if opt { Some([64, 1, 1]) } else { None };
                let (t, act) = launch(&mut ctx, &k, [self.rows, 1, 1], local, &args)
                    .map_err(|e| RunSkip::LaunchFailure(e.to_string()))?;
                let tel = collect_gpu_telemetry(&mut ctx);
                let (ok, err) = validate(ctx.buffer_data(ids[4]), &reference, prec);
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: Some(if opt {
                        "wg 64 + hints".into()
                    } else {
                        "driver-chosen local size".into()
                    }),
                    telemetry: tel,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mali_hpc::vectorize::{vectorize, VectorizeRefusal};

    #[test]
    fn all_variants_validate() {
        let b = Spmv::test_size();
        for prec in Precision::ALL {
            for v in Variant::ALL {
                let r = b.run(v, prec).unwrap();
                assert!(
                    r.validated,
                    "{} {} err {:.3e}",
                    v.label(),
                    prec.label(),
                    r.max_rel_err
                );
            }
        }
    }

    #[test]
    fn matrix_is_skewed() {
        let b = Spmv::test_size();
        let m = b.matrix();
        let lens: Vec<u32> = m.row_ptr.windows(2).map(|w| w[1] - w[0]).collect();
        let max = *lens.iter().max().unwrap();
        let mean = lens.iter().sum::<u32>() as f64 / lens.len() as f64;
        assert!(
            max as f64 > 3.0 * mean,
            "tail rows should dominate (max {max}, mean {mean:.1})"
        );
        assert_eq!(*m.row_ptr.last().unwrap() as usize, m.col.len());
    }

    #[test]
    fn vectorizer_refuses_spmv() {
        // The paper's observation, as a diagnostic: spmv's indirect access
        // defeats vectorization (it also contains a loop, which the pass
        // reports first).
        let b = Spmv::test_size();
        let err = vectorize(&b.kernel(Precision::F32, Hints::default()), 4).unwrap_err();
        assert!(matches!(
            err,
            VectorizeRefusal::HasLoop | VectorizeRefusal::NonGidIndexing
        ));
    }

    #[test]
    fn opt_improves_but_modestly() {
        let b = Spmv::default();
        let naive = b.run(Variant::OpenCl, Precision::F32).unwrap();
        let opt = b.run(Variant::OpenClOpt, Precision::F32).unwrap();
        assert!(
            opt.time_s <= naive.time_s * 1.02,
            "opt should not be slower"
        );
        assert!(
            opt.time_s > naive.time_s * 0.5,
            "spmv has no big optimization win (naive {:.3e}, opt {:.3e})",
            naive.time_s,
            opt.time_s
        );
    }
}
