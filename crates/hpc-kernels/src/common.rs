//! Shared benchmark infrastructure: precisions, variants, run outcomes,
//! device plumbing and validation helpers.

use cpu_sim::{CortexA15, CortexA15Config};
use kernel_ir::{ArgBinding, BufferData, MemoryPool, NDRange, Program, Scalar};
use mali_gpu::{MaliConfig, MaliT604};
use ocl_runtime::{ClError, CompiledKernel, Context, EventKind, KernelArg, MemFlags};
use powersim::Activity;
use telemetry::{CommandSpan, RunTelemetry};

/// Floating-point precision of a benchmark run (§V runs every benchmark in
/// both).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Precision {
    F32,
    F64,
}

impl Precision {
    pub fn elem(self) -> Scalar {
        match self {
            Precision::F32 => Scalar::F32,
            Precision::F64 => Scalar::F64,
        }
    }

    /// Relative-error tolerance for validation against the f64 reference.
    pub fn tol(self) -> f64 {
        match self {
            Precision::F32 => 2e-3,
            Precision::F64 => 1e-9,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Precision::F32 => "single",
            Precision::F64 => "double",
        }
    }

    pub const ALL: [Precision; 2] = [Precision::F32, Precision::F64];

    /// Build a typed buffer from f64 data.
    pub fn buffer(self, data: &[f64]) -> BufferData {
        match self {
            Precision::F32 => BufferData::F32(data.iter().map(|&x| x as f32).collect()),
            Precision::F64 => BufferData::F64(data.to_vec()),
        }
    }
}

/// The four benchmark versions of §IV-B.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Plain scalar code on one Cortex-A15.
    Serial,
    /// Threaded scalar code on two Cortex-A15 cores.
    OpenMp,
    /// Naive OpenCL port on the Mali-T604 (driver-chosen local size).
    OpenCl,
    /// OpenCL + the §III optimization techniques.
    OpenClOpt,
}

impl Variant {
    pub const ALL: [Variant; 4] = [
        Variant::Serial,
        Variant::OpenMp,
        Variant::OpenCl,
        Variant::OpenClOpt,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Variant::Serial => "Serial",
            Variant::OpenMp => "OpenMP",
            Variant::OpenCl => "OpenCL",
            Variant::OpenClOpt => "OpenCL Opt",
        }
    }

    pub fn on_gpu(self) -> bool {
        matches!(self, Variant::OpenCl | Variant::OpenClOpt)
    }
}

/// One measured benchmark run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Parallel-region time, seconds (kernel events only for GPU runs,
    /// matching §IV-D's exclusion of initialization).
    pub time_s: f64,
    /// Activity of the measured region for the power model.
    pub activity: Activity,
    /// Output matched the f64 reference within tolerance.
    pub validated: bool,
    /// Worst relative error observed.
    pub max_rel_err: f64,
    /// Free-form annotation (e.g. fallback decisions, tuned parameters).
    pub note: Option<String>,
    /// Counter snapshot + span timeline of the measured region.
    pub telemetry: RunTelemetry,
}

/// Why a variant could not produce a result (the paper's missing bars).
#[derive(Clone, Debug, PartialEq)]
pub enum RunSkip {
    /// `CL_BUILD_PROGRAM_FAILURE` — the amcd double-precision driver bug.
    CompilerBug(String),
    /// Launch failed and no fallback existed.
    LaunchFailure(String),
}

impl std::fmt::Display for RunSkip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunSkip::CompilerBug(s) => write!(f, "compiler bug: {s}"),
            RunSkip::LaunchFailure(s) => write!(f, "launch failure: {s}"),
        }
    }
}

/// Problem-size scaling so tests run the same code in seconds while the
/// harness uses paper-scale inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SizeClass {
    /// Small inputs for unit tests.
    Test,
    /// Full evaluation inputs.
    Full,
}

/// One of the nine benchmarks.
pub trait Benchmark: Sync {
    /// The paper's short name (spmv, vecop, …).
    fn name(&self) -> &'static str;

    /// One-line description from §IV-A.
    fn description(&self) -> &'static str;

    /// Execute one variant at one precision.
    fn run(&self, variant: Variant, prec: Precision) -> Result<RunOutcome, RunSkip>;
}

/// Shared device handles; construction is cheap, every run builds fresh
/// state so caches start cold like the paper's per-run measurements.
pub fn cpu() -> CortexA15 {
    CortexA15::new(CortexA15Config::default())
}

pub fn gpu() -> MaliT604 {
    MaliT604::new(MaliConfig::default())
}

/// Run a kernel on 1 or 2 CPU cores, returning (time, activity, pool,
/// telemetry).
pub fn run_cpu_kernel(
    program: &Program,
    bindings: &[ArgBinding],
    mut pool: MemoryPool,
    ndrange: NDRange,
    cores: u32,
) -> (f64, Activity, MemoryPool, RunTelemetry) {
    let dev = cpu();
    let report = dev
        .run(program, bindings, &mut pool, ndrange, cores)
        .expect("CPU launch failed — benchmark bug");
    let telemetry = RunTelemetry {
        counters: report.counters.clone(),
        commands: vec![CommandSpan {
            name: program.name.clone(),
            cat: "cpu",
            start_s: 0.0,
            end_s: report.time_s,
        }],
        core_spans: report.spans.clone(),
    };
    (report.time_s, report.activity, pool, telemetry)
}

/// Merge two run telemetries sequentially: the second run's spans are
/// shifted to start where the first ended (multi-phase CPU benchmarks).
pub fn chain_telemetry(first: RunTelemetry, second: &RunTelemetry) -> RunTelemetry {
    let mut out = first;
    let base = out.commands.iter().map(|c| c.end_s).fold(0.0, f64::max);
    out.counters = out.counters.merge(&second.counters);
    out.commands
        .extend(second.commands.iter().map(|c| CommandSpan {
            name: c.name.clone(),
            cat: c.cat,
            start_s: base + c.start_s,
            end_s: base + c.end_s,
        }));
    out.core_spans
        .extend(second.core_spans.iter().map(|s| telemetry::WorkSpan {
            core: s.core,
            group: s.group,
            start_s: base + s.start_s,
            end_s: base + s.end_s,
        }));
    out
}

/// Drain a GPU context's profiled events into run telemetry: queue
/// commands become [`CommandSpan`]s, kernel events contribute their
/// counter snapshots (merged) and per-core work-group spans.
pub fn collect_gpu_telemetry(ctx: &mut Context) -> RunTelemetry {
    let mut tel = RunTelemetry::default();
    let mut have_counters = false;
    for e in ctx.finish() {
        let (name, cat) = match &e.kind {
            EventKind::Kernel { name } => (name.clone(), "kernel"),
            EventKind::WriteBuffer { bytes } => (format!("write {bytes} B"), "write"),
            EventKind::ReadBuffer { bytes } => (format!("read {bytes} B"), "read"),
            EventKind::Map { bytes } => (format!("map {bytes} B"), "map"),
            EventKind::Unmap { bytes } => (format!("unmap {bytes} B"), "unmap"),
        };
        tel.commands.push(CommandSpan {
            name,
            cat,
            start_s: e.start_s,
            end_s: e.end_s,
        });
        if let Some(c) = &e.counters {
            tel.counters = if have_counters {
                tel.counters.merge(c)
            } else {
                c.clone()
            };
            have_counters = true;
        }
        tel.core_spans.extend(e.spans.iter().copied());
    }
    tel
}

/// Build a fresh GPU context with `buffers` pre-loaded via the recommended
/// `ALLOC_HOST_PTR` path (initialization is excluded from measurement, as
/// in §IV-D).
pub fn gpu_context(buffers: Vec<BufferData>) -> (Context, Vec<ocl_runtime::BufId>) {
    let mut ctx = Context::new(gpu());
    let ids = buffers
        .into_iter()
        .map(|b| ctx.create_buffer_init(b, MemFlags::AllocHostPtr))
        .collect();
    (ctx, ids)
}

/// Enqueue a kernel and return its (kernel-event) time and activity.
pub fn launch(
    ctx: &mut Context,
    kernel: &CompiledKernel,
    global: [usize; 3],
    local: Option<[usize; 3]>,
    args: &[KernelArg],
) -> Result<(f64, Activity), ClError> {
    let info = ctx.enqueue_nd_range(kernel, global, local, args)?;
    Ok((info.report.time_s, info.report.activity))
}

/// FNV-1a offset basis; the digest accumulator rests here between cells.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

std::thread_local! {
    static OUTPUT_DIGEST: std::cell::Cell<u64> = const { std::cell::Cell::new(FNV_OFFSET) };
}

fn digest_fold(word: u64) {
    OUTPUT_DIGEST.with(|d| {
        let mut h = d.get();
        for byte in word.to_le_bytes() {
            h = (h ^ byte as u64).wrapping_mul(FNV_PRIME);
        }
        d.set(h);
    });
}

/// Take the FNV-1a digest of every output element validated on this thread
/// since the last call, resetting the accumulator. The harness runner calls
/// this around each cell attempt; the optimizer's differential oracle compares
/// the value across pass pipelines and execution engines.
pub fn take_output_digest() -> u64 {
    OUTPUT_DIGEST.with(|d| d.replace(FNV_OFFSET))
}

/// Max relative error between a typed output buffer and the f64 reference.
///
/// Also folds the bit pattern of every output element into the thread-local
/// output digest (see [`take_output_digest`]) — every benchmark funnels its
/// result buffers through here, so the digest covers the full suite output
/// without per-kernel plumbing.
pub fn max_rel_err(out: &BufferData, reference: &[f64]) -> f64 {
    assert_eq!(out.len(), reference.len(), "validation length mismatch");
    digest_fold(out.len() as u64);
    let mut worst: f64 = 0.0;
    for (i, &r) in reference.iter().enumerate() {
        let got = out.elem_f64(i);
        digest_fold(got.to_bits());
        let denom = r.abs().max(1e-12);
        worst = worst.max((got - r).abs() / denom);
    }
    worst
}

/// Validation outcome helper.
pub fn validate(out: &BufferData, reference: &[f64], prec: Precision) -> (bool, f64) {
    let err = max_rel_err(out, reference);
    (err <= prec.tol(), err)
}

/// Deterministic pseudo-random f64s in [0,1) (xorshift64*; no external
/// state, reproducible across the suite).
pub fn prng_uniform(seed: u64, n: usize) -> Vec<f64> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..n)
        .map(|_| {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            let v = s.wrapping_mul(0x2545F4914F6CDD1D);
            (v >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_buffers() {
        let data = [1.5, 2.5];
        assert_eq!(Precision::F32.buffer(&data).elem(), Scalar::F32);
        assert_eq!(Precision::F64.buffer(&data).elem(), Scalar::F64);
        assert_eq!(Precision::F64.buffer(&data).as_f64(), &data);
    }

    #[test]
    fn rel_err_math() {
        let out = BufferData::F32(vec![1.0, 2.0]);
        let err = max_rel_err(&out, &[1.0, 2.002]);
        assert!((err - 0.001).abs() < 1e-4);
        let (ok32, _) = validate(&out, &[1.0, 2.002], Precision::F32);
        assert!(ok32);
        let (ok64, _) = validate(&out, &[1.0, 2.002], Precision::F64);
        assert!(!ok64);
    }

    #[test]
    fn prng_deterministic_and_uniform() {
        let a = prng_uniform(7, 1000);
        let b = prng_uniform(7, 1000);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean: f64 = a.iter().sum::<f64>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        assert_ne!(prng_uniform(8, 10), prng_uniform(7, 10));
    }

    #[test]
    fn output_digest_tracks_validated_bits() {
        let _ = take_output_digest(); // reset whatever earlier tests folded
        let out = BufferData::F32(vec![1.0, 2.0]);
        max_rel_err(&out, &[1.0, 2.0]);
        let d1 = take_output_digest();
        max_rel_err(&out, &[1.0, 2.002]); // different reference, same output bits
        let d2 = take_output_digest();
        assert_eq!(d1, d2, "digest depends only on the output buffer");
        max_rel_err(&BufferData::F32(vec![1.0, 2.5]), &[1.0, 2.5]);
        let d3 = take_output_digest();
        assert_ne!(d1, d3, "different output bits change the digest");
        assert_eq!(take_output_digest(), take_output_digest(), "take resets");
    }

    #[test]
    fn variant_labels() {
        assert_eq!(Variant::OpenClOpt.label(), "OpenCL Opt");
        assert!(Variant::OpenCl.on_gpu());
        assert!(!Variant::OpenMp.on_gpu());
    }
}
