//! **amcd** — atomic Monte-Carlo dynamics (§IV-A).
//!
//! Independent Markov-chain Monte-Carlo walkers: each work-item owns one
//! atom coordinate, proposes random displacements (32-bit LCG, implemented
//! *inside the kernel* with exact integer IR ops) and accepts/rejects with
//! the Metropolis rule `u < exp(-ΔE)`. Compute-bound with divergent
//! branches — which cost nothing on Mali (§III-B) — and with few
//! optimization hot-spots, so OpenCL-Opt only adds hints and a tuned
//! work-group size ("we did not find many hot spots … only slightly
//! faster", §V-A).
//!
//! The Metropolis `exp` sits inside data-dependent control flow; in double
//! precision this is the exact kernel shape that hits the emulated driver
//! bug, so the f64 GPU variants return [`RunSkip::CompilerBug`] — the
//! missing amcd bars of Fig. 2(b)/3(b)/4(b).

use crate::common::{
    collect_gpu_telemetry, gpu_context, launch, run_cpu_kernel, Benchmark, Precision, RunOutcome,
    RunSkip, Variant,
};
use kernel_ir::prelude::*;
use kernel_ir::Access;
use ocl_runtime::KernelArg;

/// MCMC parameters: `walkers` independent chains × `steps` Metropolis
/// steps in a harmonic potential `E(x) = x²`.
pub struct Amcd {
    pub walkers: usize,
    pub steps: usize,
}

impl Default for Amcd {
    fn default() -> Self {
        Amcd {
            walkers: 8192,
            steps: 192,
        }
    }
}

const LCG_A: u32 = 1664525;
const LCG_C: u32 = 1013904223;
/// Proposal step size.
const DELTA: f64 = 0.5;

impl Amcd {
    pub fn test_size() -> Self {
        Amcd {
            walkers: 256,
            steps: 32,
        }
    }

    /// Initial coordinates.
    pub fn init(&self) -> Vec<f64> {
        crate::common::prng_uniform(31, self.walkers)
            .iter()
            .map(|&x| x * 2.0 - 1.0)
            .collect()
    }

    /// Exact Rust replica of the kernel (same LCG, same float ops in the
    /// same order) — the validation reference.
    pub fn reference(&self, prec: Precision) -> Vec<f64> {
        self.init()
            .iter()
            .enumerate()
            .map(|(i, &x0)| {
                let mut seed: u32 = (i as u32).wrapping_mul(2654435761).wrapping_add(12345);
                let mut next_u = || {
                    seed = seed.wrapping_mul(LCG_A).wrapping_add(LCG_C);
                    (seed >> 8) as f64 / (1u32 << 24) as f64
                };
                match prec {
                    Precision::F32 => {
                        let mut x = x0 as f32;
                        for _ in 0..self.steps {
                            let dx = (next_u() as f32 - 0.5) * (2.0 * DELTA as f32);
                            let u = next_u() as f32;
                            let xn = x + dx;
                            let de = xn * xn - x * x;
                            if de < 0.0 || u < (-de).exp() {
                                x = xn;
                            }
                        }
                        x as f64
                    }
                    Precision::F64 => {
                        let mut x = x0;
                        for _ in 0..self.steps {
                            let dx = (next_u() - 0.5) * (2.0 * DELTA);
                            let u = next_u();
                            let xn = x + dx;
                            let de = xn * xn - x * x;
                            if de < 0.0 || u < (-de).exp() {
                                x = xn;
                            }
                        }
                        x
                    }
                }
            })
            .collect()
    }

    /// The kernel (shared by all versions; `hints` differ for Opt).
    pub fn kernel(&self, prec: Precision, hints: Hints) -> Program {
        let e = prec.elem();
        let mut kb = KernelBuilder::new("amcd");
        kb.hints(hints);
        let pos = kb.arg_global(e, Access::ReadWrite, true);
        let gid = kb.query_global_id(0);

        // seed = gid * 2654435761 + 12345  (u32 wrapping)
        let seed = kb.bin(
            BinOp::Mul,
            gid.into(),
            Operand::ImmI(2654435761),
            VType::scalar(Scalar::U32),
        );
        kb.bin_into(seed, BinOp::Add, seed.into(), Operand::ImmI(12345));

        let x = kb.load(e, pos, gid.into());
        let xv = kb.mov(x.into(), VType::scalar(e));

        kb.for_loop(
            Operand::ImmI(0),
            Operand::ImmI(self.steps as i64),
            Operand::ImmI(1),
            |kb, _| {
                // Two LCG draws → dx and u.
                let draw = |kb: &mut KernelBuilder, seed: Reg, e: Scalar| -> Reg {
                    kb.bin_into(seed, BinOp::Mul, seed.into(), Operand::ImmI(LCG_A as i64));
                    kb.bin_into(seed, BinOp::Add, seed.into(), Operand::ImmI(LCG_C as i64));
                    let hi = kb.bin(
                        BinOp::Shr,
                        seed.into(),
                        Operand::ImmI(8),
                        VType::scalar(Scalar::U32),
                    );
                    let f = kb.cast(hi.into(), VType::scalar(e));
                    kb.bin(
                        BinOp::Mul,
                        f.into(),
                        Operand::ImmF(1.0 / (1u32 << 24) as f64),
                        VType::scalar(e),
                    )
                };
                let u1 = draw(kb, seed, e);
                let u = draw(kb, seed, e);
                let half = kb.bin(BinOp::Sub, u1.into(), Operand::ImmF(0.5), VType::scalar(e));
                let dx = kb.bin(
                    BinOp::Mul,
                    half.into(),
                    Operand::ImmF(2.0 * DELTA),
                    VType::scalar(e),
                );
                let xn = kb.bin(BinOp::Add, xv.into(), dx.into(), VType::scalar(e));
                let xn2 = kb.bin(BinOp::Mul, xn.into(), xn.into(), VType::scalar(e));
                let x2 = kb.bin(BinOp::Mul, xv.into(), xv.into(), VType::scalar(e));
                let de = kb.bin(BinOp::Sub, xn2.into(), x2.into(), VType::scalar(e));
                let downhill = kb.bin(BinOp::Lt, de.into(), Operand::ImmF(0.0), VType::scalar(e));
                kb.if_then_else(
                    downhill.into(),
                    |kb| {
                        kb.mov_into(xv, xn.into());
                    },
                    |kb| {
                        // Metropolis: accept if u < exp(-dE). The f64 `exp`
                        // inside this branch is the driver-bug trigger.
                        let nde = kb.un(UnOp::Neg, de.into(), VType::scalar(e));
                        let p = kb.un(UnOp::Exp, nde.into(), VType::scalar(e));
                        let accept = kb.bin(BinOp::Lt, u.into(), p.into(), VType::scalar(e));
                        kb.if_then(accept.into(), |kb| {
                            kb.mov_into(xv, xn.into());
                        });
                    },
                );
            },
        );
        kb.store(pos, gid.into(), xv.into());
        kb.finish()
    }

    fn check(&self, out: &kernel_ir::BufferData, prec: Precision) -> (bool, f64) {
        let reference = self.reference(prec);
        // Chains are chaotic in principle, but the kernel replays the exact
        // same float ops as the reference, so results match tightly.
        crate::common::validate(out, &reference, prec)
    }
}

impl Benchmark for Amcd {
    fn name(&self) -> &'static str {
        "amcd"
    }

    fn description(&self) -> &'static str {
        "Metropolis Monte-Carlo chains; compute-bound, divergent branches"
    }

    fn run(&self, variant: Variant, prec: Precision) -> Result<RunOutcome, RunSkip> {
        let bufs = vec![prec.buffer(&self.init())];
        match variant {
            Variant::Serial | Variant::OpenMp => {
                let mut pool = MemoryPool::new();
                let ids: Vec<ArgBinding> = bufs
                    .into_iter()
                    .map(|d| ArgBinding::Global(pool.add(d)))
                    .collect();
                let cores = if variant == Variant::Serial { 1 } else { 2 };
                let (t, act, pool, tel) = run_cpu_kernel(
                    &self.kernel(prec, Hints::default()),
                    &ids,
                    pool,
                    NDRange::d1(self.walkers, 64),
                    cores,
                );
                let (ok, err) = self.check(pool.get(0), prec);
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: None,
                    telemetry: tel,
                })
            }
            Variant::OpenCl | Variant::OpenClOpt => {
                let opt = variant == Variant::OpenClOpt;
                let hints = if opt {
                    Hints {
                        inline: true,
                        const_args: true,
                    }
                } else {
                    Hints::default()
                };
                let (mut ctx, ids) = gpu_context(bufs);
                // In double precision the build fails — the paper's missing
                // amcd bars.
                let k = ctx
                    .build_kernel(self.kernel(prec, hints))
                    .map_err(|e| RunSkip::CompilerBug(e.to_string()))?;
                let args: Vec<KernelArg> = ids.iter().map(|&b| KernelArg::Buf(b)).collect();
                let local = if opt { Some([128, 1, 1]) } else { None };
                let (t, act) = launch(&mut ctx, &k, [self.walkers, 1, 1], local, &args)
                    .map_err(|e| RunSkip::LaunchFailure(e.to_string()))?;
                let tel = collect_gpu_telemetry(&mut ctx);
                let (ok, err) = self.check(ctx.buffer_data(ids[0]), prec);
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: Some(if opt {
                        "hints + wg 128".into()
                    } else {
                        "naive port".into()
                    }),
                    telemetry: tel,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_and_f32_gpu_validate() {
        let b = Amcd::test_size();
        for v in Variant::ALL {
            let r = b.run(v, Precision::F32).unwrap();
            assert!(r.validated, "{} err {:.3e}", v.label(), r.max_rel_err);
        }
        for v in [Variant::Serial, Variant::OpenMp] {
            let r = b.run(v, Precision::F64).unwrap();
            assert!(r.validated, "{} f64 err {:.3e}", v.label(), r.max_rel_err);
        }
    }

    #[test]
    fn f64_gpu_hits_compiler_bug() {
        // §V-A: "not presented due to a compiler issue that does not allow
        // the correct termination of the compilation phase".
        let b = Amcd::test_size();
        for v in [Variant::OpenCl, Variant::OpenClOpt] {
            match b.run(v, Precision::F64) {
                Err(RunSkip::CompilerBug(msg)) => {
                    assert!(msg.contains("CL_BUILD_PROGRAM_FAILURE"), "{msg}");
                }
                other => panic!("expected compiler bug, got {other:?}"),
            }
        }
    }

    #[test]
    fn chains_actually_move() {
        let b = Amcd::test_size();
        let init = b.init();
        let fin = b.reference(Precision::F64);
        let moved = init
            .iter()
            .zip(&fin)
            .filter(|(a, b)| (*a - *b).abs() > 1e-9)
            .count();
        assert!(
            moved > b.walkers / 2,
            "most chains should accept steps ({moved} moved)"
        );
        // Equilibrium of E = x² at the implied temperature contracts the
        // spread vs the uniform init.
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
        };
        assert!(var(&fin) > 0.0);
        let _ = var(&init);
    }

    #[test]
    fn opt_only_slightly_faster() {
        // §V-A: "the OpenCL Opt is only slightly faster".
        let b = Amcd::default();
        let naive = b.run(Variant::OpenCl, Precision::F32).unwrap();
        let opt = b.run(Variant::OpenClOpt, Precision::F32).unwrap();
        let gain = naive.time_s / opt.time_s;
        assert!(
            (1.0..1.35).contains(&gain),
            "amcd opt gain should be modest, got {gain:.2}"
        );
    }
}
