//! **2dcon** — 5×5 2-D convolution (§IV-A).
//!
//! Every §III technique applies here, which is why the paper's optimized
//! version reaches 24× in single precision: full tap unrolling
//! (straight-line 25-tap body), vectorization (each work-item produces
//! four adjacent output pixels from `vload4`s), work-group-size tuning,
//! and hints. In double precision the wide-vector variant's register
//! footprint exceeds the file at the tuned group size → the launch falls
//! back, reproducing the `CL_OUT_OF_RESOURCES` gap-shrink of §V-A.

use crate::common::{
    collect_gpu_telemetry, gpu_context, launch, run_cpu_kernel, validate, Benchmark, Precision,
    RunOutcome, RunSkip, Variant,
};
use kernel_ir::prelude::*;
use kernel_ir::Access;
use mali_hpc::{largest_dividing_pow2, local_divides_global};
use ocl_runtime::KernelArg;

/// Convolution parameters: an `n×n` image, 5×5 kernel, interior-only
/// output (borders stay zero). `n-4` must be divisible by 16.
pub struct Conv2d {
    pub n: usize,
}

impl Default for Conv2d {
    fn default() -> Self {
        Conv2d { n: 516 } // interior 512
    }
}

/// Separable-ish blur weights, normalized; indexed `[dy+2][dx+2]`.
const W1D: [f64; 5] = [0.0625, 0.25, 0.375, 0.25, 0.0625];

fn weight(dy: usize, dx: usize) -> f64 {
    W1D[dy] * W1D[dx]
}

impl Conv2d {
    pub fn test_size() -> Self {
        Conv2d { n: 36 } // interior 32
    }

    fn interior(&self) -> usize {
        self.n - 4
    }

    pub fn input(&self) -> Vec<f64> {
        crate::common::prng_uniform(47, self.n * self.n)
    }

    pub fn reference(&self, prec: Precision) -> Vec<f64> {
        let img = self.input();
        let n = self.n;
        let mut out = vec![0.0; n * n];
        for y in 2..n - 2 {
            for x in 2..n - 2 {
                match prec {
                    Precision::F64 => {
                        let mut acc = 0.0;
                        for dy in 0..5 {
                            for dx in 0..5 {
                                acc += weight(dy, dx) * img[(y + dy - 2) * n + (x + dx - 2)];
                            }
                        }
                        out[y * n + x] = acc;
                    }
                    Precision::F32 => {
                        let mut acc = 0f32;
                        for dy in 0..5 {
                            for dx in 0..5 {
                                acc = (weight(dy, dx) as f32)
                                    .mul_add(img[(y + dy - 2) * n + (x + dx - 2)] as f32, acc);
                            }
                        }
                        out[y * n + x] = acc as f64;
                    }
                }
            }
        }
        out
    }

    /// Naive kernel: one output pixel per item, nested 5×5 tap loops with
    /// scalar loads (the straightforward OpenCL port).
    pub fn kernel(&self, prec: Precision) -> Program {
        let e = prec.elem();
        let n = self.n as i64;
        let mut kb = KernelBuilder::new("conv2d");
        let img = kb.arg_global(e, Access::ReadOnly, true);
        let out = kb.arg_global(e, Access::WriteOnly, true);
        let weights = kb.arg_global(e, Access::ReadOnly, true);
        let gx = kb.query_global_id(0);
        let gy = kb.query_global_id(1);
        let x = kb.bin(
            BinOp::Add,
            gx.into(),
            Operand::ImmI(2),
            VType::scalar(Scalar::U32),
        );
        let y = kb.bin(
            BinOp::Add,
            gy.into(),
            Operand::ImmI(2),
            VType::scalar(Scalar::U32),
        );
        let acc = kb.mov(Operand::ImmF(0.0), VType::scalar(e));
        // Taps as an IR loop pair — the unoptimized code shape.
        kb.for_loop(
            Operand::ImmI(0),
            Operand::ImmI(5),
            Operand::ImmI(1),
            |kb, dy| {
                let ry = kb.bin(BinOp::Add, y.into(), dy.into(), VType::scalar(Scalar::U32));
                let ry2 = kb.bin(
                    BinOp::Sub,
                    ry.into(),
                    Operand::ImmI(2),
                    VType::scalar(Scalar::U32),
                );
                let row = kb.bin(
                    BinOp::Mul,
                    ry2.into(),
                    Operand::ImmI(n),
                    VType::scalar(Scalar::U32),
                );
                kb.for_loop(
                    Operand::ImmI(0),
                    Operand::ImmI(5),
                    Operand::ImmI(1),
                    |kb, dx| {
                        let rx =
                            kb.bin(BinOp::Add, x.into(), dx.into(), VType::scalar(Scalar::U32));
                        let rx2 = kb.bin(
                            BinOp::Sub,
                            rx.into(),
                            Operand::ImmI(2),
                            VType::scalar(Scalar::U32),
                        );
                        let idx = kb.bin(
                            BinOp::Add,
                            row.into(),
                            rx2.into(),
                            VType::scalar(Scalar::U32),
                        );
                        let v = kb.load(e, img, idx.into());
                        // The unoptimized kernel reads its weights from a
                        // 25-entry constant buffer (immediates only appear after
                        // the Opt version's constant propagation).
                        let widx = kb.bin(
                            BinOp::Mul,
                            dy.into(),
                            Operand::ImmI(5),
                            VType::scalar(Scalar::U32),
                        );
                        let widx2 = kb.bin(
                            BinOp::Add,
                            widx.into(),
                            dx.into(),
                            VType::scalar(Scalar::U32),
                        );
                        let wv = kb.load(e, weights, widx2.into());
                        kb.mad_into(acc, wv.into(), v.into(), acc.into());
                    },
                );
            },
        );
        let orow = kb.bin(
            BinOp::Mul,
            y.into(),
            Operand::ImmI(n),
            VType::scalar(Scalar::U32),
        );
        let oidx = kb.bin(
            BinOp::Add,
            orow.into(),
            x.into(),
            VType::scalar(Scalar::U32),
        );
        kb.store(out, oidx.into(), acc.into());
        kb.finish()
    }

    /// Optimized kernel: fully unrolled taps (no loop), `vloadW` row
    /// segments, each item computes `width` adjacent output pixels, weights
    /// as immediates (constant propagation).
    pub fn opt_kernel(&self, prec: Precision, width: u8) -> Program {
        let e = prec.elem();
        let n = self.n as i64;
        let mut kb = KernelBuilder::new(format!("conv2d_opt_v{width}"));
        kb.hints(Hints {
            inline: true,
            const_args: true,
        });
        let img = kb.arg_global(e, Access::ReadOnly, true);
        let out = kb.arg_global(e, Access::WriteOnly, true);
        let gx = kb.query_global_id(0);
        let gy = kb.query_global_id(1);
        // x0 = 2 + gx*width, y = 2 + gy
        let xw = kb.bin(
            BinOp::Mul,
            gx.into(),
            Operand::ImmI(width as i64),
            VType::scalar(Scalar::U32),
        );
        let x0 = kb.bin(
            BinOp::Add,
            xw.into(),
            Operand::ImmI(2),
            VType::scalar(Scalar::U32),
        );
        let y = kb.bin(
            BinOp::Add,
            gy.into(),
            Operand::ImmI(2),
            VType::scalar(Scalar::U32),
        );
        let acc = kb.mov(Operand::ImmF(0.0), VType::new(e, width));
        for dy in 0..5i64 {
            let ry = kb.bin(
                BinOp::Add,
                y.into(),
                Operand::ImmI(dy - 2),
                VType::scalar(Scalar::U32),
            );
            let row = kb.bin(
                BinOp::Mul,
                ry.into(),
                Operand::ImmI(n),
                VType::scalar(Scalar::U32),
            );
            let rowx = kb.bin(
                BinOp::Add,
                row.into(),
                x0.into(),
                VType::scalar(Scalar::U32),
            );
            for dx in 0..5i64 {
                let base = kb.bin(
                    BinOp::Add,
                    rowx.into(),
                    Operand::ImmI(dx - 2),
                    VType::scalar(Scalar::U32),
                );
                let v = kb.vload(e, width, img, base.into());
                kb.mad_into(
                    acc,
                    v.into(),
                    Operand::ImmF(weight(dy as usize, dx as usize)),
                    acc.into(),
                );
            }
        }
        let orow = kb.bin(
            BinOp::Mul,
            y.into(),
            Operand::ImmI(n),
            VType::scalar(Scalar::U32),
        );
        let oidx = kb.bin(
            BinOp::Add,
            orow.into(),
            x0.into(),
            VType::scalar(Scalar::U32),
        );
        kb.vstore(out, oidx.into(), acc.into());
        kb.finish()
    }

    fn weights_flat(&self) -> Vec<f64> {
        let mut w = Vec::with_capacity(25);
        for dy in 0..5 {
            for dx in 0..5 {
                w.push(weight(dy, dx));
            }
        }
        w
    }
}

impl Benchmark for Conv2d {
    fn name(&self) -> &'static str {
        "2dcon"
    }

    fn description(&self) -> &'static str {
        "5x5 2-D convolution; vectorization + unrolling showcase"
    }

    fn run(&self, variant: Variant, prec: Precision) -> Result<RunOutcome, RunSkip> {
        let e = prec.elem();
        let reference = self.reference(prec);
        let m = self.interior();
        match variant {
            Variant::Serial | Variant::OpenMp => {
                let mut pool = MemoryPool::new();
                let img = pool.add(prec.buffer(&self.input()));
                let out = pool.add(kernel_ir::BufferData::zeroed(e, self.n * self.n));
                let w = pool.add(prec.buffer(&self.weights_flat()));
                let bindings = [
                    ArgBinding::Global(img),
                    ArgBinding::Global(out),
                    ArgBinding::Global(w),
                ];
                let cores = if variant == Variant::Serial { 1 } else { 2 };
                let local_x = if local_divides_global(m, 64) { 64 } else { 16 };
                let (t, act, pool, tel) = run_cpu_kernel(
                    &self.kernel(prec),
                    &bindings,
                    pool,
                    NDRange::d2(m, m, local_x.min(m), 1),
                    cores,
                );
                let (ok, err) = validate(pool.get(out), &reference, prec);
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: None,
                    telemetry: tel,
                })
            }
            Variant::OpenCl => {
                let (mut ctx, ids) = gpu_context(vec![
                    prec.buffer(&self.input()),
                    kernel_ir::BufferData::zeroed(e, self.n * self.n),
                    prec.buffer(&self.weights_flat()),
                ]);
                let k = ctx
                    .build_kernel(self.kernel(prec))
                    .map_err(|e| RunSkip::CompilerBug(e.to_string()))?;
                let args: Vec<KernelArg> = ids.iter().map(|&b| KernelArg::Buf(b)).collect();
                let (t, act) = launch(&mut ctx, &k, [m, m, 1], None, &args)
                    .map_err(|e| RunSkip::LaunchFailure(e.to_string()))?;
                let tel = collect_gpu_telemetry(&mut ctx);
                let (ok, err) = validate(ctx.buffer_data(ids[1]), &reference, prec);
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: Some("scalar taps, driver local size".into()),
                    telemetry: tel,
                })
            }
            Variant::OpenClOpt => {
                let (mut ctx, ids) = gpu_context(vec![
                    prec.buffer(&self.input()),
                    kernel_ir::BufferData::zeroed(e, self.n * self.n),
                ]);
                let args = vec![KernelArg::Buf(ids[0]), KernelArg::Buf(ids[1])];
                // Vector-size tuning with CL_OUT_OF_RESOURCES fallback:
                // try the widest profitable vector first at the tuned group
                // size, then narrow — the paper's f64 experience.
                let mut note = String::new();
                let mut result = None;
                // Largest tile {16,8,4,2,1}^2 dividing the global sizes,
                // capped at 256 work-items — the tuned choice per width.
                let tuned_wg = |gx: usize, gy: usize| -> [usize; 3] {
                    let wx = largest_dividing_pow2(gx, 16);
                    let mut wy = largest_dividing_pow2(gy, 16);
                    while wx * wy > 256 {
                        wy /= 2;
                    }
                    [wx, wy.max(1), 1]
                };
                // Vector widths in preference order; a CL_OUT_OF_RESOURCES
                // launch narrows the width — the paper's double-precision
                // fallback.
                for width in [8u8, 4, 2] {
                    if !local_divides_global(m, width as usize) {
                        continue;
                    }
                    let wg = tuned_wg(m / width as usize, m);
                    let k = ctx
                        .build_kernel(self.opt_kernel(prec, width))
                        .map_err(|e| RunSkip::CompilerBug(e.to_string()))?;
                    match launch(&mut ctx, &k, [m / width as usize, m, 1], Some(wg), &args) {
                        Ok((t, act)) => {
                            note.push_str(&format!(
                                "vload{width}, unrolled taps, wg {}x{}",
                                wg[0], wg[1]
                            ));
                            result = Some((t, act));
                            break;
                        }
                        Err(ocl_runtime::ClError::OutOfResources { .. }) => {
                            note.push_str(&format!(
                                "vload{width}@{}x{} CL_OUT_OF_RESOURCES; ",
                                wg[0], wg[1]
                            ));
                            continue;
                        }
                        Err(e) => return Err(RunSkip::LaunchFailure(e.to_string())),
                    }
                }
                let (t, act) = result
                    .ok_or_else(|| RunSkip::LaunchFailure("no width/wg combination fits".into()))?;
                let tel = collect_gpu_telemetry(&mut ctx);
                let (ok, err) = validate(ctx.buffer_data(ids[1]), &reference, prec);
                Ok(RunOutcome {
                    time_s: t,
                    activity: act,
                    validated: ok,
                    max_rel_err: err,
                    note: Some(note),
                    telemetry: tel,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_validate() {
        let b = Conv2d::test_size();
        for prec in Precision::ALL {
            for v in Variant::ALL {
                let r = b.run(v, prec).unwrap();
                assert!(
                    r.validated,
                    "{} {} err {:.3e}",
                    v.label(),
                    prec.label(),
                    r.max_rel_err
                );
            }
        }
    }

    #[test]
    fn opt_wins_big_in_f32() {
        let b = Conv2d::default();
        let naive = b.run(Variant::OpenCl, Precision::F32).unwrap();
        let opt = b.run(Variant::OpenClOpt, Precision::F32).unwrap();
        let gain = naive.time_s / opt.time_s;
        assert!(gain > 3.0, "2dcon opt should win big (gain {gain:.2})");
    }

    #[test]
    fn f64_opt_narrower_than_f32() {
        // Register pressure forces narrower vectors in f64 — the §V-A
        // CL_OUT_OF_RESOURCES story.
        let b = Conv2d::default();
        let r32 = b.run(Variant::OpenClOpt, Precision::F32).unwrap();
        let r64 = b.run(Variant::OpenClOpt, Precision::F64).unwrap();
        let n32 = r32.note.unwrap();
        let n64 = r64.note.unwrap();
        assert!(
            n32.starts_with("vload8"),
            "f32 should get the widest vector: {n32}"
        );
        assert!(
            n64.contains("CL_OUT_OF_RESOURCES") && n64.contains("vload4"),
            "f64 wide vectors should exceed the register file and fall back: {n64}"
        );
    }

    #[test]
    fn weights_normalized() {
        let b = Conv2d::test_size();
        let s: f64 = b.weights_flat().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }
}
