//! Property tests: every benchmark validates against its Rust reference on
//! *randomized* problem sizes (drawn from each benchmark's legal size
//! grid), across all four versions. This is the contract that makes the
//! timing results trustworthy — the kernels compute the right answer at
//! any size, not just the tuned defaults.

use hpc_kernels::amcd::Amcd;
use hpc_kernels::conv2d::Conv2d;
use hpc_kernels::dmmm::Dmmm;
use hpc_kernels::hist::Hist;
use hpc_kernels::nbody::Nbody;
use hpc_kernels::red::Red;
use hpc_kernels::spmv::Spmv;
use hpc_kernels::stencil3d::Stencil3d;
use hpc_kernels::vecop::Vecop;
use hpc_kernels::{Benchmark, Precision, Variant};
use proptest::prelude::*;

/// Run all four versions at one precision; panic with context on any
/// validation failure. (amcd f64 GPU skips are allowed by construction.)
fn check_all(b: &dyn Benchmark, prec: Precision) -> Result<(), TestCaseError> {
    for v in Variant::ALL {
        match b.run(v, prec) {
            Ok(r) => prop_assert!(
                r.validated,
                "{} {} {}: max rel err {:.3e}",
                b.name(),
                v.label(),
                prec.label(),
                r.max_rel_err
            ),
            Err(e) => {
                let excused =
                    b.name() == "amcd" && prec == Precision::F64 && v.on_gpu();
                prop_assert!(excused, "{} {} {}: {e}", b.name(), v.label(), prec.label());
            }
        }
    }
    Ok(())
}

fn precisions() -> impl Strategy<Value = Precision> {
    prop_oneof![Just(Precision::F32), Just(Precision::F64)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn vecop_any_size(k in 1usize..6, prec in precisions()) {
        check_all(&Vecop { n: 1024 * k }, prec)?;
    }

    #[test]
    fn spmv_any_size(rows_k in 1usize..6, nnz in 4usize..12, prec in precisions()) {
        check_all(&Spmv { rows: 64 * rows_k, nnz_per_row: nnz }, prec)?;
    }

    #[test]
    fn hist_any_size(k in 1usize..6, prec in precisions()) {
        check_all(&Hist { n: 512 * k, buckets: 64, opt_items_per_thread: 8 }, prec)?;
    }

    #[test]
    fn stencil_any_size(k in 1usize..3, prec in precisions()) {
        // interior 16k must divide the 16x8 tile and the z-column length 4.
        check_all(&Stencil3d { dim: 16 * k + 2, opt_z_per_thread: 4 }, prec)?;
    }

    #[test]
    fn red_any_size(k in 1usize..5, prec in precisions()) {
        // n = wg(32) x naive_groups(16) x chunk(8k); opt chunk = 32k (mult of 4).
        check_all(&Red { n: 32 * 16 * 8 * k, wg: 32, naive_groups: 16, opt_groups: 4 },
            prec)?;
    }

    #[test]
    fn amcd_any_size(wk in 1usize..4, steps in 8usize..48, prec in precisions()) {
        check_all(&Amcd { walkers: 128 * wk, steps }, prec)?;
    }

    #[test]
    fn nbody_any_size(k in 1usize..4, prec in precisions()) {
        check_all(&Nbody { n: 128 * k, dt: 0.01, opt_unroll: 4 }, prec)?;
    }

    #[test]
    fn conv2d_any_size(k in 2usize..6, prec in precisions()) {
        check_all(&Conv2d { n: 16 * k + 4 }, prec)?;
    }

    #[test]
    fn dmmm_any_size(k in 1usize..4, prec in precisions()) {
        check_all(&Dmmm { n: 32 * k, opt_unroll: 2, opt_width: 4 }, prec)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Device-model monotonicity: more elements never simulate faster
    /// (checked on the memory-bound and compute-bound archetypes).
    #[test]
    fn time_monotone_in_problem_size(k in 1usize..5) {
        let small = Vecop { n: 1024 * k };
        let large = Vecop { n: 1024 * (k + 1) };
        for v in Variant::ALL {
            let ts = small.run(v, Precision::F32).unwrap().time_s;
            let tl = large.run(v, Precision::F32).unwrap().time_s;
            prop_assert!(tl >= ts * 0.98,
                "{}: larger input ran faster ({tl:.3e} < {ts:.3e})", v.label());
        }
    }

    /// f64 never beats f32 by more than noise on the same version (the
    /// data is twice as wide everywhere).
    #[test]
    fn f64_never_faster_than_f32(k in 1usize..4) {
        let b = Vecop { n: 2048 * k };
        for v in Variant::ALL {
            let t32 = b.run(v, Precision::F32).unwrap().time_s;
            let t64 = b.run(v, Precision::F64).unwrap().time_s;
            prop_assert!(t64 >= t32 * 0.95,
                "{}: f64 ({t64:.3e}) beat f32 ({t32:.3e})", v.label());
        }
    }
}
