//! Size-grid validation: every benchmark validates against its Rust
//! reference on a grid of legal problem sizes (not just the tuned
//! defaults), across all four versions and both precisions. This is the
//! contract that makes the timing results trustworthy. (Formerly a
//! proptest suite; now a deterministic sweep so the workspace builds
//! offline.)

use hpc_kernels::amcd::Amcd;
use hpc_kernels::conv2d::Conv2d;
use hpc_kernels::dmmm::Dmmm;
use hpc_kernels::hist::Hist;
use hpc_kernels::nbody::Nbody;
use hpc_kernels::red::Red;
use hpc_kernels::spmv::Spmv;
use hpc_kernels::stencil3d::Stencil3d;
use hpc_kernels::vecop::Vecop;
use hpc_kernels::{Benchmark, Precision, Variant};

/// Run all four versions at both precisions; panic with context on any
/// validation failure. (amcd f64 GPU skips are allowed by construction.)
fn check_all(b: &dyn Benchmark) {
    for prec in Precision::ALL {
        for v in Variant::ALL {
            match b.run(v, prec) {
                Ok(r) => assert!(
                    r.validated,
                    "{} {} {}: max rel err {:.3e}",
                    b.name(),
                    v.label(),
                    prec.label(),
                    r.max_rel_err
                ),
                Err(e) => {
                    let excused = b.name() == "amcd" && prec == Precision::F64 && v.on_gpu();
                    assert!(excused, "{} {} {}: {e}", b.name(), v.label(), prec.label());
                }
            }
        }
    }
}

#[test]
fn vecop_size_grid() {
    for k in [1, 3, 5] {
        check_all(&Vecop { n: 1024 * k });
    }
}

#[test]
fn spmv_size_grid() {
    for (rows_k, nnz) in [(1, 4), (3, 7), (5, 11)] {
        check_all(&Spmv {
            rows: 64 * rows_k,
            nnz_per_row: nnz,
        });
    }
}

#[test]
fn hist_size_grid() {
    for k in [1, 3, 5] {
        check_all(&Hist {
            n: 512 * k,
            buckets: 64,
            opt_items_per_thread: 8,
        });
    }
}

#[test]
fn stencil_size_grid() {
    // interior 16k must divide the 16x8 tile and the z-column length 4.
    for k in [1, 2] {
        check_all(&Stencil3d {
            dim: 16 * k + 2,
            opt_z_per_thread: 4,
        });
    }
}

#[test]
fn red_size_grid() {
    // n = wg(32) x naive_groups(16) x chunk(8k); opt chunk = 32k (mult of 4).
    for k in [1, 2, 4] {
        check_all(&Red {
            n: 32 * 16 * 8 * k,
            wg: 32,
            naive_groups: 16,
            opt_groups: 4,
        });
    }
}

#[test]
fn amcd_size_grid() {
    for (wk, steps) in [(1, 8), (2, 23), (3, 47)] {
        check_all(&Amcd {
            walkers: 128 * wk,
            steps,
        });
    }
}

#[test]
fn nbody_size_grid() {
    for k in [1, 2, 3] {
        check_all(&Nbody {
            n: 128 * k,
            dt: 0.01,
            opt_unroll: 4,
        });
    }
}

#[test]
fn conv2d_size_grid() {
    for k in [2, 3, 5] {
        check_all(&Conv2d { n: 16 * k + 4 });
    }
}

#[test]
fn dmmm_size_grid() {
    for k in [1, 2, 3] {
        check_all(&Dmmm {
            n: 32 * k,
            opt_unroll: 2,
            opt_width: 4,
        });
    }
}

/// Device-model monotonicity: more elements never simulate faster
/// (checked on the memory-bound archetype).
#[test]
fn time_monotone_in_problem_size() {
    for k in [1, 2, 4] {
        let small = Vecop { n: 1024 * k };
        let large = Vecop { n: 1024 * (k + 1) };
        for v in Variant::ALL {
            let ts = small.run(v, Precision::F32).unwrap().time_s;
            let tl = large.run(v, Precision::F32).unwrap().time_s;
            assert!(
                tl >= ts * 0.98,
                "{}: larger input ran faster ({tl:.3e} < {ts:.3e})",
                v.label()
            );
        }
    }
}

/// f64 never beats f32 by more than noise on the same version (the
/// data is twice as wide everywhere).
#[test]
fn f64_never_faster_than_f32() {
    for k in [1, 3] {
        let b = Vecop { n: 2048 * k };
        for v in Variant::ALL {
            let t32 = b.run(v, Precision::F32).unwrap().time_s;
            let t64 = b.run(v, Precision::F64).unwrap().time_s;
            assert!(
                t64 >= t32 * 0.95,
                "{}: f64 ({t64:.3e}) beat f32 ({t32:.3e})",
                v.label()
            );
        }
    }
}
