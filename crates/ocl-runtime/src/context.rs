//! Context + command-queue: buffers, the two host↔device data paths, and
//! kernel enqueue with the driver's (imperfect) automatic local-size choice.
//!
//! The §III-A host-code guidelines exist because of two behaviours this
//! module models explicitly:
//!
//! * **Memory allocation and mapping** — Mali shares one physical memory
//!   with the CPU. Buffers created with `CL_MEM_ALLOC_HOST_PTR` and accessed
//!   with `clEnqueueMapBuffer`/`clEnqueueUnmapMemObject` move **no** data;
//!   `CL_MEM_USE_HOST_PTR` buffers accessed with `clEnqueueWrite/ReadBuffer`
//!   pay a full memcpy each way.
//! * **Load distribution** — passing `local_work_size = NULL` lets the
//!   driver pick; its heuristic (largest 1-D divisor) is sometimes bad,
//!   which is why the paper "strongly suggests to manually tune" it.

use crate::compiler::{build_for, BuildError, CompiledKernel, Profile};
use crate::error::ClError;
use kernel_ir::{ArgBinding, ArgDecl, BufferData, MemoryPool, NDRange, Scalar, Value};
use mali_gpu::{MaliReport, MaliT604};
use powersim::Activity;
use telemetry::{Counters, WorkSpan};

/// Buffer-allocation flags (the relevant subset of `cl_mem_flags`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemFlags {
    /// `CL_MEM_ALLOC_HOST_PTR`: driver-allocated, CPU+GPU visible —
    /// map/unmap is (nearly) free. The paper's recommended path.
    AllocHostPtr,
    /// `CL_MEM_USE_HOST_PTR` over a malloc'd region: the driver cannot map
    /// it into the GPU address space for free; read/write (and even map)
    /// degenerate to copies.
    UseHostPtr,
}

/// Handle to a device buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BufId(usize);

/// One argument for a kernel launch.
#[derive(Clone, Debug)]
pub enum KernelArg {
    Buf(BufId),
    Scalar(Value),
    /// `clSetKernelArg(…, size, NULL)` for a `__local` buffer: element count.
    Local(usize),
}

/// What a queue event was.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    WriteBuffer { bytes: u64 },
    ReadBuffer { bytes: u64 },
    Map { bytes: u64 },
    Unmap { bytes: u64 },
    Kernel { name: String },
}

/// One profiled command, like `CL_QUEUE_PROFILING_ENABLE` would give.
#[derive(Clone, Debug)]
pub struct Event {
    pub kind: EventKind,
    pub time_s: f64,
    /// Queue-relative CL_PROFILING_COMMAND_START, seconds. The queue is
    /// in-order, so each command starts when the previous one ends.
    pub start_s: f64,
    /// Queue-relative CL_PROFILING_COMMAND_END.
    pub end_s: f64,
    pub activity: Activity,
    /// Kernel launches carry the device's performance-counter snapshot;
    /// transfer commands carry `None`.
    pub counters: Option<Counters>,
    /// Kernel launches carry per-core work-group spans, queue-relative
    /// (already offset by this event's `start_s` and the launch overhead).
    pub spans: Vec<WorkSpan>,
}

/// Host-side transfer cost constants.
#[derive(Clone, Copy, Debug)]
pub struct HostCosts {
    /// Sustained single-core memcpy bandwidth, bytes/s.
    pub memcpy_bw: f64,
    /// Fixed driver overhead per read/write call, seconds.
    pub rw_call_overhead_s: f64,
    /// Fixed overhead per map/unmap (page-table + cache maintenance setup).
    pub map_overhead_s: f64,
    /// Cache clean/invalidate throughput for mapped ranges, bytes/s.
    pub cache_maint_bw: f64,
}

impl Default for HostCosts {
    fn default() -> Self {
        HostCosts {
            memcpy_bw: 1.3e9,
            rw_call_overhead_s: 15e-6,
            map_overhead_s: 18e-6,
            cache_maint_bw: 12e9,
        }
    }
}

struct BufferSlot {
    pool_idx: usize,
    flags: MemFlags,
}

/// An OpenCL-ish context + in-order command queue over one Mali device.
pub struct Context {
    pub device: MaliT604,
    /// Device profile (§II-B). The T604 is Full Profile; set Embedded to
    /// model the pre-T600 generation of embedded GPUs.
    pub profile: Profile,
    pub host_costs: HostCosts,
    pool: MemoryPool,
    buffers: Vec<BufferSlot>,
    events: Vec<Event>,
    /// In-order queue clock: end timestamp of the last enqueued command.
    queue_clock: f64,
    /// Per-context enqueue counter; sequences the fault-injection rolls so
    /// they are a pure function of this context's call history.
    fault_seq: u64,
}

/// Result handle of a kernel launch.
#[derive(Clone, Debug)]
pub struct LaunchInfo {
    pub report: MaliReport,
    /// Local size actually used (driver-chosen when the caller passed None).
    pub local: [usize; 3],
    /// True when the driver picked the local size.
    pub driver_chose_local: bool,
}

impl Context {
    pub fn new(device: MaliT604) -> Self {
        Context {
            device,
            profile: Profile::Full,
            host_costs: HostCosts::default(),
            pool: MemoryPool::new(),
            buffers: Vec::new(),
            events: Vec::new(),
            queue_clock: 0.0,
            fault_seq: 0,
        }
    }

    // ---- buffers -------------------------------------------------------

    /// `clCreateBuffer`, zero-initialized.
    pub fn create_buffer(&mut self, elem: Scalar, len: usize, flags: MemFlags) -> BufId {
        self.create_buffer_init(BufferData::zeroed(elem, len), flags)
    }

    /// `clCreateBuffer` with initial contents already host-resident (models
    /// CL_MEM_COPY_HOST_PTR-style initialization without charging the queue
    /// — the paper excludes initialization from measurements).
    pub fn create_buffer_init(&mut self, data: BufferData, flags: MemFlags) -> BufId {
        let pool_idx = self.pool.add(data);
        self.buffers.push(BufferSlot { pool_idx, flags });
        BufId(self.buffers.len() - 1)
    }

    fn push_event(&mut self, kind: EventKind, time_s: f64, activity: Activity) {
        self.push_event_full(kind, time_s, activity, None, Vec::new());
    }

    fn push_event_full(
        &mut self,
        kind: EventKind,
        time_s: f64,
        activity: Activity,
        counters: Option<Counters>,
        spans: Vec<WorkSpan>,
    ) {
        let start_s = self.queue_clock;
        self.queue_clock += time_s;
        self.events.push(Event {
            kind,
            time_s,
            start_s,
            end_s: self.queue_clock,
            activity,
            counters,
            spans,
        });
    }

    fn slot(&self, b: BufId) -> Result<&BufferSlot, ClError> {
        self.buffers
            .get(b.0)
            .ok_or_else(|| ClError::InvalidMemObject(format!("buffer {}", b.0)))
    }

    /// Raw read access without queue cost (test/validation helper, not a
    /// host-code path).
    pub fn buffer_data(&self, b: BufId) -> &BufferData {
        self.pool.get(self.buffers[b.0].pool_idx)
    }

    fn bytes_of(&self, b: BufId) -> u64 {
        self.pool.get(self.buffers[b.0].pool_idx).bytes()
    }

    /// `clEnqueueWriteBuffer`: host→device copy (the path §III-A tells you
    /// to avoid on this architecture).
    pub fn enqueue_write_buffer(&mut self, b: BufId, data: BufferData) -> Result<(), ClError> {
        let slot = self.slot(b)?;
        let pool_idx = slot.pool_idx;
        if data.elem() != self.pool.get(pool_idx).elem()
            || data.len() != self.pool.get(pool_idx).len()
        {
            return Err(ClError::InvalidValue("write shape mismatch".into()));
        }
        let bytes = data.bytes();
        *self.pool.get_mut(pool_idx) = data;
        self.push_copy_event(EventKind::WriteBuffer { bytes }, bytes);
        Ok(())
    }

    /// `clEnqueueReadBuffer`: device→host copy.
    pub fn enqueue_read_buffer(&mut self, b: BufId) -> Result<BufferData, ClError> {
        let slot = self.slot(b)?;
        let data = self.pool.get(slot.pool_idx).clone();
        let bytes = data.bytes();
        self.push_copy_event(EventKind::ReadBuffer { bytes }, bytes);
        Ok(data)
    }

    fn push_copy_event(&mut self, kind: EventKind, bytes: u64) {
        let c = self.host_costs;
        let t = c.rw_call_overhead_s + bytes as f64 / c.memcpy_bw;
        self.push_event(
            kind,
            t,
            Activity {
                duration_s: t,
                cpu_busy_s: [t, 0.0],
                // memcpy reads + writes the span.
                dram_bytes: 2 * bytes,
                ..Default::default()
            },
        );
    }

    /// `clEnqueueMapBuffer`: returns mutable host access. Free of copies for
    /// `ALLOC_HOST_PTR` buffers (cache maintenance only); `USE_HOST_PTR`
    /// buffers degenerate to a full copy, as the Mali driver does.
    pub fn enqueue_map_buffer(&mut self, b: BufId) -> Result<&mut BufferData, ClError> {
        let slot = self.slot(b)?;
        let (pool_idx, flags) = (slot.pool_idx, slot.flags);
        let bytes = self.bytes_of(b);
        let c = self.host_costs;
        let (kind, t, dram) = match flags {
            MemFlags::AllocHostPtr => (
                EventKind::Map { bytes },
                c.map_overhead_s + bytes as f64 / c.cache_maint_bw,
                0,
            ),
            MemFlags::UseHostPtr => (
                EventKind::Map { bytes },
                c.rw_call_overhead_s + bytes as f64 / c.memcpy_bw,
                2 * bytes,
            ),
        };
        self.push_event(
            kind,
            t,
            Activity {
                duration_s: t,
                cpu_busy_s: [t, 0.0],
                dram_bytes: dram,
                ..Default::default()
            },
        );
        Ok(self.pool.get_mut(pool_idx))
    }

    /// `clEnqueueUnmapMemObject`.
    pub fn enqueue_unmap(&mut self, b: BufId) -> Result<(), ClError> {
        let slot = self.slot(b)?;
        let flags = slot.flags;
        let bytes = self.bytes_of(b);
        let c = self.host_costs;
        let (t, dram) = match flags {
            MemFlags::AllocHostPtr => (c.map_overhead_s + bytes as f64 / c.cache_maint_bw, 0),
            MemFlags::UseHostPtr => (c.rw_call_overhead_s + bytes as f64 / c.memcpy_bw, 2 * bytes),
        };
        self.push_event(
            EventKind::Unmap { bytes },
            t,
            Activity {
                duration_s: t,
                cpu_busy_s: [t, 0.0],
                dram_bytes: dram,
                ..Default::default()
            },
        );
        Ok(())
    }

    // ---- programs --------------------------------------------------------

    /// `clBuildProgram` + `clCreateKernel` against this device's profile.
    ///
    /// Fault injection: the ambient plan may reject the build outright
    /// (`CL_BUILD_PROGRAM_FAILURE`), keyed on the program name so the
    /// decision is reproducible — and re-rolled per retry scope.
    pub fn build_kernel(&self, program: kernel_ir::Program) -> Result<CompiledKernel, ClError> {
        if let Some(plan) = sim_faults::current() {
            let seq = sim_faults::hash_key(&program.name);
            if plan.roll(sim_faults::FaultSite::BuildFailure, seq) {
                sim_faults::note(sim_faults::FaultSite::BuildFailure);
                return Err(ClError::BuildProgramFailure(format!(
                    "{} simulated compiler front-end crash building '{}'",
                    sim_faults::TAG,
                    program.name
                )));
            }
        }
        build_for(program, self.profile)
            .map_err(|e: BuildError| ClError::BuildProgramFailure(e.to_string()))
    }

    // ---- enqueue -----------------------------------------------------------

    /// The driver's automatic local-size heuristic used when the host
    /// passes `local_work_size = NULL`: the largest power-of-two divisor of
    /// the *first* global dimension, capped by the device limit and the
    /// kernel's register budget. Ignores higher dimensions and locality —
    /// deliberately faithful to "the driver is not always capable of doing
    /// a good selection" (§III-A).
    pub fn driver_local_size(&self, kernel: &CompiledKernel, global: [usize; 3]) -> [usize; 3] {
        let regs_cap = self
            .device
            .cfg
            .resident_threads(kernel.footprint)
            .min(self.device.cfg.max_wg_size)
            .max(1);
        let mut wg = 1usize;
        while wg * 2 <= regs_cap as usize && global[0].is_multiple_of(wg * 2) && wg * 2 <= 256 {
            wg *= 2;
        }
        [wg, 1, 1]
    }

    /// `clEnqueueNDRangeKernel`. `local = None` invokes the driver
    /// heuristic above.
    pub fn enqueue_nd_range(
        &mut self,
        kernel: &CompiledKernel,
        global: [usize; 3],
        local: Option<[usize; 3]>,
        args: &[KernelArg],
    ) -> Result<LaunchInfo, ClError> {
        let driver_chose = local.is_none();
        let local = local.unwrap_or_else(|| self.driver_local_size(kernel, global));
        for d in 0..3 {
            if local[d] == 0 || global[d] == 0 || !global[d].is_multiple_of(local[d]) {
                return Err(ClError::InvalidWorkGroupSize(format!(
                    "global {global:?} not divisible by local {local:?}"
                )));
            }
        }
        let wg: usize = local.iter().product();
        if wg > self.device.cfg.max_wg_size as usize {
            return Err(ClError::InvalidWorkGroupSize(format!(
                "work-group of {wg} exceeds device max {}",
                self.device.cfg.max_wg_size
            )));
        }
        // Bind args.
        if args.len() != kernel.program.args.len() {
            return Err(ClError::InvalidKernelArgs(format!(
                "kernel {} takes {} args, got {}",
                kernel.program.name,
                kernel.program.args.len(),
                args.len()
            )));
        }
        let mut bindings = Vec::with_capacity(args.len());
        for (i, (a, decl)) in args.iter().zip(&kernel.program.args).enumerate() {
            let kind_ok = matches!(
                (a, decl),
                (KernelArg::Buf(_), ArgDecl::GlobalBuf { .. })
                    | (KernelArg::Scalar(_), ArgDecl::Scalar { .. })
                    | (KernelArg::Local(_), ArgDecl::LocalBuf { .. })
            );
            if !kind_ok {
                return Err(ClError::InvalidKernelArgs(format!(
                    "kernel {}: arg {i} kind mismatch (declared {decl:?})",
                    kernel.program.name
                )));
            }
            bindings.push(match a {
                KernelArg::Buf(b) => ArgBinding::Global(self.slot(*b)?.pool_idx),
                KernelArg::Scalar(v) => ArgBinding::Scalar(*v),
                KernelArg::Local(n) => ArgBinding::LocalSize(*n),
            });
        }
        // Fault injection: after the host-side checks pass, the driver may
        // still fail the enqueue. Sequenced by this context's enqueue
        // counter so the decision replays identically for a given context
        // history regardless of threads.
        let fault_seq = self.fault_seq;
        self.fault_seq += 1;
        if let Some(plan) = sim_faults::current() {
            if plan.roll(sim_faults::FaultSite::EnqueueOutOfResources, fault_seq) {
                sim_faults::note(sim_faults::FaultSite::EnqueueOutOfResources);
                return Err(ClError::OutOfResources {
                    footprint: kernel.footprint,
                    wg_size: wg as u32,
                });
            }
            if plan.roll(sim_faults::FaultSite::InvalidKernelArgs, fault_seq) {
                sim_faults::note(sim_faults::FaultSite::InvalidKernelArgs);
                return Err(ClError::InvalidKernelArgs(format!(
                    "{} driver lost an argument binding for kernel {}",
                    sim_faults::TAG,
                    kernel.program.name
                )));
            }
        }
        let ndr = NDRange { global, local };
        let mut report = self
            .device
            .run(&kernel.program, &bindings, &mut self.pool, ndr)
            .map_err(ClError::from)?;
        if let Some(reason) = report.sim_serial_reason {
            telemetry::log::debug(&format!(
                "kernel {}: simulation ran work-groups serially ({reason})",
                kernel.program.name
            ));
        }
        // §III-B directives/type qualifiers: small win on the compute side.
        if kernel.hint_factor < 1.0 && report.compute_time_s >= report.mem_time_s {
            let launch = self.device.cfg.launch_overhead_s;
            let busy = (report.time_s - launch).max(0.0) * kernel.hint_factor;
            report.time_s = busy + launch;
            report.compute_time_s *= kernel.hint_factor;
            report.activity.duration_s = report.time_s;
            report.activity.gpu_active_s = report.time_s;
            for s in &mut report.spans {
                s.start_s *= kernel.hint_factor;
                s.end_s *= kernel.hint_factor;
            }
        }
        // Queue-relative spans: compute starts after the launch overhead.
        let span_base = self.queue_clock + self.device.cfg.launch_overhead_s;
        let spans: Vec<WorkSpan> = report
            .spans
            .iter()
            .map(|s| WorkSpan {
                core: s.core,
                group: s.group,
                start_s: span_base + s.start_s,
                end_s: span_base + s.end_s,
            })
            .collect();
        self.push_event_full(
            EventKind::Kernel {
                name: kernel.program.name.clone(),
            },
            report.time_s,
            report.activity,
            Some(report.counters.clone()),
            spans,
        );
        Ok(LaunchInfo {
            report,
            local,
            driver_chose_local: driver_chose,
        })
    }

    // ---- queue drain ---------------------------------------------------------

    /// `clFinish`: drain and return all profiled events. The queue clock
    /// keeps running across `finish` calls (timestamps stay comparable).
    pub fn finish(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    /// Total time and activity of the events recorded so far, without
    /// draining (kernel events only when `kernels_only`).
    pub fn timeline(&self, kernels_only: bool) -> (f64, Activity) {
        let mut t = 0.0;
        let mut act = Activity::default();
        for e in &self.events {
            if kernels_only && !matches!(e.kind, EventKind::Kernel { .. }) {
                continue;
            }
            t += e.time_s;
            act = act.concat(&e.activity);
        }
        (t, act)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_ir::prelude::*;
    use kernel_ir::Access;

    fn saxpy() -> kernel_ir::Program {
        let mut kb = KernelBuilder::new("saxpy");
        let x = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let y = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
        let a = kb.arg_scalar(Scalar::F32);
        let gid = kb.query_global_id(0);
        let va = kb.load_scalar_arg(a);
        let vx = kb.load(Scalar::F32, x, gid.into());
        let vy = kb.load(Scalar::F32, y, gid.into());
        let r = kb.mad(va.into(), vx.into(), vy.into(), VType::scalar(Scalar::F32));
        kb.store(y, gid.into(), r.into());
        kb.finish()
    }

    #[test]
    fn end_to_end_launch() {
        let mut ctx = Context::new(MaliT604::default());
        let n = 1024;
        let x = ctx.create_buffer_init(vec![1.0f32; n].into(), MemFlags::AllocHostPtr);
        let y = ctx.create_buffer_init(vec![2.0f32; n].into(), MemFlags::AllocHostPtr);
        let k = ctx.build_kernel(saxpy()).unwrap();
        let info = ctx
            .enqueue_nd_range(
                &k,
                [n, 1, 1],
                Some([64, 1, 1]),
                &[
                    KernelArg::Buf(x),
                    KernelArg::Buf(y),
                    KernelArg::Scalar(Value::f32(3.0)),
                ],
            )
            .unwrap();
        assert!(!info.driver_chose_local);
        assert!(ctx.buffer_data(y).as_f32().iter().all(|&v| v == 5.0));
        let events = ctx.finish();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0].kind, EventKind::Kernel { .. }));
    }

    #[test]
    fn driver_picks_local_size_when_none() {
        let mut ctx = Context::new(MaliT604::default());
        let n = 768; // divisible by 256
        let x = ctx.create_buffer(Scalar::F32, n, MemFlags::AllocHostPtr);
        let y = ctx.create_buffer(Scalar::F32, n, MemFlags::AllocHostPtr);
        let k = ctx.build_kernel(saxpy()).unwrap();
        let info = ctx
            .enqueue_nd_range(
                &k,
                [n, 1, 1],
                None,
                &[
                    KernelArg::Buf(x),
                    KernelArg::Buf(y),
                    KernelArg::Scalar(Value::f32(1.0)),
                ],
            )
            .unwrap();
        assert!(info.driver_chose_local);
        assert_eq!(info.local[0], 256);
    }

    #[test]
    fn driver_local_respects_register_budget() {
        // A register-fat kernel forces the heuristic below 256.
        let mut kb = KernelBuilder::new("fat");
        let a = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
        // 16 simultaneously-live float16 vectors = 64 hw regs/thread.
        let mut regs = Vec::new();
        for i in 0..16 {
            regs.push(kb.mov(Operand::ImmF(i as f64), VType::new(Scalar::F32, 16)));
        }
        let acc = kb.mov(Operand::ImmF(0.0), VType::new(Scalar::F32, 16));
        for r in &regs {
            kb.bin_into(acc, kernel_ir::BinOp::Add, acc.into(), (*r).into());
        }
        let s = kb.horiz(kernel_ir::HorizOp::Add, acc);
        let gid = kb.query_global_id(0);
        let v = kb.load(Scalar::F32, a, gid.into());
        let sum = kb.bin(
            kernel_ir::BinOp::Add,
            v.into(),
            s.into(),
            VType::scalar(Scalar::F32),
        );
        kb.store(a, gid.into(), sum.into());
        let ctx = Context::new(MaliT604::default());
        let k = ctx.build_kernel(kb.finish()).unwrap();
        let local = ctx.driver_local_size(&k, [4096, 1, 1]);
        assert!(local[0] * k.footprint as usize <= 2048);
        assert!(local[0] < 256);
    }

    #[test]
    fn map_path_cheaper_than_copy_path() {
        let n = 1 << 20;
        // Copy-based flow.
        let mut ctx1 = Context::new(MaliT604::default());
        let b1 = ctx1.create_buffer(Scalar::F32, n, MemFlags::UseHostPtr);
        ctx1.enqueue_write_buffer(b1, vec![1.0f32; n].into())
            .unwrap();
        let _ = ctx1.enqueue_read_buffer(b1).unwrap();
        let (t_copy, a_copy) = ctx1.timeline(false);
        // Map-based flow.
        let mut ctx2 = Context::new(MaliT604::default());
        let b2 = ctx2.create_buffer(Scalar::F32, n, MemFlags::AllocHostPtr);
        {
            let data = ctx2.enqueue_map_buffer(b2).unwrap();
            if let BufferData::F32(v) = data {
                v.fill(1.0);
            }
        }
        ctx2.enqueue_unmap(b2).unwrap();
        let (t_map, a_map) = ctx2.timeline(false);
        assert!(
            t_copy > 3.0 * t_map,
            "copies ({t_copy:.2e}s) should dwarf map/unmap ({t_map:.2e}s)"
        );
        assert!(a_copy.dram_bytes > a_map.dram_bytes);
    }

    #[test]
    fn mapping_use_host_ptr_still_copies() {
        let n = 1 << 20;
        let mut ctx = Context::new(MaliT604::default());
        let alloc = ctx.create_buffer(Scalar::F32, n, MemFlags::AllocHostPtr);
        let useptr = ctx.create_buffer(Scalar::F32, n, MemFlags::UseHostPtr);
        let _ = ctx.enqueue_map_buffer(alloc).unwrap();
        let events_a = ctx.finish();
        let _ = ctx.enqueue_map_buffer(useptr).unwrap();
        let events_u = ctx.finish();
        assert!(events_u[0].time_s > 3.0 * events_a[0].time_s);
    }

    #[test]
    fn bad_local_size_rejected() {
        let mut ctx = Context::new(MaliT604::default());
        let x = ctx.create_buffer(Scalar::F32, 100, MemFlags::AllocHostPtr);
        let y = ctx.create_buffer(Scalar::F32, 100, MemFlags::AllocHostPtr);
        let k = ctx.build_kernel(saxpy()).unwrap();
        let err = ctx
            .enqueue_nd_range(
                &k,
                [100, 1, 1],
                Some([64, 1, 1]),
                &[
                    KernelArg::Buf(x),
                    KernelArg::Buf(y),
                    KernelArg::Scalar(Value::f32(1.0)),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, ClError::InvalidWorkGroupSize(_)));
    }

    #[test]
    fn wrong_arg_count_rejected() {
        let mut ctx = Context::new(MaliT604::default());
        let x = ctx.create_buffer(Scalar::F32, 64, MemFlags::AllocHostPtr);
        let k = ctx.build_kernel(saxpy()).unwrap();
        let err = ctx
            .enqueue_nd_range(&k, [64, 1, 1], Some([64, 1, 1]), &[KernelArg::Buf(x)])
            .unwrap_err();
        assert!(matches!(err, ClError::InvalidKernelArgs(_)));
    }

    #[test]
    fn profiling_timestamps_are_in_order_and_consistent() {
        let mut ctx = Context::new(MaliT604::default());
        let x = ctx.create_buffer(Scalar::F32, 1 << 14, MemFlags::AllocHostPtr);
        let y = ctx.create_buffer(Scalar::F32, 1 << 14, MemFlags::AllocHostPtr);
        let k = ctx.build_kernel(saxpy()).unwrap();
        let _ = ctx.enqueue_map_buffer(x).unwrap();
        ctx.enqueue_unmap(x).unwrap();
        ctx.enqueue_nd_range(
            &k,
            [1 << 14, 1, 1],
            Some([64, 1, 1]),
            &[
                KernelArg::Buf(x),
                KernelArg::Buf(y),
                KernelArg::Scalar(Value::f32(2.0)),
            ],
        )
        .unwrap();
        let events = ctx.finish();
        assert_eq!(events.len(), 3);
        let mut clock = 0.0;
        for e in &events {
            assert_eq!(e.start_s, clock, "in-order queue: start == previous end");
            assert!((e.end_s - e.start_s - e.time_s).abs() < 1e-15);
            clock = e.end_s;
        }
        // The clock survives a finish(): the next command starts where the
        // drained timeline ended.
        ctx.enqueue_unmap(y).unwrap();
        let next = ctx.finish();
        assert_eq!(next[0].start_s, clock);
    }

    #[test]
    fn timeline_kernels_only_filter() {
        let mut ctx = Context::new(MaliT604::default());
        let x = ctx.create_buffer(Scalar::F32, 256, MemFlags::AllocHostPtr);
        let y = ctx.create_buffer(Scalar::F32, 256, MemFlags::AllocHostPtr);
        ctx.enqueue_write_buffer(x, vec![1.0f32; 256].into())
            .unwrap();
        let k = ctx.build_kernel(saxpy()).unwrap();
        ctx.enqueue_nd_range(
            &k,
            [256, 1, 1],
            Some([64, 1, 1]),
            &[
                KernelArg::Buf(x),
                KernelArg::Buf(y),
                KernelArg::Scalar(Value::f32(1.0)),
            ],
        )
        .unwrap();
        let (t_all, _) = ctx.timeline(false);
        let (t_k, _) = ctx.timeline(true);
        assert!(t_all > t_k);
        assert!(t_k > 0.0);
    }
}
