//! # ocl-runtime — an OpenCL-1.1-style host API over the Mali simulator
//!
//! Models the host side of the paper's stack: contexts, buffers with
//! `CL_MEM_ALLOC_HOST_PTR` / `CL_MEM_USE_HOST_PTR` semantics, the
//! map-vs-copy data paths of §III-A, an in-order profiled command queue,
//! a kernel compiler that reproduces the paper's driver bug (the
//! double-precision `amcd` internal compiler error), the register-file
//! `CL_OUT_OF_RESOURCES` enqueue check, and the driver's imperfect
//! automatic local-work-size heuristic.

pub mod compiler;
pub mod context;
pub mod error;

pub use compiler::{build, build_for, BuildError, CompiledKernel, Profile};
pub use context::{BufId, Context, Event, EventKind, HostCosts, KernelArg, LaunchInfo, MemFlags};
pub use error::ClError;
