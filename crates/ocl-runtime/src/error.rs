//! OpenCL-style error codes surfaced by the simulated runtime.

use mali_gpu::MaliError;

/// The subset of `cl_int` error codes this study's host code can encounter,
/// plus the build-failure payload `clGetProgramBuildInfo` would return.
#[derive(Clone, Debug, PartialEq)]
pub enum ClError {
    /// `CL_BUILD_PROGRAM_FAILURE` with the build log.
    BuildProgramFailure(String),
    /// `CL_OUT_OF_RESOURCES` — the register-file/work-group check failed at
    /// enqueue (see [`mali_gpu::MaliConfig::wg_fits`]).
    OutOfResources { footprint: u32, wg_size: u32 },
    /// `CL_INVALID_WORK_GROUP_SIZE` — local does not divide global, or
    /// exceeds the device maximum.
    InvalidWorkGroupSize(String),
    /// `CL_INVALID_KERNEL_ARGS` — unset or mistyped argument.
    InvalidKernelArgs(String),
    /// `CL_INVALID_MEM_OBJECT`.
    InvalidMemObject(String),
    /// `CL_INVALID_VALUE` catch-all for host-API misuse.
    InvalidValue(String),
}

impl std::fmt::Display for ClError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClError::BuildProgramFailure(log) => {
                write!(f, "CL_BUILD_PROGRAM_FAILURE: {log}")
            }
            ClError::OutOfResources { footprint, wg_size } => write!(
                f,
                "CL_OUT_OF_RESOURCES (wg_size {wg_size} x {footprint} regs/thread)"
            ),
            ClError::InvalidWorkGroupSize(s) => write!(f, "CL_INVALID_WORK_GROUP_SIZE: {s}"),
            ClError::InvalidKernelArgs(s) => write!(f, "CL_INVALID_KERNEL_ARGS: {s}"),
            ClError::InvalidMemObject(s) => write!(f, "CL_INVALID_MEM_OBJECT: {s}"),
            ClError::InvalidValue(s) => write!(f, "CL_INVALID_VALUE: {s}"),
        }
    }
}

impl std::error::Error for ClError {}

impl From<MaliError> for ClError {
    fn from(e: MaliError) -> Self {
        match e {
            MaliError::OutOfResources {
                footprint, wg_size, ..
            } => ClError::OutOfResources { footprint, wg_size },
            MaliError::Exec(e) => ClError::InvalidValue(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = ClError::OutOfResources {
            footprint: 40,
            wg_size: 256,
        };
        assert!(e.to_string().contains("CL_OUT_OF_RESOURCES"));
        let b = ClError::BuildProgramFailure("ICE".into());
        assert!(b.to_string().contains("CL_BUILD_PROGRAM_FAILURE"));
    }

    #[test]
    fn mali_error_conversion() {
        let e: ClError = MaliError::OutOfResources {
            footprint: 9,
            wg_size: 256,
            available: 2048,
        }
        .into();
        assert_eq!(
            e,
            ClError::OutOfResources {
                footprint: 9,
                wg_size: 256
            }
        );
    }
}
