//! The simulated kernel compiler (`clBuildProgram`).
//!
//! Validates the IR, records static resource usage, applies the §III-B
//! hint bonuses, and faithfully reproduces the driver bug the paper hit:
//! the 2013-era Mali OpenCL compiler could not compile the
//! double-precision `amcd` kernel ("a compiler issue that does not allow
//! the correct termination of the compilation phase", §V-A). Our stand-in
//! trigger is the same shape the paper's kernel has: **double-precision
//! transcendental math inside data-dependent control flow** — which is
//! unique to amcd among the nine benchmarks.

use kernel_ir::{Op, Program, UnOp};

/// OpenCL device profile (§II-B). The 2014-era distinction the paper's
/// whole premise rests on: Embedded Profile devices may drop 64-bit
/// floating point, so "devices that can be profitably used in a HPC
/// scenario will still have to support the OpenCL Full Profile". The
/// Mali-T604 is Full Profile; building an f64 kernel against an
/// Embedded-Profile device fails exactly like a missing `cl_khr_fp64`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Profile {
    /// OpenCL 1.1 Full Profile: IEEE-754-2008 single and double precision
    /// (the Mali-T604, and the requirement for HPC per §II-B).
    #[default]
    Full,
    /// OpenCL 1.1 Embedded Profile: no double-precision requirement.
    Embedded,
}

/// Outcome of a successful build.
#[derive(Clone, Debug)]
pub struct CompiledKernel {
    pub program: Program,
    /// Per-thread register footprint (128-bit registers), as the real
    /// compiler would report via `CL_KERNEL_PRIVATE_MEM_SIZE`-style queries.
    pub footprint: u32,
    /// Instruction-overhead multiplier earned by the §III-B hints
    /// (`inline`, `const`): <1.0 means slightly cheaper thread dispatch.
    pub hint_factor: f64,
}

/// Build-time failure (maps to `CL_BUILD_PROGRAM_FAILURE`).
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    Validation(Vec<String>),
    /// The emulated driver bug.
    InternalCompilerError(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Validation(errs) => {
                write!(f, "kernel validation failed: {}", errs.join("; "))
            }
            BuildError::InternalCompilerError(s) => {
                write!(f, "internal compiler error (driver bug): {s}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Whether the program contains an f64 transcendental op under control flow
/// — the emulated ICE trigger.
fn has_f64_transcendental_in_branch(p: &Program) -> bool {
    fn scan(p: &Program, ops: &[Op], in_branch: bool) -> bool {
        for op in ops {
            match op {
                Op::Un { op: u, dst, .. }
                    if matches!(u, UnOp::Exp | UnOp::Log)
                        && in_branch
                        && p.reg_ty(*dst).elem == kernel_ir::Scalar::F64 =>
                {
                    return true;
                }
                Op::If { then, els, .. } if (scan(p, then, true) || scan(p, els, true)) => {
                    return true;
                }
                Op::For { body, .. } if scan(p, body, in_branch) => {
                    return true;
                }
                _ => {}
            }
        }
        false
    }
    scan(p, &p.body, false)
}

/// Build against a specific device profile.
pub fn build_for(program: Program, profile: Profile) -> Result<CompiledKernel, BuildError> {
    if profile == Profile::Embedded && program.uses_f64() {
        return Err(BuildError::Validation(vec![format!(
            "kernel '{}': double precision requires the cl_khr_fp64 extension,              which this Embedded Profile device does not expose (§II-B)",
            program.name
        )]));
    }
    build(program)
}

/// `clBuildProgram` + `clCreateKernel` in one step (Full Profile device).
pub fn build(program: Program) -> Result<CompiledKernel, BuildError> {
    if let Err(errs) = program.validate() {
        return Err(BuildError::Validation(
            errs.into_iter().map(|e| e.to_string()).collect(),
        ));
    }
    // Driver bug reproduction (§V-A): the double-precision amcd kernel does
    // not compile. See module docs for the trigger definition.
    if has_f64_transcendental_in_branch(&program) {
        return Err(BuildError::InternalCompilerError(format!(
            "kernel '{}': double-precision transcendental under divergent \
             control flow hits a known code-generation bug in this driver \
             version (fix scheduled for a future release)",
            program.name
        )));
    }
    let footprint = program.register_footprint();
    let mut hint_factor = 1.0;
    if program.hints.inline {
        // Larger basic blocks, no call overhead.
        hint_factor *= 0.96;
    }
    if program.hints.const_args {
        // const/restrict let the compiler hoist loads and relax aliasing.
        hint_factor *= 0.97;
    }
    Ok(CompiledKernel {
        program,
        footprint,
        hint_factor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_ir::prelude::*;
    use kernel_ir::{Access, BinOp, Hints, Operand, Scalar, VType};

    fn amcd_like(elem: Scalar) -> Program {
        // Metropolis acceptance: if (u < exp(-dE)) { accept }
        let mut kb = KernelBuilder::new("amcd");
        let out = kb.arg_global(elem, Access::ReadWrite, true);
        let gid = kb.query_global_id(0);
        let de = kb.load(elem, out, gid.into());
        let cond = kb.bin(
            BinOp::Lt,
            de.into(),
            Operand::ImmF(0.5),
            VType::scalar(elem),
        );
        kb.if_then(cond.into(), |kb| {
            let nde = kb.un(UnOp::Neg, de.into(), VType::scalar(elem));
            let p = kb.un(UnOp::Exp, nde.into(), VType::scalar(elem));
            kb.store(out, gid.into(), p.into());
        });
        kb.finish()
    }

    #[test]
    fn f32_amcd_compiles() {
        assert!(build(amcd_like(Scalar::F32)).is_ok());
    }

    #[test]
    fn f64_amcd_hits_driver_bug() {
        let err = build(amcd_like(Scalar::F64)).unwrap_err();
        assert!(matches!(err, BuildError::InternalCompilerError(_)), "{err}");
    }

    #[test]
    fn f64_transcendental_outside_branch_compiles() {
        // Straight-line f64 exp is fine — only amcd's shape triggers it.
        let mut kb = KernelBuilder::new("expmap");
        let a = kb.arg_global(Scalar::F64, Access::ReadWrite, true);
        let gid = kb.query_global_id(0);
        let v = kb.load(Scalar::F64, a, gid.into());
        let e = kb.un(UnOp::Exp, v.into(), VType::scalar(Scalar::F64));
        kb.store(a, gid.into(), e.into());
        assert!(build(kb.finish()).is_ok());
    }

    #[test]
    fn embedded_profile_rejects_f64() {
        // §II-B: HPC needs Full Profile; an Embedded Profile device cannot
        // build double-precision kernels at all.
        let p64 = amcd_like(Scalar::F64);
        let err = build_for(p64, Profile::Embedded).unwrap_err();
        assert!(err.to_string().contains("cl_khr_fp64"), "{err}");
        // The same device builds f32 kernels fine, and a Full Profile
        // device accepts f64 (modulo its own driver bugs).
        assert!(build_for(amcd_like(Scalar::F32), Profile::Embedded).is_ok());
        let mut kb = KernelBuilder::new("sq");
        let a = kb.arg_global(Scalar::F64, Access::ReadWrite, true);
        let gid = kb.query_global_id(0);
        let v = kb.load(Scalar::F64, a, gid.into());
        let s = kb.bin(BinOp::Mul, v.into(), v.into(), VType::scalar(Scalar::F64));
        kb.store(a, gid.into(), s.into());
        assert!(build_for(kb.finish(), Profile::Full).is_ok());
    }

    #[test]
    fn invalid_ir_rejected() {
        let mut kb = KernelBuilder::new("bad");
        let a = kb.arg_global(Scalar::F32, Access::ReadOnly, false);
        let gid = kb.query_global_id(0);
        kb.store(a, gid.into(), Operand::ImmF(0.0)); // write to read-only
        let err = build(kb.finish()).unwrap_err();
        assert!(matches!(err, BuildError::Validation(_)));
    }

    #[test]
    fn hints_reduce_factor() {
        let mut kb = KernelBuilder::new("hinted");
        kb.hints(Hints {
            inline: true,
            const_args: true,
        });
        let a = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
        let gid = kb.query_global_id(0);
        let v = kb.load(Scalar::F32, a, gid.into());
        kb.store(a, gid.into(), v.into());
        let k = build(kb.finish()).unwrap();
        assert!(k.hint_factor < 1.0);
        assert!(k.footprint > 0);
    }
}
