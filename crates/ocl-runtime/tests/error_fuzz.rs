//! Seeded error-path fuzzing of the host API: every way a caller (or the
//! fault injector) can misuse the runtime must come back as a **typed**
//! `ClError`, never a panic. Each iteration draws a misuse mode and random
//! shapes from a fixed-seed PCG stream, so a failure reproduces exactly.
//!
//! Together the modes cover all six `ClError` variants:
//! `BuildProgramFailure` (genuine: f64 on an Embedded-Profile device;
//! injected: fault-plan build rejection), `OutOfResources` (genuine:
//! register file exhausted at launch; injected: enqueue-time driver
//! failure), `InvalidWorkGroupSize`, `InvalidKernelArgs`,
//! `InvalidMemObject`, and `InvalidValue`.

use kernel_ir::prelude::*;
use kernel_ir::{Access, BufferData};
use mali_gpu::MaliT604;
use ocl_runtime::{ClError, Context, KernelArg, MemFlags, Profile};
use sim_rng::Pcg32;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn saxpy(elem: Scalar) -> kernel_ir::Program {
    let mut kb = KernelBuilder::new("saxpy-fuzz");
    let x = kb.arg_global(elem, Access::ReadOnly, true);
    let y = kb.arg_global(elem, Access::ReadWrite, true);
    let a = kb.arg_scalar(elem);
    let gid = kb.query_global_id(0);
    let va = kb.load_scalar_arg(a);
    let vx = kb.load(elem, x, gid.into());
    let vy = kb.load(elem, y, gid.into());
    let r = kb.mad(va.into(), vx.into(), vy.into(), VType::scalar(elem));
    kb.store(y, gid.into(), r.into());
    kb.finish()
}

/// A register-fat kernel (16 live float16 vectors = 64 hw regs/thread):
/// at wg=256 it needs 16384 registers of the core's 2048 — a genuine
/// launch-time `CL_OUT_OF_RESOURCES`, not an injected one.
fn fat_kernel() -> kernel_ir::Program {
    let mut kb = KernelBuilder::new("fat-fuzz");
    let a = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
    let mut regs = Vec::new();
    for i in 0..16 {
        regs.push(kb.mov(Operand::ImmF(i as f64), VType::new(Scalar::F32, 16)));
    }
    let acc = kb.mov(Operand::ImmF(0.0), VType::new(Scalar::F32, 16));
    for r in &regs {
        kb.bin_into(acc, kernel_ir::BinOp::Add, acc.into(), (*r).into());
    }
    let s = kb.horiz(kernel_ir::HorizOp::Add, acc);
    let gid = kb.query_global_id(0);
    let v = kb.load(Scalar::F32, a, gid.into());
    let sum = kb.bin(
        kernel_ir::BinOp::Add,
        v.into(),
        s.into(),
        VType::scalar(Scalar::F32),
    );
    kb.store(a, gid.into(), sum.into());
    kb.finish()
}

/// Run `f` and require a typed error — a panic fails the test with the
/// payload, and an `Ok` fails it with the mode that should have errored.
fn expect_err<T: std::fmt::Debug>(
    mode: &str,
    iter: u32,
    f: impl FnOnce() -> Result<T, ClError>,
) -> ClError {
    match catch_unwind(AssertUnwindSafe(f)) {
        Err(p) => {
            let msg = p
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            panic!("mode {mode} iter {iter}: runtime panicked instead of returning a typed error: {msg}");
        }
        Ok(Ok(v)) => panic!("mode {mode} iter {iter}: expected an error, got {v:?}"),
        Ok(Err(e)) => e,
    }
}

fn valid_ctx(n: usize) -> (Context, ocl_runtime::BufId, ocl_runtime::BufId) {
    let mut ctx = Context::new(MaliT604::default());
    let x = ctx.create_buffer(Scalar::F32, n, MemFlags::AllocHostPtr);
    let y = ctx.create_buffer(Scalar::F32, n, MemFlags::AllocHostPtr);
    (ctx, x, y)
}

#[test]
fn fuzz_every_error_path_returns_typed_errors() {
    let mut rng = Pcg32::seed_from_u64(0x0c1_e4404);
    for iter in 0..400 {
        let n = 64 * rng.gen_range_usize(1, 64); // multiples of 64 up to 4032
        match rng.gen_below(6) {
            // -- CL_BUILD_PROGRAM_FAILURE: f64 against Embedded Profile.
            0 => {
                let mut ctx = Context::new(MaliT604::default());
                ctx.profile = Profile::Embedded;
                let e = expect_err("embedded-f64", iter, || {
                    ctx.build_kernel(saxpy(Scalar::F64))
                });
                assert!(
                    matches!(&e, ClError::BuildProgramFailure(log) if log.contains("cl_khr_fp64")),
                    "{e}"
                );
            }
            // -- CL_OUT_OF_RESOURCES: register file exhausted at launch.
            1 => {
                let (mut ctx, x, _) = valid_ctx(n);
                let k = ctx.build_kernel(fat_kernel()).unwrap();
                assert!(k.footprint >= 64);
                let e = expect_err("register-oor", iter, || {
                    ctx.enqueue_nd_range(&k, [n * 4, 1, 1], Some([256, 1, 1]), &[KernelArg::Buf(x)])
                });
                assert!(
                    matches!(e, ClError::OutOfResources { wg_size: 256, .. }),
                    "{e}"
                );
            }
            // -- CL_INVALID_WORK_GROUP_SIZE: indivisible or oversized local.
            2 => {
                let (mut ctx, x, y) = valid_ctx(n);
                let k = ctx.build_kernel(saxpy(Scalar::F32)).unwrap();
                let (global, local) = if rng.gen_bool() {
                    ([n, 1, 1], [n + 1, 1, 1]) // local cannot divide global
                } else {
                    let over = ctx.device.cfg.max_wg_size as usize * 2;
                    ([over * 2, 1, 1], [over, 1, 1]) // divides, but too big
                };
                let args = [
                    KernelArg::Buf(x),
                    KernelArg::Buf(y),
                    KernelArg::Scalar(Value::f32(2.0)),
                ];
                let e = expect_err("bad-wg-size", iter, || {
                    ctx.enqueue_nd_range(&k, global, Some(local), &args)
                });
                assert!(matches!(e, ClError::InvalidWorkGroupSize(_)), "{e}");
            }
            // -- CL_INVALID_KERNEL_ARGS: wrong count or mistyped argument.
            3 => {
                let (mut ctx, x, y) = valid_ctx(n);
                let k = ctx.build_kernel(saxpy(Scalar::F32)).unwrap();
                let args: Vec<KernelArg> = match rng.gen_below(3) {
                    0 => vec![KernelArg::Buf(x)], // too few
                    1 => vec![
                        KernelArg::Buf(x),
                        KernelArg::Buf(y),
                        KernelArg::Scalar(Value::f32(1.0)),
                        KernelArg::Scalar(Value::f32(2.0)), // too many
                    ],
                    _ => vec![
                        KernelArg::Scalar(Value::f32(1.0)), // buffer slot mistyped
                        KernelArg::Buf(y),
                        KernelArg::Scalar(Value::f32(2.0)),
                    ],
                };
                let e = expect_err("bad-args", iter, || {
                    ctx.enqueue_nd_range(&k, [n, 1, 1], Some([64, 1, 1]), &args)
                });
                assert!(matches!(e, ClError::InvalidKernelArgs(_)), "{e}");
            }
            // -- CL_INVALID_MEM_OBJECT: a handle from a richer context used
            //    in one that never allocated that slot.
            4 => {
                let mut donor = Context::new(MaliT604::default());
                for _ in 0..3 {
                    donor.create_buffer(Scalar::F32, 16, MemFlags::AllocHostPtr);
                }
                let stale = donor.create_buffer(Scalar::F32, 16, MemFlags::AllocHostPtr);
                let (mut ctx, x, _) = valid_ctx(n);
                let k = ctx.build_kernel(saxpy(Scalar::F32)).unwrap();
                let args = [
                    KernelArg::Buf(x),
                    KernelArg::Buf(stale),
                    KernelArg::Scalar(Value::f32(1.0)),
                ];
                let e = if rng.gen_bool() {
                    expect_err("stale-buf-launch", iter, || {
                        ctx.enqueue_nd_range(&k, [n, 1, 1], Some([64, 1, 1]), &args)
                    })
                } else {
                    expect_err("stale-buf-read", iter, || ctx.enqueue_read_buffer(stale))
                };
                assert!(matches!(e, ClError::InvalidMemObject(_)), "{e}");
            }
            // -- CL_INVALID_VALUE: write with a mismatched host shape.
            _ => {
                let (mut ctx, x, _) = valid_ctx(n);
                let data: BufferData = if rng.gen_bool() {
                    vec![0.0f32; n + rng.gen_range_usize(1, 64)].into() // wrong len
                } else {
                    vec![0.0f64; n].into() // wrong element type
                };
                let e = expect_err("bad-write", iter, || ctx.enqueue_write_buffer(x, data));
                assert!(matches!(e, ClError::InvalidValue(_)), "{e}");
            }
        }
    }
}

/// The injected flavours of `BuildProgramFailure`, `OutOfResources` and
/// `InvalidKernelArgs` surface through the same typed path as the genuine
/// ones. Rates of 1.0 (scoped thread-locally, so parallel tests are
/// unaffected) make every call fail deterministically.
#[test]
fn injected_faults_surface_as_typed_errors() {
    let certain = |site: &str| {
        let mut rates = sim_faults::FaultRates::zero();
        match site {
            "build" => rates.build_failure = 1.0,
            "oor" => rates.enqueue_oor = 1.0,
            _ => rates.invalid_args = 1.0,
        }
        Some(sim_faults::FaultPlan::new(99).with_rates(rates))
    };

    sim_faults::with_plan(certain("build"), || {
        let ctx = Context::new(MaliT604::default());
        let e = ctx.build_kernel(saxpy(Scalar::F32)).unwrap_err();
        match &e {
            ClError::BuildProgramFailure(log) => assert!(sim_faults::is_injected(log), "{log}"),
            other => panic!("expected injected build failure, got {other}"),
        }
    });

    for site in ["oor", "args"] {
        sim_faults::with_plan(certain(site), || {
            let (mut ctx, x, y) = valid_ctx(256);
            let k = ctx.build_kernel(saxpy(Scalar::F32)).unwrap();
            let args = [
                KernelArg::Buf(x),
                KernelArg::Buf(y),
                KernelArg::Scalar(Value::f32(1.0)),
            ];
            let e = ctx
                .enqueue_nd_range(&k, [256, 1, 1], Some([64, 1, 1]), &args)
                .unwrap_err();
            match (site, &e) {
                ("oor", ClError::OutOfResources { .. }) => {
                    assert!(e.to_string().contains("CL_OUT_OF_RESOURCES"))
                }
                ("args", ClError::InvalidKernelArgs(msg)) => {
                    assert!(sim_faults::is_injected(msg), "{msg}")
                }
                _ => panic!("site {site}: unexpected error {e}"),
            }
        });
    }
}
