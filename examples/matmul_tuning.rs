//! Empirical tuning on dense matrix multiply: the §III-A/§III-B parameter
//! sweeps (work-group size, vector width) and the optimization stack, run
//! through the `mali-hpc` tuners against the simulated Mali-T604.
//!
//! ```sh
//! cargo run --release --example matmul_tuning
//! ```

use harness::ablation;
use hpc_kernels::common::{gpu_context, launch};
use hpc_kernels::Precision;
use kernel_ir::{BufferData, Scalar};
use mali_hpc::{autotune, local_divides_global, SearchSpace};
use ocl_runtime::KernelArg;

fn main() {
    let n = 160;
    println!("dense matrix multiply, {n}x{n}, single precision\n");

    // --- work-group size sweep on the naive kernel ----------------------
    let (wg, driver_pick) = ablation::wg_sweep_dmmm(n);
    println!("work-group size sweep (naive kernel):");
    for e in &wg.entries {
        match e.cost {
            Some(c) => println!("  local [{:>3},1]: {:>9.3} ms", e.param, c * 1e3),
            None => println!("  local [{:>3},1]: (does not divide global)", e.param),
        }
    }
    println!(
        "  tuner picks {:?}; the driver's automatic choice would be {driver_pick} \
         (§III-A: \"we strongly suggest to manually tune\")\n",
        wg.best()
    );

    // --- vector-width sweep (on vecop, the clean vectorization target) --
    let vwidth = ablation::vector_width_sweep(1 << 18);
    println!("vector-width sweep (§III-B \"Vector Sizes\", vecop 256K elems):");
    for e in &vwidth.entries {
        match e.cost {
            Some(c) => println!("  width {:>2}: {:>9.3} ms", e.param, c * 1e3),
            None => println!("  width {:>2}: failed", e.param),
        }
    }
    println!("  best width: {:?}\n", vwidth.best());

    // --- the optimization stack ------------------------------------------
    println!("dmmm optimization stack at the tuned work-group size:");
    let stack = ablation::dmmm_stack(n);
    let base = stack[0].1;
    for (label, t) in &stack {
        println!("  {label:<30} {:>9.3} ms   ({:.2}x)", t * 1e3, base / t);
    }

    // --- full §III autotuner on vecop ------------------------------------
    let nt = 1 << 16;
    let base = hpc_kernels::vecop::Vecop { n: nt }.kernel(Precision::F32);
    let space = SearchSpace::default();
    println!(
        "\nautotuner over (width x unroll x wg) = {} candidates on vecop:",
        space.len()
    );
    let result = autotune(&base, &space, |p, divisor, wg| {
        let items = nt / divisor;
        if !local_divides_global(items, wg) {
            return None;
        }
        let (mut ctx, ids) = gpu_context(vec![
            BufferData::zeroed(Scalar::F32, nt),
            BufferData::zeroed(Scalar::F32, nt),
            BufferData::zeroed(Scalar::F32, nt),
        ]);
        let k = ctx.build_kernel(p.clone()).ok()?;
        let args: Vec<KernelArg> = ids.iter().map(|&x| KernelArg::Buf(x)).collect();
        launch(&mut ctx, &k, [items, 1, 1], Some([wg, 1, 1]), &args)
            .ok()
            .map(|(t, _)| t)
    });
    if let Some((c, cost)) = result.best() {
        println!(
            "  best: width {} / unroll {} / wg {} at {:.3} ms  ({:.2}x over untransformed)",
            c.width,
            c.unroll,
            c.work_group,
            cost * 1e3,
            result.gain_over_baseline().unwrap_or(1.0)
        );
    }
    println!(
        "  {} of {} candidates skipped; distinct reasons:",
        result.skipped(),
        result.trials.len()
    );
    for reason in result.skip_reasons() {
        println!("    - {reason}");
    }

    // --- host data path ----------------------------------------------------
    let (copy, map) = ablation::datapath_compare(n * n * 3);
    println!(
        "\nhost data path for the three {n}x{n} matrices (§III-A):\n  \
         clEnqueueWrite/ReadBuffer copies: {:.3} ms\n  \
         CL_MEM_ALLOC_HOST_PTR + map:      {:.3} ms   ({:.1}x cheaper)",
        copy * 1e3,
        map * 1e3,
        copy / map
    );
}
