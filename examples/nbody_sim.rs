//! N-body on the simulated SoC: the paper's four versions side by side,
//! plus what the paper *didn't* do — the AOS→SOA layout change (§III-B
//! "Data Organization") that unlocks vectorization.
//!
//! ```sh
//! cargo run --release --example nbody_sim
//! ```

use hpc_kernels::nbody::Nbody;
use hpc_kernels::{Benchmark, Precision, Variant};
use mali_hpc::{aos_flatten, aos_to_soa, Particle};

fn main() {
    let nb = Nbody::default();
    println!("all-pairs N-body, n = {} bodies, one step\n", nb.n);

    for prec in Precision::ALL {
        println!("--- {} precision ---", prec.label());
        let serial = nb.run(Variant::Serial, prec).expect("serial runs");
        for v in Variant::ALL {
            match nb.run(v, prec) {
                Ok(r) => {
                    println!(
                        "{:<11} {:>9.3} ms   speedup {:>5.2}x   {}",
                        v.label(),
                        r.time_s * 1e3,
                        serial.time_s / r.time_s,
                        r.note.unwrap_or_default()
                    );
                }
                Err(e) => println!("{:<11} skipped: {e}", v.label()),
            }
        }
        println!();
    }

    // The §III-B data-organization story: AOS records vs SOA arrays.
    println!("--- data layout (§III-B) ---");
    let aos: Vec<Particle<f32>> = (0..8)
        .map(|i| Particle {
            x: i as f32,
            y: i as f32 * 0.5,
            z: -(i as f32),
            m: 1.0,
        })
        .collect();
    let flat = aos_flatten(&aos);
    let soa = aos_to_soa(&aos);
    println!(
        "AOS memory image (vload4 straddles fields): {:?}",
        &flat[..8]
    );
    println!(
        "SOA x-array        (vload4 gets 4 x-coords): {:?}",
        &soa.x[..4]
    );
    println!(
        "\nThe paper keeps the AOS layout for a fair code-base comparison, which\n\
         is why nbody's OpenCL-Opt gains little: only unrolling and work-group\n\
         tuning apply (see the fallback notes above for double precision)."
    );
}
