//! Quickstart: build an OpenCL-style kernel, run it on the simulated
//! Mali-T604 through the `ocl-runtime` host API, and read the timing /
//! occupancy report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kernel_ir::prelude::*;
use kernel_ir::Access;
use mali_gpu::MaliT604;
use mali_hpc::vectorize;
use ocl_runtime::{Context, KernelArg, MemFlags};

fn main() {
    // --- 1. Write a kernel: saxpy, y[i] = a*x[i] + y[i] -----------------
    let mut kb = KernelBuilder::new("saxpy");
    let x = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
    let y = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
    let a = kb.arg_scalar(Scalar::F32);
    let gid = kb.query_global_id(0);
    let av = kb.load_scalar_arg(a);
    let xv = kb.load(Scalar::F32, x, gid.into());
    let yv = kb.load(Scalar::F32, y, gid.into());
    let r = kb.mad(av.into(), xv.into(), yv.into(), VType::scalar(Scalar::F32));
    kb.store(y, gid.into(), r.into());
    let program = kb.finish();
    println!("--- kernel source (pretty-printed IR) ---\n{program}");

    // Static analysis before any launch: instruction mix and arithmetic
    // intensity straight from the IR.
    let mix = kernel_ir::analyze(&program);
    println!("--- static analysis ---");
    println!(
        "per item: {} flops, {} loads, {} stores, {:.0} bytes; intensity {:.3} flop/B",
        mix.flops,
        mix.loads,
        mix.stores,
        mix.bytes_read + mix.bytes_written,
        mix.arithmetic_intensity()
    );

    // --- 2. Host code: context, buffers, launch --------------------------
    let n = 1 << 20;
    let mut ctx = Context::new(MaliT604::default());
    // §III-A: allocate with ALLOC_HOST_PTR so map/unmap is zero-copy.
    let xb = ctx.create_buffer_init(vec![2.0f32; n].into(), MemFlags::AllocHostPtr);
    let yb = ctx.create_buffer_init(vec![1.0f32; n].into(), MemFlags::AllocHostPtr);
    let kernel = ctx.build_kernel(program.clone()).expect("builds");

    let args = [
        KernelArg::Buf(xb),
        KernelArg::Buf(yb),
        KernelArg::Scalar(Value::f32(3.0)),
    ];
    let info = ctx
        .enqueue_nd_range(&kernel, [n, 1, 1], None, &args)
        .expect("launch");
    println!("--- naive scalar launch ---");
    println!("driver-chosen local size: {:?}", info.local);
    println!(
        "simulated time:           {:.3} ms",
        info.report.time_s * 1e3
    );
    println!(
        "register footprint:       {} x 128-bit",
        info.report.footprint
    );
    println!("resident threads/core:    {}", info.report.resident_threads);
    println!("L2 hit rate:              {:.1}%", {
        let s = info.report.hier;
        100.0 * s.l2_hits as f64 / (s.l2_hits + s.dram_lines).max(1) as f64
    });
    assert_eq!(ctx.buffer_data(yb).as_f32()[0], 7.0);

    // --- 3. Apply the paper's headline optimization: vectorize -----------
    let v = vectorize(&program, 8).expect("saxpy is a vectorizable map kernel");
    let kernel8 = ctx.build_kernel(v.program).expect("builds");
    let yb2 = ctx.create_buffer_init(vec![1.0f32; n].into(), MemFlags::AllocHostPtr);
    let args8 = [
        KernelArg::Buf(xb),
        KernelArg::Buf(yb2),
        KernelArg::Scalar(Value::f32(3.0)),
    ];
    let info8 = ctx
        .enqueue_nd_range(&kernel8, [n / 8, 1, 1], Some([128, 1, 1]), &args8)
        .expect("launch");
    println!("--- float8-vectorized launch (§III-B) ---");
    println!(
        "simulated time:           {:.3} ms",
        info8.report.time_s * 1e3
    );
    println!(
        "speedup over scalar:      {:.2}x",
        info.report.time_s / info8.report.time_s
    );
    assert_eq!(ctx.buffer_data(yb2).as_f32()[n - 1], 7.0);
}
