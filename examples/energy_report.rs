//! Energy-to-solution measurement walkthrough: the paper's §IV-D
//! methodology end to end for one benchmark — run the parallel region,
//! stretch it to a meter-friendly window, sample the simulated Yokogawa
//! WT230 at 10 Hz over 20 repetitions, and report mean ± σ power and the
//! per-solution energy, for all four versions.
//!
//! ```sh
//! cargo run --release --example energy_report [bench]
//! ```

use harness::measure;
use hpc_kernels::{suite, Precision, Variant};
use powersim::PowerModel;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "2dcon".into());
    let benches = suite();
    let Some(b) = benches.iter().find(|b| b.name() == which) else {
        eprintln!(
            "unknown benchmark '{which}'; pick one of: {}",
            benches
                .iter()
                .map(|b| b.name())
                .collect::<Vec<_>>()
                .join(" ")
        );
        std::process::exit(2);
    };
    let model = PowerModel::default();

    println!(
        "energy-to-solution report: {} ({})\n",
        b.name(),
        b.description()
    );
    for prec in Precision::ALL {
        println!("--- {} precision ---", prec.label());
        let mut serial_energy = None;
        for v in Variant::ALL {
            match b.run(v, prec) {
                Ok(r) => {
                    let (m, iters, energy) = measure(&r, &model, 42);
                    if v == Variant::Serial {
                        serial_energy = Some(energy);
                    }
                    let rel = serial_energy.map(|s| energy / s).unwrap_or(1.0);
                    println!(
                        "{:<11} t={:>9.3} ms  window {iters:>6} iters  \
                         P = {:>5.2} +- {:.3} W   E = {:>8.4} J/solution ({:>5.1}% of Serial)",
                        v.label(),
                        r.time_s * 1e3,
                        m.mean_power_w,
                        m.std_power_w,
                        energy,
                        rel * 100.0
                    );
                }
                Err(e) => println!("{:<11} skipped: {e}", v.label()),
            }
        }
        println!();
    }
    println!(
        "(The WT230 model samples at 10 Hz with 0.1% gain accuracy; the σ column\n\
         reproduces the paper's observation that run-to-run deviation is negligible.)"
    );
}
